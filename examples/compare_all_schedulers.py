#!/usr/bin/env python3
"""Reproduce a slice of the paper's Figure 4 comparison interactively.

Runs all ten schedulers (the MLFS family plus the seven published
baselines) on one contended workload through the ``repro.api`` sweep
engine and prints the full metric table, ranked by average JCT.

Run:  python examples/compare_all_schedulers.py [num_jobs] [num_servers]
      REPRO_WORKERS=4 python examples/compare_all_schedulers.py
"""

import os
import sys

from repro import api
from repro.analysis import format_table

SCHEDULERS = [
    "MLFS",
    "MLF-RL",
    "MLF-H",
    "Graphene",
    "Tiresias",
    "HyperSched",
    "RL",
    "Gandiva",
    "TensorFlow",
    "SLAQ",
]


def main() -> None:
    num_jobs = int(sys.argv[1]) if len(sys.argv) > 1 else 100
    num_servers = int(sys.argv[2]) if len(sys.argv) > 2 else 5
    workers = int(os.environ.get("REPRO_WORKERS", "0"))

    base = api.RunSpec(
        scheduler=api.SchedulerSpec(SCHEDULERS[0]),
        workload=api.WorkloadSpec(
            num_jobs=num_jobs,
            duration_hours=2.0,
            trace_seed=3,
            deadline_hours=(0.5, 6.0),
        ),
        cluster=api.ClusterSpec(num_servers=num_servers, gpus_per_server=4),
        seed=4,
    )
    grid = api.Grid(
        base, axes={"scheduler": [api.SchedulerSpec(name) for name in SCHEDULERS]}
    )
    print(
        f"running {len(grid)} schedulers × {num_jobs} jobs "
        f"on {num_servers} servers ({num_servers * 4} GPUs)…"
    )
    result = api.sweep(grid, workers=workers)
    for failure in result.failures():
        print(f"FAILED {failure['scheduler']}: {failure['error']['message']}")

    keys = [
        "avg_jct_s",
        "deadline_ratio",
        "avg_wait_s",
        "avg_accuracy",
        "accuracy_ratio",
        "bandwidth_gb",
        "migrations",
        "overhead_ms",
    ]
    rows = sorted(
        (
            [record["scheduler"]]
            + [
                round(
                    {
                        **record["summary"],
                        **result.measured.get(record["digest"], {}),
                    }.get(k, 0.0),
                    2,
                )
                for k in keys
            ]
            for record in result.ok()
        ),
        key=lambda row: row[1],
    )
    print(format_table(["scheduler"] + keys, rows))


if __name__ == "__main__":
    main()
