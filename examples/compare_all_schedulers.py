#!/usr/bin/env python3
"""Reproduce a slice of the paper's Figure 4 comparison interactively.

Runs all ten schedulers (the MLFS family plus the seven published
baselines) on one contended workload and prints the full metric table,
ranked by average JCT.

Run:  python examples/compare_all_schedulers.py [num_jobs] [num_servers]
"""

import sys

from repro.analysis import format_table
from repro.baselines import (
    FairScheduler,
    GandivaScheduler,
    GrapheneScheduler,
    HyperSchedScheduler,
    RLScheduler,
    SLAQScheduler,
    TiresiasScheduler,
)
from repro.cluster import Cluster
from repro.core import make_mlf_h, make_mlf_rl, make_mlfs
from repro.sim import EngineConfig, SimulationSetup, run_comparison
from repro.workload import WorkloadConfig, generate_trace


def main() -> None:
    num_jobs = int(sys.argv[1]) if len(sys.argv) > 1 else 100
    num_servers = int(sys.argv[2]) if len(sys.argv) > 2 else 5

    records = generate_trace(num_jobs, duration_seconds=2 * 3600.0, seed=3)
    setup = SimulationSetup(
        records=records,
        cluster_factory=lambda: Cluster.build(num_servers, 4),
        workload_seed=4,
        engine_config=EngineConfig(),
        workload_config=WorkloadConfig(deadline_uniform_range_hours=(0.5, 6.0)),
    )
    schedulers = [
        make_mlfs(),
        make_mlf_rl(),
        make_mlf_h(),
        GrapheneScheduler(),
        TiresiasScheduler(),
        HyperSchedScheduler(),
        RLScheduler(),
        GandivaScheduler(),
        FairScheduler(),
        SLAQScheduler(),
    ]
    print(f"running {len(schedulers)} schedulers × {num_jobs} jobs "
          f"on {num_servers} servers ({num_servers * 4} GPUs)…")
    results = run_comparison(schedulers, setup)

    keys = [
        "avg_jct_s",
        "deadline_ratio",
        "avg_wait_s",
        "avg_accuracy",
        "accuracy_ratio",
        "bandwidth_gb",
        "migrations",
        "overhead_ms",
    ]
    rows = sorted(
        (
            [name] + [round(result.summary()[k], 2) for k in keys]
            for name, result in results.items()
        ),
        key=lambda row: row[1],
    )
    print(format_table(["scheduler"] + keys, rows))


if __name__ == "__main__":
    main()
