#!/usr/bin/env python3
"""MLF-C under overload: stop options and early stopping.

Floods a small cluster (3 servers) with 80 jobs so the system is
genuinely overloaded, then shows what MLF-C does about it: jobs whose
users permit it are downgraded (fixed-iterations → OptStop →
stop-at-required-accuracy) and stopped as soon as their target is met,
freeing capacity for the rest.

Run:  python examples/overloaded_cluster.py
"""

from repro.analysis import format_table
from repro.cluster import Cluster
from repro.core import make_mlf_rl, make_mlfs
from repro.sim import EngineConfig, SimulationSetup, run_comparison
from repro.workload import WorkloadConfig, generate_trace


def main() -> None:
    records = generate_trace(num_jobs=80, duration_seconds=3600.0, seed=21)
    setup = SimulationSetup(
        records=records,
        cluster_factory=lambda: Cluster.build(3, 4),
        workload_seed=22,
        engine_config=EngineConfig(),
        workload_config=WorkloadConfig(deadline_uniform_range_hours=(0.5, 6.0)),
    )
    # MLFS = MLF-RL + MLF-C; MLF-RL alone is the no-load-control ablation.
    results = run_comparison([make_mlfs(), make_mlf_rl()], setup)

    rows = []
    for name, result in results.items():
        records_ = result.metrics.job_records
        stopped = [r for r in records_ if r.stopped_early]
        saved = sum(r.max_iterations - r.iterations_completed for r in stopped)
        rows.append(
            [
                name,
                len(stopped),
                saved,
                round(result.summary()["avg_jct_s"] / 60.0, 1),
                round(result.summary()["deadline_ratio"], 3),
                round(result.summary()["accuracy_ratio"], 3),
                round(result.summary()["avg_accuracy"], 3),
            ]
        )
    print(
        format_table(
            [
                "scheduler",
                "jobs stopped early",
                "iterations saved",
                "avg JCT (min)",
                "deadline ratio",
                "accuracy ratio",
                "avg accuracy",
            ],
            rows,
        )
    )
    print(
        "\nMLF-C trades surplus iterations (accuracy beyond the requirement)"
        "\nfor queue drain: stopped jobs release GPUs that let waiting jobs"
        "\nrun their important early iterations before their deadlines."
    )


if __name__ == "__main__":
    main()
