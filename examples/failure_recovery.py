#!/usr/bin/env python3
"""Failure recovery demo: crash a server mid-run and watch the stack heal.

Two acts, one failure model (``repro.faults``):

1. **Planned faults, offline.**  A :class:`FaultPlan` crashes a server
   mid-run and revives it later; the simulation engine kills the
   resident tasks, rolls the victims back to their last checkpoint,
   and the scheduler re-places them through the ordinary queue.  The
   same plan attached to the same spec is bit-reproducible — run the
   script twice and the numbers do not move.

2. **Runtime faults, online.**  The scheduler daemon takes a
   ``faultctl`` verb: crash a server under live jobs, inspect the
   failure from the client, then revive it and drain.  The injected
   events queue and apply at the next round, so even operator-injected
   chaos replays deterministically from a snapshot.

Run:  python examples/failure_recovery.py
"""

import random
import tempfile
from pathlib import Path

from repro import api
from repro.service import JobSpec, ServiceClient, ServiceConfig
from repro.service.daemon import SchedulerService, ThreadedDaemon

MODELS = ["alexnet", "resnet", "lstm", "svm"]


def planned_faults() -> None:
    """Act 1: a scripted crash/revive plan through ``api.run``."""
    print("=== Act 1: planned server crash (offline, reproducible) ===")
    plan = api.FaultPlan(
        events=(
            api.FaultEvent(round_index=16, kind="server_crash", server_id=0),
            api.FaultEvent(round_index=18, kind="straggler_start", server_id=1, slowdown=3.0),
            api.FaultEvent(round_index=24, kind="server_revive", server_id=0),
            api.FaultEvent(round_index=28, kind="straggler_end", server_id=1),
        ),
        checkpoint_period=5,
    )
    spec = api.RunSpec(
        scheduler=api.SchedulerSpec("MLF-H"),
        workload=api.WorkloadSpec(num_jobs=40, duration_hours=1.0, trace_seed=11),
        cluster=api.ClusterSpec(num_servers=4, gpus_per_server=4),
        faults=plan,
    )
    baseline = api.run(api.replace_path(spec, "faults", None))
    faulted = api.run(spec)
    for label, record in (("fault-free", baseline), ("with faults", faulted)):
        s = record["summary"]
        print(
            f"  {label:11}  avg JCT {s['avg_jct_s']:8.1f}s"
            f"  kills {s.get('tasks_killed', 0.0):4.0f}"
            f"  iterations lost {s.get('iterations_lost', 0.0):4.0f}"
        )
    print(f"  plan digest {plan.digest()[:16]}… (rides in the spec digest)\n")


def runtime_faults() -> None:
    """Act 2: crash a server under a live daemon via ``faultctl``."""
    print("=== Act 2: live server crash via the daemon (faultctl) ===")
    rng = random.Random(42)
    workdir = Path(tempfile.mkdtemp(prefix="repro-faults-demo-"))
    config = ServiceConfig(
        socket_path=str(workdir / "repro.sock"),
        telemetry_path=str(workdir / "telemetry.jsonl"),
        servers=4,
        scheduler="MLF-H",
        round_interval=0,  # rounds advance only when stepped/drained
    )
    core = SchedulerService(config)
    with ThreadedDaemon(config, core=core) as daemon:
        with ServiceClient(daemon.socket_path) as client:
            job_ids = []
            for _ in range(12):
                out = client.submit(
                    JobSpec(
                        model_name=rng.choice(MODELS),
                        gpus_requested=rng.choice([2, 4]),
                        max_iterations=rng.randint(10, 30),
                        accuracy_requirement=0.7,
                        urgency=rng.randint(0, 10),
                    )
                )
                job_ids.append(out["job_id"])
            client.step(rounds=3)

            crash = client.faultctl("server_crash", server_id=0)
            print(f"  injected: {crash['queued']} (applies at round {crash['applies_at_round']})")
            client.step(rounds=2)

            status = client.faultctl("status")
            print(
                f"  after crash: failed servers {status['failed_servers']},"
                f" tasks killed {status['counters']['tasks_killed']}"
            )

            client.faultctl("server_revive", server_id=0)
            client.step(rounds=2)
            status = client.faultctl("status")
            print(f"  after revive: failed servers {status['failed_servers']}")

            result = client.drain()
            print(
                f"  drained in {result['rounds']} rounds,"
                f" completed {int(result['summary']['jobs'])} jobs"
            )

            history = client.history(job_ids[0])
            fault_lines = [
                e for e in history["events"] if e["event"] in ("fault_killed", "rolled_back")
            ]
            if fault_lines:
                print(f"  {job_ids[0]} fault timeline:")
                for event in fault_lines:
                    print(f"    {event['time']:>8.1f}s  {event['event']}")
    print(f"  artifacts under {workdir}")


if __name__ == "__main__":
    planned_faults()
    runtime_faults()
