#!/usr/bin/env python3
"""Urgent jobs with hard deadlines — the paper's hurricane scenario.

The paper motivates MLFS with time-critical prediction jobs: "an ML job
for predicting a hurricane path must be completed by a certain time
before the hurricane landfall with a high prediction accuracy" (§1).

This example submits a background workload plus a burst of *urgent*
jobs (urgency 10, tight deadlines) and compares how MLFS and a fair
scheduler treat the urgent jobs: MLFS's urgency coefficient ``L_J``
(Eq. 2) pushes them ahead, the fair scheduler treats them like any
other job.

Run:  python examples/hurricane_deadline.py
"""

from repro.analysis import format_table
from repro.baselines import FairScheduler
from repro.cluster import Cluster
from repro.core import make_mlfs
from repro.sim import EngineConfig, SimulationSetup, run_comparison
from repro.workload import TraceRecord, WorkloadConfig, generate_trace


def build_workload() -> list[TraceRecord]:
    """Background jobs plus a burst of urgent hurricane-track jobs."""
    background = generate_trace(
        num_jobs=50, duration_seconds=3600.0, seed=7, urgency_levels=5
    )
    urgent = [
        TraceRecord(
            job_id=f"hurricane{i}",
            arrival_time=600.0 + i * 120.0,
            gpus_requested=8,
            model_name="lstm",  # sequence model for track forecasting
            max_iterations=30,
            accuracy_requirement=0.9,
            urgency=10,
            training_data_mb=800.0,
        )
        for i in range(5)
    ]
    return sorted(background + urgent, key=lambda r: r.arrival_time)


def main() -> None:
    records = build_workload()
    setup = SimulationSetup(
        records=records,
        cluster_factory=lambda: Cluster.build(5, 4),
        workload_seed=8,
        engine_config=EngineConfig(),
        # Tight deadline draw: urgency has to matter.
        workload_config=WorkloadConfig(deadline_uniform_range_hours=(0.5, 3.0)),
    )
    results = run_comparison([make_mlfs(), FairScheduler()], setup)

    rows = []
    for name, result in results.items():
        urgent = [r for r in result.metrics.job_records if r.urgency > 8]
        met = sum(1 for r in urgent if r.met_deadline)
        rows.append(
            [
                name,
                f"{met}/{len(urgent)}",
                round(result.metrics.urgent_deadline_ratio(8), 3),
                round(
                    sum(r.jct for r in urgent) / max(len(urgent), 1) / 60.0, 1
                ),
                round(result.summary()["deadline_ratio"], 3),
            ]
        )
    print(
        format_table(
            [
                "scheduler",
                "urgent met",
                "urgent deadline ratio",
                "urgent avg JCT (min)",
                "overall deadline ratio",
            ],
            rows,
        )
    )


if __name__ == "__main__":
    main()
