#!/usr/bin/env python3
"""Online service demo: stream jobs through the scheduler daemon.

Starts the daemon in-process (its own event-loop thread), connects the
client library over a Unix socket, streams 50 jobs with Poisson
inter-arrivals, drains, and prints the telemetry summary — the full
``repro serve`` / ``repro submit`` workflow without leaving one process.

Run:  python examples/online_service_demo.py
"""

import random
import tempfile
from pathlib import Path

from repro.analysis.telemetry import summary_table, telemetry_table
from repro.service import JobSpec, ServiceClient, ServiceConfig
from repro.service.daemon import ThreadedDaemon
from repro.service.telemetry import read_telemetry, summarize_telemetry

NUM_JOBS = 50
MODELS = ["alexnet", "resnet", "lstm", "svm", "mlp"]


def main() -> None:
    rng = random.Random(2020)
    workdir = Path(tempfile.mkdtemp(prefix="repro-service-demo-"))
    config = ServiceConfig(
        socket_path=str(workdir / "repro.sock"),
        telemetry_path=str(workdir / "telemetry.jsonl"),
        snapshot_dir=str(workdir / "snapshots"),
        snapshot_every=25,
        servers=8,
        scheduler="MLF-H",
        # Rounds advance only during drain, so the demo is deterministic
        # and fast; a real deployment would set round_interval=60.
        round_interval=0,
    )

    with ThreadedDaemon(config) as daemon:
        with ServiceClient(daemon.socket_path) as client:
            # Stream 50 jobs with Poisson arrivals.  The daemon stamps
            # each submission with its simulation clock; spacing the
            # submissions over drain batches emulates the arrival
            # process (mean inter-arrival: 2 scheduler rounds).
            outcomes = {"admitted": 0, "queued": 0, "rejected": 0}
            pending = 0
            for index in range(NUM_JOBS):
                spec = JobSpec(
                    model_name=rng.choice(MODELS),
                    gpus_requested=rng.choice([1, 2, 4, 8]),
                    max_iterations=rng.randint(5, 25),
                    accuracy_requirement=rng.uniform(0.5, 0.9),
                    urgency=rng.randint(0, 10),
                )
                out = client.submit(spec)
                outcomes[out["status"]] = outcomes.get(out["status"], 0) + 1
                pending += 1
                # Poisson arrivals: advance the clock a random number of
                # rounds between submissions.
                gap = min(8, max(0, int(rng.expovariate(0.5))))
                if gap:
                    client.step(rounds=gap)
            print(f"submitted {NUM_JOBS} jobs: {outcomes}")

            # Drain: run the engine until every admitted job completes.
            result = client.drain()
            print(
                f"drained in {result['rounds']} rounds, "
                f"sim time {result['sim_time'] / 3600.0:.1f}h, "
                f"completed {int(result['summary']['jobs'])} jobs"
            )

    records = read_telemetry(config.telemetry_path)
    print("\nPer-round telemetry (subsampled):")
    print(telemetry_table(records, every=max(1, len(records) // 12)))
    print("\nTelemetry summary:")
    print(summary_table(summarize_telemetry(records)))
    print(f"\nArtifacts under {workdir}")


if __name__ == "__main__":
    main()
