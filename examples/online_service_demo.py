#!/usr/bin/env python3
"""Online service demo: stream jobs through the scheduler daemon.

Starts the daemon in-process (its own event-loop thread), connects the
client library over a Unix socket, streams jobs with Poisson
inter-arrivals, drains, and renders the telemetry report — the full
``repro serve`` / ``repro submit`` workflow without leaving one process.

The daemon runs the full MLFS scheduler seeded with a scoring policy, so
every scheduler phase (priority, placement, migration, load control, RL
inference) exercises; pass ``--trace`` to capture them as a Chrome-trace
JSON loadable in Perfetto / ``chrome://tracing``.

Run:  python examples/online_service_demo.py [--jobs N] [--trace out.json]
"""

import argparse
import random
import tempfile
from pathlib import Path

from repro.analysis.telemetry import render_telemetry_report
from repro.core.mlfs import make_mlfs
from repro.core.state import FEATURE_SIZE
from repro.rl.policy import ScoringPolicy
from repro.service import JobSpec, ServiceClient, ServiceConfig
from repro.service.daemon import SchedulerService, ThreadedDaemon

MODELS = ["alexnet", "resnet", "lstm", "svm", "mlp"]


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", type=int, default=50, help="jobs to stream")
    parser.add_argument("--seed", type=int, default=2020)
    parser.add_argument(
        "--trace", default=None, help="write a Chrome-trace JSON of scheduler spans"
    )
    parser.add_argument(
        "--workdir", default=None, help="artifact directory (default: a tempdir)"
    )
    return parser.parse_args()


def main() -> None:
    args = parse_args()
    rng = random.Random(args.seed)
    workdir = Path(args.workdir or tempfile.mkdtemp(prefix="repro-service-demo-"))
    workdir.mkdir(parents=True, exist_ok=True)
    config = ServiceConfig(
        socket_path=str(workdir / "repro.sock"),
        telemetry_path=str(workdir / "telemetry.jsonl"),
        snapshot_dir=str(workdir / "snapshots"),
        snapshot_every=25,
        servers=8,
        scheduler="MLFS",
        trace_path=args.trace,
        # Rounds advance only during drain, so the demo is deterministic
        # and fast; a real deployment would set round_interval=60.
        round_interval=0,
    )
    # A seeded scoring policy starts MLFS directly in the RL phase, so
    # the demo exercises (and traces) every scheduler phase without a
    # long imitation-training warmup.
    scheduler = make_mlfs(policy=ScoringPolicy(feature_size=FEATURE_SIZE, seed=7))
    core = SchedulerService(config, scheduler=scheduler)

    with ThreadedDaemon(config, core=core) as daemon:
        with ServiceClient(daemon.socket_path) as client:
            # Stream jobs with Poisson arrivals.  The daemon stamps each
            # submission with its simulation clock; spacing the
            # submissions over step batches emulates the arrival
            # process (mean inter-arrival: 2 scheduler rounds).
            outcomes: dict[str, int] = {}
            first_job_id = None
            for _ in range(args.jobs):
                spec = JobSpec(
                    model_name=rng.choice(MODELS),
                    gpus_requested=rng.choice([1, 2, 4, 8]),
                    max_iterations=rng.randint(5, 25),
                    accuracy_requirement=rng.uniform(0.5, 0.9),
                    urgency=rng.randint(0, 10),
                )
                out = client.submit(spec)
                outcomes[out["status"]] = outcomes.get(out["status"], 0) + 1
                if first_job_id is None:
                    first_job_id = out["job_id"]
                gap = min(8, max(0, int(rng.expovariate(0.5))))
                if gap:
                    client.step(rounds=gap)
            print(f"submitted {args.jobs} jobs: {outcomes}")

            # Drain: run the engine until every admitted job completes.
            result = client.drain()
            print(
                f"drained in {result['rounds']} rounds, "
                f"sim time {result['sim_time'] / 3600.0:.1f}h, "
                f"completed {int(result['summary']['jobs'])} jobs"
            )

            # The observability verbs: Prometheus metrics + a timeline.
            prom = client.metrics_text()
            families = [
                line.split()[2] for line in prom.splitlines() if line.startswith("# TYPE")
            ]
            print(f"\nmetrics_text: {len(families)} metric families")
            if first_job_id is not None:
                history = client.history(first_job_id)
                print(f"history of {first_job_id}:")
                for event in history["events"]:
                    print(f"  {event['time']:>10.1f}s  {event['event']}")

    print("\n" + render_telemetry_report(config.telemetry_path, every=12))
    if args.trace:
        print(f"\nChrome trace written to {args.trace} (load in Perfetto)")
    print(f"Artifacts under {workdir}")


if __name__ == "__main__":
    main()
