#!/usr/bin/env python3
"""The full MLF-RL training pipeline (Section 3.4).

1. Run MLF-H over a workload, recording every placement decision.
2. Imitation-pretrain the scoring policy on the recorded decisions.
3. Fine-tune with REINFORCE on the Eq. 7 reward (discount η = 0.95).
4. Compare MLF-H vs the trained MLF-RL on a held-out workload.

Run:  python examples/train_rl_scheduler.py
"""

from repro.analysis import format_table
from repro.cluster import Cluster
from repro.core import (
    MLFSConfig,
    TrainingSetup,
    collect_imitation_data,
    make_mlf_h,
    make_mlf_rl,
    pretrain_policy,
    reinforce_finetune,
)
from repro.sim import EngineConfig, SimulationSetup, run_comparison
from repro.workload import generate_trace


def main() -> None:
    config = MLFSConfig(enable_load_control=False)
    engine_config = EngineConfig()

    # --- 1+2: collect MLF-H decisions and imitate them -----------------
    train_records = generate_trace(60, duration_seconds=3600.0, seed=31)
    training = TrainingSetup(
        records=train_records,
        cluster_factory=lambda: Cluster.build(5, 4),
        config=config,
        engine_config=engine_config,
        workload_seed=32,
    )
    buffer = collect_imitation_data(training)
    print(f"collected {len(buffer)} MLF-H placement decisions")
    policy, stats = pretrain_policy(buffer, epochs=3)
    print(
        f"imitation: {stats['epochs']:.0f} epochs, "
        f"loss {stats['loss']:.3f}, expert agreement {stats['agreement']:.1%}"
    )

    # --- 3: REINFORCE fine-tuning on the Eq. 7 reward ------------------
    history = reinforce_finetune(policy, training, episodes=3)
    for i, episode in enumerate(history):
        print(
            f"REINFORCE episode {i}: {episode['steps']:.0f} decisions, "
            f"mean return {episode['mean_return']:.4f}"
        )

    # --- 4: held-out comparison ----------------------------------------
    test_records = generate_trace(60, duration_seconds=3600.0, seed=41)
    setup = SimulationSetup(
        records=test_records,
        cluster_factory=lambda: Cluster.build(5, 4),
        workload_seed=42,
        engine_config=engine_config,
    )
    results = run_comparison([make_mlf_h(), make_mlf_rl(policy)], setup)
    keys = ["avg_jct_s", "deadline_ratio", "avg_accuracy", "bandwidth_gb", "overhead_ms"]
    rows = [
        [name] + [round(result.summary()[k], 3) for k in keys]
        for name, result in results.items()
    ]
    print()
    print(format_table(["scheduler"] + keys, rows))


if __name__ == "__main__":
    main()
