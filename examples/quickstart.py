#!/usr/bin/env python3
"""Quickstart: schedule a synthetic ML workload with MLFS.

Builds a Philly-like trace of 40 jobs, runs it through the full MLFS
system (MLF-H priorities + RIAL placement + MLF-C load control) on a
10-server cluster, and prints the headline metrics next to a FIFO
baseline.

Run:  python examples/quickstart.py
"""

from repro.analysis import format_table
from repro.baselines import FIFOScheduler
from repro.cluster import Cluster
from repro.core import make_mlfs
from repro.sim import EngineConfig, SimulationSetup, run_comparison
from repro.workload import generate_trace


def main() -> None:
    # 1. A synthetic trace shaped like the Microsoft Philly workload.
    records = generate_trace(num_jobs=40, duration_seconds=2 * 3600.0, seed=42)

    # 2. The scenario: workload + cluster recipe (fresh cluster per run).
    setup = SimulationSetup(
        records=records,
        cluster_factory=lambda: Cluster.build(num_servers=10, gpus_per_server=4),
        workload_seed=43,
        engine_config=EngineConfig(tick_seconds=60.0),
    )

    # 3. Run MLFS and FIFO over the identical workload.
    results = run_comparison([make_mlfs(), FIFOScheduler()], setup)

    # 4. Report.
    keys = [
        "avg_jct_s",
        "makespan_s",
        "deadline_ratio",
        "avg_accuracy",
        "accuracy_ratio",
        "bandwidth_gb",
        "overhead_ms",
    ]
    rows = [
        [name] + [round(result.summary()[k], 3) for k in keys]
        for name, result in results.items()
    ]
    print(format_table(["scheduler"] + keys, rows))

    mlfs = results["MLFS"].summary()
    fifo = results["FIFO"].summary()
    speedup = (fifo["avg_jct_s"] - mlfs["avg_jct_s"]) / fifo["avg_jct_s"]
    print(f"\nMLFS reduces average JCT by {speedup:.0%} vs FIFO on this workload.")


if __name__ == "__main__":
    main()
