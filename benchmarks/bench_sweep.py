"""Sweep-engine wall-clock benchmark: serial vs process-parallel.

Times the same Fig. 4-style grid twice through ``repro.api.sweep`` —
once with ``workers=0`` (serial, in-process) and once with a worker
pool — verifies the merged results are bit-identical, and writes
``BENCH_sweep.json`` at the repo root so the perf trajectory is
recorded next to the code.

The grid is a trimmed slice of the ``REAL`` profile (cheap baseline
schedulers, the two smallest job counts) so the double run stays in
benchmark territory; override with::

    REPRO_SWEEP_BENCH_JOBS=30,60,120 REPRO_SWEEP_BENCH_WORKERS=8 \
        python benchmarks/bench_sweep.py

Speedup is bounded by the physical core count — the JSON records
``cpu_count`` so numbers from a 1-core CI runner are not mistaken for
an engine regression.
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from harness import REAL  # noqa: E402

from repro import api  # noqa: E402

OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_sweep.json"

#: Cheap, policy-free schedulers: the bench times the *engine*, not
#: MLF-RL pretraining.
BENCH_SCHEDULERS = ("TensorFlow", "Tiresias", "Gandiva", "FIFO")


def _grid() -> api.Grid:
    jobs_env = os.environ.get("REPRO_SWEEP_BENCH_JOBS", "30,60")
    job_counts = [int(j) for j in jobs_env.split(",") if j.strip()]
    base = REAL.base_spec(api.SchedulerSpec(BENCH_SCHEDULERS[0]))
    return api.Grid(
        base,
        axes={
            "scheduler": [api.SchedulerSpec(name) for name in BENCH_SCHEDULERS],
            "workload.num_jobs": job_counts,
        },
    )


def run_bench() -> dict:
    """Time serial vs parallel (cold and warm pool) over the same grid."""
    grid = _grid()
    workers = int(os.environ.get("REPRO_SWEEP_BENCH_WORKERS", "4"))

    started = time.perf_counter()
    serial = api.sweep(grid, workers=0)
    serial_s = time.perf_counter() - started

    # One runner, two runs: the first pays pool start-up (cold), the
    # second reuses the live workers (warm) — the lifecycle repeated
    # sweeps through ``SweepRunner`` get since the warm-pool fix.
    with api.SweepRunner(workers=workers) as runner:
        started = time.perf_counter()
        parallel = runner.run(grid)
        parallel_s = time.perf_counter() - started

        started = time.perf_counter()
        warm = runner.run(grid)
        parallel_warm_s = time.perf_counter() - started

    canonical = json.dumps(serial.merged(), sort_keys=True)
    identical = canonical == json.dumps(
        parallel.merged(), sort_keys=True
    ) and canonical == json.dumps(warm.merged(), sort_keys=True)
    report = {
        "benchmark": "repro.exp sweep serial-vs-parallel",
        "grid": {
            "schedulers": list(BENCH_SCHEDULERS),
            "job_counts": sorted({s.workload.num_jobs for s in grid.specs()}),
            "shards": len(grid),
            "profile": "real (Fig. 4 scale)",
        },
        "serial_s": round(serial_s, 3),
        "parallel_s": round(parallel_s, 3),
        "parallel_warm_s": round(parallel_warm_s, 3),
        "workers": workers,
        "speedup": round(serial_s / parallel_s, 3) if parallel_s > 0 else None,
        "speedup_warm": round(serial_s / parallel_warm_s, 3)
        if parallel_warm_s > 0
        else None,
        "cpu_count": os.cpu_count(),
        "bit_identical": identical,
        "failed_shards": serial.stats["failed"]
        + parallel.stats["failed"]
        + warm.stats["failed"],
    }
    return report


def main() -> int:
    report = run_bench()
    OUT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    if not report["bit_identical"] or report["failed_shards"]:
        return 1
    return 0


try:
    import pytest
except ImportError:  # pragma: no cover - script mode without pytest
    pytest = None

if pytest is not None:

    @pytest.mark.slow
    def test_sweep_parallel_speedup():
        """Serial and parallel sweeps agree; record the wall-clock ratio."""
        report = run_bench()
        OUT_PATH.write_text(json.dumps(report, indent=2) + "\n")
        assert report["bit_identical"]
        assert report["failed_shards"] == 0
        assert report["serial_s"] > 0 and report["parallel_s"] > 0


if __name__ == "__main__":
    sys.exit(main())
