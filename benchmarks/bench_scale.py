"""Engine-scale benchmark: event-driven vs fixed cadence, Philly scale.

Two legs, written to ``BENCH_scale.json`` at the repo root:

* **sparse** — the regime the event-driven core targets: few hundred
  long-running jobs spread over months, where a fixed 60 s pass cadence
  burns passes that place nothing.  Runs the same trace under
  ``pass_policy="fixed"`` and ``pass_policy="event"``, asserts the
  outcomes are bit-identical, and records the wall-clock ratio — one
  leg per parkable policy (MLF-H gates at 10x, the analytically
  accruing baselines at 5x; see :data:`POLICY_SPEEDUP_GATES`).
* **philly** — the full synthetic-Philly trace (117,325 jobs on 550
  servers / 2,474 GPUs by default) end-to-end in event mode, with a
  jobs-vs-wall-clock curve at intermediate sizes.

Environment overrides::

    REPRO_SCALE_BENCH_JOBS=10000       # largest Philly point
    REPRO_SCALE_BENCH_CURVE=2000,10000 # intermediate curve points
    REPRO_SCALE_BENCH_SPARSE_JOBS=200  # sparse-leg trace size

The CI scale-smoke step runs the 10k-job point with a wall-clock
assertion; the full default is benchmark territory (tens of minutes).
"""

from __future__ import annotations

import json
import os
import resource
import sys
import time
from pathlib import Path

from repro.cluster.cluster import Cluster
from repro.schedulers import build_scheduler
from repro.sim.engine import EngineConfig, SimulationEngine
from repro.workload.generator import build_jobs
from repro.workload.synthetic import (
    PHILLY_NUM_GPUS,
    PHILLY_NUM_JOBS,
    PHILLY_NUM_SERVERS,
    PhillyLikeTraceGenerator,
    philly_cluster,
    philly_scale_config,
    sparse_trace_config,
)

OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_scale.json"

#: Far enough out that every job of every leg completes.
MAX_TIME = 400 * 24 * 3600.0


def _peak_rss_mb() -> float:
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


#: Per-policy sparse speedup gates.  MLF-H keeps the PR-9 10x bar; the
#: baselines made parkable by analytic accrual (PR 10) gate at 5x.
POLICY_SPEEDUP_GATES = {
    "MLF-H": 10.0,
    "MLF-RL": 5.0,
    "Tiresias": 5.0,
    "Gandiva": 5.0,
    "SLAQ": 5.0,
}


def _run_once(
    records,
    cluster,
    pass_policy: str,
    seed: int,
    engine_seed: int | None = None,
    policy: str = "MLF-H",
) -> dict:
    """One engine run; jobs are rebuilt so runs stay independent.

    ``seed`` drives job construction (learning curves, demands);
    ``engine_seed`` the engine RNG (defaults to ``seed``); ``policy``
    names the scheduler (a registry key).
    """
    jobs = build_jobs(records, seed=seed)
    engine = SimulationEngine(
        scheduler=build_scheduler(policy),
        jobs=jobs,
        cluster=cluster,
        config=EngineConfig(
            seed=seed if engine_seed is None else engine_seed,
            max_time=MAX_TIME,
            pass_policy=pass_policy,
        ),
    )
    started = time.perf_counter()
    cpu_started = time.process_time()
    metrics = engine.run()
    cpu = time.process_time() - cpu_started
    wall = time.perf_counter() - started
    return {
        "wall_s": round(wall, 3),
        "cpu_s": round(cpu, 3),
        "passes": engine.pass_index,
        "completed": len(metrics.job_records),
        "outcome": [(r.job_id, r.jct) for r in metrics.job_records],
    }


def bench_sparse(
    num_jobs: int, seed: int = 11, repeats: int = 3, policy: str = "MLF-H"
) -> dict:
    """Fixed vs event cadence on the sparse long-job trace.

    Each leg runs ``repeats`` times and reports the best wall clock
    (standard benchmark practice — the minimum is the least-noise
    estimate of the true cost); outcomes must be identical across every
    run of both legs.
    """
    config = sparse_trace_config(num_jobs=num_jobs)
    records = PhillyLikeTraceGenerator(config=config, seed=seed).generate()
    cluster_spec = (40, 4)

    def best_of(pass_policy: str) -> tuple[dict, list]:
        runs = [
            _run_once(
                records,
                Cluster.build(*cluster_spec),
                pass_policy,
                seed=seed,
                engine_seed=5,
                policy=policy,
            )
            for _ in range(max(1, repeats))
        ]
        outcomes = [run.pop("outcome") for run in runs]
        assert all(o == outcomes[0] for o in outcomes[1:]), "non-deterministic run"
        return min(runs, key=lambda run: run["cpu_s"]), outcomes[0]

    event, event_outcome = best_of("event")
    fixed, fixed_outcome = best_of("fixed")
    identical = event_outcome == fixed_outcome
    # CPU time, not wall clock: the engine is pure compute, and process
    # time is immune to scheduler interference on shared runners (wall
    # clock is still reported per leg for reference).
    speedup = fixed["cpu_s"] / event["cpu_s"] if event["cpu_s"] else None
    return {
        "policy": policy,
        "num_jobs": num_jobs,
        "servers": cluster_spec[0],
        "fixed": fixed,
        "event": event,
        "bit_identical": identical,
        "speedup": round(speedup, 2) if speedup else None,
    }


def bench_sparse_policies(
    num_jobs: int, seed: int = 11, repeats: int = 2
) -> dict[str, dict]:
    """One fixed-vs-event sparse leg per parkable policy, each gated.

    The per-policy gate (see :data:`POLICY_SPEEDUP_GATES`) proves the
    analytic-accrual claim end to end: parking with Tiresias' service
    stints, Gandiva's slice clock or SLAQ's epoch active must stay
    bit-identical *and* still pay for itself.
    """
    legs: dict[str, dict] = {}
    for policy, gate in POLICY_SPEEDUP_GATES.items():
        leg = bench_sparse(num_jobs, seed=seed, repeats=repeats, policy=policy)
        leg["gate"] = gate
        leg["pass"] = bool(
            leg["bit_identical"]
            and leg["speedup"] is not None
            and leg["speedup"] >= gate
        )
        print(f"sparse[{policy}]: {json.dumps(leg)}", flush=True)
        legs[policy] = leg
    return legs


def bench_sparse_scale(
    num_jobs: int = 10_000, seed: int = 11, wall_budget_s: float = 600.0
) -> dict:
    """CI scale smoke: a 10k-job sparse trace end-to-end in event mode.

    One event-engine run (the fixed cadence would take ~10 minutes of
    pure no-op passes at this size — exactly the pathology the event
    core removes) with a wall-clock budget suited to shared CI runners.
    """
    config = sparse_trace_config(num_jobs=num_jobs)
    records = PhillyLikeTraceGenerator(config=config, seed=seed).generate()
    result = _run_once(records, Cluster.build(40, 4), "event", seed=seed, engine_seed=5)
    result.pop("outcome")
    return {
        "num_jobs": num_jobs,
        "servers": 40,
        "wall_budget_s": wall_budget_s,
        "within_budget": result["wall_s"] <= wall_budget_s,
        "all_completed": result["completed"] == num_jobs,
        **result,
    }


def bench_philly(job_counts: list[int], seed: int = 7) -> dict:
    """Event-mode jobs-vs-wall-clock curve up to full Philly scale."""
    curve = []
    for num_jobs in job_counts:
        config = philly_scale_config(num_jobs=num_jobs)
        records = PhillyLikeTraceGenerator(config=config, seed=seed).generate()
        result = _run_once(records, philly_cluster(), "event", seed=seed)
        result.pop("outcome")
        curve.append(
            {
                "num_jobs": num_jobs,
                **result,
                "jobs_per_s": round(num_jobs / result["wall_s"], 1)
                if result["wall_s"]
                else None,
                "peak_rss_mb": round(_peak_rss_mb(), 1),
            }
        )
        print(f"philly {num_jobs} jobs: {json.dumps(curve[-1])}", flush=True)
    return {
        "cluster": {
            "servers": PHILLY_NUM_SERVERS,
            "gpus": PHILLY_NUM_GPUS,
        },
        "trace_jobs_full": PHILLY_NUM_JOBS,
        "curve": curve,
    }


def run_bench(
    philly_jobs: int | None = None,
    curve_points: list[int] | None = None,
    sparse_jobs: int | None = None,
) -> dict:
    """Run both legs and assemble the report."""
    if philly_jobs is None:
        philly_jobs = int(
            os.environ.get("REPRO_SCALE_BENCH_JOBS", str(PHILLY_NUM_JOBS))
        )
    if curve_points is None:
        curve_env = os.environ.get("REPRO_SCALE_BENCH_CURVE", "2000,10000")
        curve_points = [int(j) for j in curve_env.split(",") if j.strip()]
    if sparse_jobs is None:
        sparse_jobs = int(os.environ.get("REPRO_SCALE_BENCH_SPARSE_JOBS", "100"))

    sparse_policies = bench_sparse_policies(sparse_jobs)
    points = sorted({p for p in curve_points if p < philly_jobs}) + [philly_jobs]
    philly = bench_philly(points)
    return {
        "benchmark": "event-driven engine core at scale",
        # The MLF-H leg keeps its historical top-level slot; the
        # per-policy map carries every parkable scheduler.
        "sparse": sparse_policies["MLF-H"],
        "sparse_policies": sparse_policies,
        "philly": philly,
        "cpu_count": os.cpu_count(),
    }


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if "--smoke" in argv:
        # CI scale smoke: one gated fixed-vs-event sparse leg per
        # parkable policy, plus a 10k-job sparse trace end-to-end under
        # a wall-clock budget.
        sparse_policies = bench_sparse_policies(
            int(os.environ.get("REPRO_SCALE_BENCH_SPARSE_JOBS", "100"))
        )
        scale = bench_sparse_scale(
            int(os.environ.get("REPRO_SCALE_SMOKE_JOBS", "10000"))
        )
        print(f"sparse-scale: {json.dumps(scale)}", flush=True)
        report = {
            "benchmark": "event-driven engine core at scale (smoke)",
            "sparse": sparse_policies["MLF-H"],
            "sparse_policies": sparse_policies,
            "sparse_scale": scale,
            "cpu_count": os.cpu_count(),
        }
        OUT_PATH.write_text(json.dumps(report, indent=2) + "\n")
        ok = (
            all(leg["pass"] for leg in sparse_policies.values())
            and scale["within_budget"]
            and scale["all_completed"]
        )
        return 0 if ok else 1
    report = run_bench()
    OUT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    if not all(leg["pass"] for leg in report["sparse_policies"].values()):
        return 1
    return 0


try:
    import pytest
except ImportError:  # pragma: no cover - script mode without pytest
    pytest = None

if pytest is not None:

    @pytest.mark.slow
    def test_scale_bench():
        """Every parkable policy beats its sparse speedup gate with
        bit-identical outcomes, and a 10k-job Philly slice completes
        end-to-end (the full trace is script/benchmark territory)."""
        philly_jobs = int(os.environ.get("REPRO_SCALE_BENCH_JOBS", "10000"))
        report = run_bench(philly_jobs=philly_jobs, curve_points=[2000])
        OUT_PATH.write_text(json.dumps(report, indent=2) + "\n")
        for policy, leg in report["sparse_policies"].items():
            assert leg["bit_identical"], f"{policy}: fixed != event"
            assert leg["speedup"] >= leg["gate"], (
                f"{policy}: {leg['speedup']}x under the {leg['gate']}x gate"
            )
        last = report["philly"]["curve"][-1]
        assert last["completed"] == last["num_jobs"]


if __name__ == "__main__":
    sys.exit(main())
