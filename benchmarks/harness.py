"""Shared benchmark harness.

Every figure of the paper's evaluation is a set of per-scheduler series
over a job-count sweep on a fixed cluster.  Re-simulating the sweep for
each of the eight sub-figures would repeat identical work, so the
harness runs each sweep **once per scale profile** and caches the
results in-process; the per-figure benches extract their metric and
print the series table.

Two profiles mirror the paper's two testbeds, scaled down so the full
suite completes in minutes on a laptop:

* ``real`` — the 80-GPU AWS cluster (Figure 4): here 6 servers / 24
  GPUs with job counts swept ×{¼, ½, 1, 2} around a 120-job base
  (paper: 155–1860 jobs on 80 GPUs).
* ``sim``  — the 2474-GPU Philly simulation (Figure 5): here 12
  servers / 48 GPUs with proportionally larger counts.

Absolute numbers differ from the paper (its workloads run hours to
days); the *shapes* — who wins, by what factor, where crossovers sit —
are what the benches reproduce.  See EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.analysis import FigureSeries
from repro.baselines import (
    FairScheduler,
    GandivaScheduler,
    GrapheneScheduler,
    HyperSchedScheduler,
    RLScheduler,
    SLAQScheduler,
    TiresiasScheduler,
)
from repro.cluster import Cluster
from repro.core import (
    MLFSConfig,
    TrainingSetup,
    make_mlf_h,
    make_mlf_rl,
    make_mlfs,
    train_mlf_rl_policy,
)
from repro.rl import ScoringPolicy
from repro.sim import EngineConfig, SimulationSetup, run_simulation
from repro.workload import WorkloadConfig, generate_trace

#: Scheduler display order used in every table (paper legend order).
SCHEDULER_ORDER = [
    "MLF-H",
    "MLF-RL",
    "MLFS",
    "TensorFlow",
    "Tiresias",
    "SLAQ",
    "Gandiva",
    "Graphene",
    "HyperSched",
    "RL",
]


@dataclass(frozen=True)
class ScaleProfile:
    """One benchmark scale (cluster size + job-count sweep)."""

    name: str
    num_servers: int
    gpus_per_server: int
    job_counts: tuple[int, ...]
    arrival_window_seconds: float
    trace_seed: int
    workload_seed: int

    def cluster_factory(self) -> Callable[[], Cluster]:
        return lambda: Cluster.build(self.num_servers, self.gpus_per_server)


#: Figure 4 scale (real experiments, 80-GPU cluster — scaled down).
REAL = ScaleProfile(
    name="real",
    num_servers=6,
    gpus_per_server=4,
    job_counts=(30, 60, 120, 240),
    arrival_window_seconds=2.0 * 3600.0,
    trace_seed=101,
    workload_seed=202,
)

#: Figure 5 scale (Philly-trace simulation — scaled down).
SIM = ScaleProfile(
    name="sim",
    num_servers=12,
    gpus_per_server=4,
    job_counts=(60, 120, 240, 420),
    arrival_window_seconds=2.0 * 3600.0,
    trace_seed=303,
    workload_seed=404,
)

#: Deadline draw for the benches: tight enough (relative to the scaled
#: job durations) that deadline/accuracy-by-deadline pressure is real.
BENCH_WORKLOAD = WorkloadConfig(deadline_uniform_range_hours=(0.5, 6.0))

BENCH_ENGINE = EngineConfig(max_time=14.0 * 24 * 3600.0)

_POLICY: Optional[ScoringPolicy] = None
_SWEEPS: dict[str, dict[str, dict[int, dict]]] = {}
_CDFS: dict[str, dict[str, list[tuple[float, float]]]] = {}


def trained_policy() -> ScoringPolicy:
    """The MLF-RL policy, imitation-trained once per session."""
    global _POLICY
    if _POLICY is None:
        records = generate_trace(60, duration_seconds=3600.0, seed=7)
        setup = TrainingSetup(
            records=records,
            cluster_factory=lambda: Cluster.build(6, 4),
            config=MLFSConfig(enable_load_control=False),
            engine_config=BENCH_ENGINE,
            workload_config=BENCH_WORKLOAD,
            workload_seed=8,
        )
        _POLICY = train_mlf_rl_policy(setup, imitation_epochs=2)
    return _POLICY


def make_schedulers() -> list:
    """Fresh instances of every scheduler in the comparison."""
    policy = trained_policy()
    return [
        make_mlf_h(),
        make_mlf_rl(policy),
        make_mlfs(policy),
        FairScheduler(),
        TiresiasScheduler(),
        SLAQScheduler(),
        GandivaScheduler(),
        GrapheneScheduler(),
        HyperSchedScheduler(),
        # The RL baseline learns placement without ML features; giving
        # it the MLF-H-imitating policy would make it MLF-RL in
        # disguise, so it runs with its own (least-loaded) policy.
        RLScheduler(),
    ]


def run_sweep(profile: ScaleProfile) -> dict[str, dict[int, dict]]:
    """Run every scheduler over every job count of a profile (cached).

    Returns ``{scheduler: {num_jobs: summary_dict}}``; also caches the
    JCT CDF of the largest sweep point for Figures 4(a)/5(a).
    """
    if profile.name in _SWEEPS:
        return _SWEEPS[profile.name]
    sweep: dict[str, dict[int, dict]] = {}
    cdfs: dict[str, list[tuple[float, float]]] = {}
    max_jobs = max(profile.job_counts)
    for num_jobs in profile.job_counts:
        records = generate_trace(
            num_jobs,
            duration_seconds=profile.arrival_window_seconds,
            seed=profile.trace_seed,
        )
        for scheduler in make_schedulers():
            setup = SimulationSetup(
                records=records,
                cluster_factory=profile.cluster_factory(),
                workload_seed=profile.workload_seed,
                engine_config=BENCH_ENGINE,
                workload_config=BENCH_WORKLOAD,
            )
            result = run_simulation(scheduler, setup)
            sweep.setdefault(scheduler.name, {})[num_jobs] = result.summary()
            if num_jobs == max_jobs:
                cdfs[scheduler.name] = result.metrics.jct_cdf()
    _SWEEPS[profile.name] = sweep
    _CDFS[profile.name] = cdfs
    return sweep


#: Scale used by the component ablations (Figures 6–9): a small,
#: contended cluster where overload handling and load control matter.
ABLATION = ScaleProfile(
    name="ablation",
    num_servers=3,
    gpus_per_server=4,
    job_counts=(40, 80, 160),
    arrival_window_seconds=1.5 * 3600.0,
    trace_seed=505,
    workload_seed=606,
)

_CONFIG_SWEEPS: dict[str, dict[int, dict]] = {}


def run_config_sweep(
    label: str,
    scheduler_factory: Callable[[], object],
    profile: ScaleProfile = ABLATION,
) -> dict[int, dict]:
    """Sweep one scheduler configuration over a profile (cached).

    Used by the ablation benches (Figures 6–9): each configuration —
    e.g. MLF-H with and without the urgency coefficient — is one label.
    The per-point dict is the metrics summary plus the urgent-job
    deadline ratio needed by Figure 6.
    """
    if label in _CONFIG_SWEEPS:
        return _CONFIG_SWEEPS[label]
    results: dict[int, dict] = {}
    for num_jobs in profile.job_counts:
        records = generate_trace(
            num_jobs,
            duration_seconds=profile.arrival_window_seconds,
            seed=profile.trace_seed,
        )
        setup = SimulationSetup(
            records=records,
            cluster_factory=profile.cluster_factory(),
            workload_seed=profile.workload_seed,
            engine_config=BENCH_ENGINE,
            workload_config=BENCH_WORKLOAD,
        )
        result = run_simulation(scheduler_factory(), setup)
        summary = result.summary()
        summary["urgent_deadline_ratio"] = result.metrics.urgent_deadline_ratio(8)
        results[num_jobs] = summary
    _CONFIG_SWEEPS[label] = results
    return results


def ablation_figure(
    title: str,
    y_label: str,
    metric: str,
    sweeps: dict[str, dict[int, dict]],
) -> FigureSeries:
    """Build a FigureSeries comparing ablation configurations."""
    series = FigureSeries(title=title, x_label="jobs", y_label=y_label)
    for label, sweep in sweeps.items():
        for x, summary in sweep.items():
            series.add(label, x, summary[metric])
    return series


def jct_cdfs(profile: ScaleProfile) -> dict[str, list[tuple[float, float]]]:
    """Per-scheduler JCT CDFs at the profile's largest job count."""
    run_sweep(profile)
    return _CDFS[profile.name]


def figure(
    profile: ScaleProfile, metric: str, title: str, y_label: str
) -> FigureSeries:
    """Build the FigureSeries for one metric from the cached sweep."""
    sweep = run_sweep(profile)
    series = FigureSeries(title=title, x_label="jobs", y_label=y_label)
    for name in SCHEDULER_ORDER:
        for x, summary in sweep.get(name, {}).items():
            series.add(name, x, summary[metric])
    return series


def print_figure(series: FigureSeries) -> None:
    """Render a figure table to stdout (captured by pytest -s)."""
    print()
    print(series.render())
