"""Shared benchmark harness, built on the ``repro.api`` sweep engine.

Every figure of the paper's evaluation is a set of per-scheduler series
over a job-count sweep on a fixed cluster.  Re-simulating the sweep for
each of the eight sub-figures would repeat identical work, so the
harness runs each sweep **once per scale profile** through
:func:`repro.api.sweep` and caches the results in-process; the
per-figure benches extract their metric and print the series table.
Set ``REPRO_BENCH_WORKERS=N`` to fan the sweep's shards out over N
worker processes (serial and parallel runs produce identical numbers —
see the determinism contract in :mod:`repro.exp.runner`).

Two profiles mirror the paper's two testbeds, scaled down so the full
suite completes in minutes on a laptop:

* ``real`` — the 80-GPU AWS cluster (Figure 4): here 6 servers / 24
  GPUs with job counts swept ×{¼, ½, 1, 2} around a 120-job base
  (paper: 155–1860 jobs on 80 GPUs).
* ``sim``  — the 2474-GPU Philly simulation (Figure 5): here 12
  servers / 48 GPUs with proportionally larger counts.

Absolute numbers differ from the paper (its workloads run hours to
days); the *shapes* — who wins, by what factor, where crossovers sit —
are what the benches reproduce.  See EXPERIMENTS.md.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Optional

from repro import api
from repro.analysis import FigureSeries

#: Scheduler display order used in every table (paper legend order).
SCHEDULER_ORDER = [
    "MLF-H",
    "MLF-RL",
    "MLFS",
    "TensorFlow",
    "Tiresias",
    "SLAQ",
    "Gandiva",
    "Graphene",
    "HyperSched",
    "RL",
]

#: Deadline draw for the benches: tight enough (relative to the scaled
#: job durations) that deadline/accuracy-by-deadline pressure is real.
BENCH_DEADLINE_HOURS = (0.5, 6.0)

BENCH_ENGINE = api.EngineConfig(max_time=14.0 * 24 * 3600.0)

#: The MLF-RL imitation-training recipe (the runner memoizes the
#: trained policy per process, keyed by this spec's digest).
BENCH_PRETRAIN = api.PretrainSpec(
    workload=api.WorkloadSpec(
        num_jobs=60,
        duration_hours=1.0,
        trace_seed=7,
        deadline_hours=BENCH_DEADLINE_HOURS,
    ),
    cluster=api.ClusterSpec(num_servers=6, gpus_per_server=4),
    seed=8,
    imitation_epochs=2,
    config={"enable_load_control": False},
    engine=BENCH_ENGINE,
)


def bench_workers() -> int:
    """Sweep parallelism: ``REPRO_BENCH_WORKERS`` (default serial)."""
    return int(os.environ.get("REPRO_BENCH_WORKERS", "0"))


@dataclass(frozen=True)
class ScaleProfile:
    """One benchmark scale (cluster size + job-count sweep)."""

    name: str
    num_servers: int
    gpus_per_server: int
    job_counts: tuple[int, ...]
    arrival_window_seconds: float
    trace_seed: int
    workload_seed: int

    def base_spec(self, scheduler: api.SchedulerSpec) -> api.RunSpec:
        """The profile's run spec at its smallest job count."""
        return api.RunSpec(
            scheduler=scheduler,
            workload=api.WorkloadSpec(
                num_jobs=self.job_counts[0],
                duration_hours=self.arrival_window_seconds / 3600.0,
                trace_seed=self.trace_seed,
                deadline_hours=BENCH_DEADLINE_HOURS,
            ),
            cluster=api.ClusterSpec(
                num_servers=self.num_servers,
                gpus_per_server=self.gpus_per_server,
            ),
            engine=BENCH_ENGINE,
            seed=self.workload_seed,
        )


#: Figure 4 scale (real experiments, 80-GPU cluster — scaled down).
REAL = ScaleProfile(
    name="real",
    num_servers=6,
    gpus_per_server=4,
    job_counts=(30, 60, 120, 240),
    arrival_window_seconds=2.0 * 3600.0,
    trace_seed=101,
    workload_seed=202,
)

#: Figure 5 scale (Philly-trace simulation — scaled down).
SIM = ScaleProfile(
    name="sim",
    num_servers=12,
    gpus_per_server=4,
    job_counts=(60, 120, 240, 420),
    arrival_window_seconds=2.0 * 3600.0,
    trace_seed=303,
    workload_seed=404,
)

_SWEEPS: dict[str, dict[str, dict[int, dict]]] = {}
_CDFS: dict[str, dict[str, list[tuple[float, float]]]] = {}


def scheduler_specs() -> list[api.SchedulerSpec]:
    """Every scheduler in the comparison (paper legend order)."""
    return [
        api.SchedulerSpec("MLF-H"),
        api.SchedulerSpec("MLF-RL", pretrain=BENCH_PRETRAIN),
        api.SchedulerSpec("MLFS", pretrain=BENCH_PRETRAIN),
        api.SchedulerSpec("TensorFlow"),
        api.SchedulerSpec("Tiresias"),
        api.SchedulerSpec("SLAQ"),
        api.SchedulerSpec("Gandiva"),
        api.SchedulerSpec("Graphene"),
        api.SchedulerSpec("HyperSched"),
        # The RL baseline learns placement without ML features; giving
        # it the MLF-H-imitating policy would make it MLF-RL in
        # disguise, so it runs with its own (least-loaded) policy.
        api.SchedulerSpec("RL"),
    ]


def _raise_failures(result: api.SweepResult) -> None:
    """Benches fail loudly: surface the first crashed shard."""
    failures = result.failures()
    if failures:
        error = failures[0]["error"]
        raise RuntimeError(
            f"{len(failures)} sweep shard(s) failed; first: "
            f"{error['type']}: {error['message']}"
        )


def _summary_of(record: api.RunRecord, result: api.SweepResult) -> dict:
    """Flatten one run record into the per-point summary dict.

    ``overhead_ms`` lives in the sweep's non-deterministic ``measured``
    side-channel (it is a wall-clock observation); fold it back in for
    the Figure 4(h)/5(h) tables.
    """
    summary = dict(record["summary"])
    measured = result.measured.get(record["digest"], {})
    summary["overhead_ms"] = measured.get("overhead_ms", 0.0)
    summary["urgent_deadline_ratio"] = record["urgent_deadline_ratio"]
    return summary


def run_sweep(profile: ScaleProfile) -> dict[str, dict[int, dict]]:
    """Run every scheduler over every job count of a profile (cached).

    Returns ``{scheduler: {num_jobs: summary_dict}}``; also caches the
    JCT CDF of the largest sweep point for Figures 4(a)/5(a).
    """
    if profile.name in _SWEEPS:
        return _SWEEPS[profile.name]
    grid = api.Grid(
        profile.base_spec(scheduler_specs()[0]),
        axes={
            "scheduler": scheduler_specs(),
            "workload.num_jobs": list(profile.job_counts),
        },
    )
    result = api.sweep(grid, workers=bench_workers())
    _raise_failures(result)
    sweep: dict[str, dict[int, dict]] = {}
    cdfs: dict[str, list[tuple[float, float]]] = {}
    max_jobs = max(profile.job_counts)
    for record in result.ok():
        name = record["scheduler"]
        num_jobs = record["spec"]["workload"]["num_jobs"]
        sweep.setdefault(name, {})[num_jobs] = _summary_of(record, result)
        if num_jobs == max_jobs:
            cdfs[name] = [(value, frac) for value, frac in record["jct_cdf"]]
    _SWEEPS[profile.name] = sweep
    _CDFS[profile.name] = cdfs
    return sweep


#: Scale used by the component ablations (Figures 6–9): a small,
#: contended cluster where overload handling and load control matter.
ABLATION = ScaleProfile(
    name="ablation",
    num_servers=3,
    gpus_per_server=4,
    job_counts=(40, 80, 160),
    arrival_window_seconds=1.5 * 3600.0,
    trace_seed=505,
    workload_seed=606,
)

_CONFIG_SWEEPS: dict[str, dict[int, dict]] = {}


def run_config_sweep(
    label: str,
    scheduler: Optional[api.SchedulerSpec],
    profile: ScaleProfile = ABLATION,
) -> dict[int, dict]:
    """Sweep one scheduler configuration over a profile (cached).

    Used by the ablation benches (Figures 6–9): each configuration —
    e.g. MLF-H with and without the urgency coefficient — is one label.
    The per-point dict is the metrics summary plus the urgent-job
    deadline ratio needed by Figure 6.  ``scheduler=None`` only reads
    an already-cached label.
    """
    if label in _CONFIG_SWEEPS:
        return _CONFIG_SWEEPS[label]
    if scheduler is None:
        raise KeyError(f"config sweep {label!r} has not been run yet")
    grid = api.Grid(
        profile.base_spec(scheduler),
        axes={"workload.num_jobs": list(profile.job_counts)},
    )
    result = api.sweep(grid, workers=bench_workers())
    _raise_failures(result)
    results: dict[int, dict] = {}
    for record in result.ok():
        num_jobs = record["spec"]["workload"]["num_jobs"]
        results[num_jobs] = _summary_of(record, result)
    _CONFIG_SWEEPS[label] = results
    return results


def ablation_figure(
    title: str,
    y_label: str,
    metric: str,
    sweeps: dict[str, dict[int, dict]],
) -> FigureSeries:
    """Build a FigureSeries comparing ablation configurations."""
    series = FigureSeries(title=title, x_label="jobs", y_label=y_label)
    for label, sweep in sweeps.items():
        for x, summary in sweep.items():
            series.add(label, x, summary[metric])
    return series


def jct_cdfs(profile: ScaleProfile) -> dict[str, list[tuple[float, float]]]:
    """Per-scheduler JCT CDFs at the profile's largest job count."""
    run_sweep(profile)
    return _CDFS[profile.name]


def figure(
    profile: ScaleProfile, metric: str, title: str, y_label: str
) -> FigureSeries:
    """Build the FigureSeries for one metric from the cached sweep."""
    sweep = run_sweep(profile)
    series = FigureSeries(title=title, x_label="jobs", y_label=y_label)
    for name in SCHEDULER_ORDER:
        for x, summary in sweep.get(name, {}).items():
            series.add(name, x, summary[metric])
    return series


def print_figure(series: FigureSeries) -> None:
    """Render a figure table to stdout (captured by pytest -s)."""
    print()
    print(series.render())
