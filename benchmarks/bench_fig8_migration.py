"""Figure 8 — effectiveness of task migration (overload handling).

8(a): number of server-overload occurrences and bandwidth cost with vs
without migration.  8(b): average accuracy by deadline and average JCT
with vs without migration.  The paper reports migration reduces
overload occurrences by 36–60% and JCT by 15–24% while adding 10–14%
bandwidth.
"""

from harness import ablation_figure, print_figure, run_config_sweep

from repro.api import SchedulerSpec


def _sweeps():
    return {
        "w/ migration": run_config_sweep(
            "mig-on",
            SchedulerSpec("MLF-H", config={"enable_migration": True}),
        ),
        "w/o migration": run_config_sweep(
            "mig-off",
            SchedulerSpec("MLF-H", config={"enable_migration": False}),
        ),
    }


def test_fig8a_overload_occurrences(benchmark):
    """Fig. 8(a) left Y: server-overload occurrences."""
    sweeps = benchmark.pedantic(_sweeps, rounds=1, iterations=1)
    series = ablation_figure(
        "Fig 8(a) overload occurrences", "count", "overload_occurrences", sweeps
    )
    print_figure(series)
    top = max(series.xs())
    assert series.data["w/ migration"][top] <= series.data["w/o migration"][top]


def test_fig8a_bandwidth(benchmark):
    """Fig. 8(a) right Y: bandwidth cost (migration adds traffic)."""
    sweeps = benchmark.pedantic(_sweeps, rounds=1, iterations=1)
    series = ablation_figure("Fig 8(a) bandwidth", "GB", "bandwidth_gb", sweeps)
    print_figure(series)
    top = max(series.xs())
    migrations = run_config_sweep("mig-on", None)  # cached
    assert migrations[top]["migrations"] > 0


def test_fig8b_accuracy(benchmark):
    """Fig. 8(b) left Y: average accuracy by deadline."""
    sweeps = benchmark.pedantic(_sweeps, rounds=1, iterations=1)
    series = ablation_figure("Fig 8(b) avg accuracy", "accuracy", "avg_accuracy", sweeps)
    print_figure(series)
    top = max(series.xs())
    assert (
        series.data["w/ migration"][top]
        >= series.data["w/o migration"][top] - 0.05
    )


def test_fig8b_jct(benchmark):
    """Fig. 8(b) right Y: average JCT."""
    sweeps = benchmark.pedantic(_sweeps, rounds=1, iterations=1)
    series = ablation_figure("Fig 8(b) avg JCT", "seconds", "avg_jct_s", sweeps)
    print_figure(series)
    top = max(series.xs())
    assert series.data["w/ migration"][top] <= series.data["w/o migration"][top] * 1.10
