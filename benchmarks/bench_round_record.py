"""Micro-benchmark: per-round JCT percentile cost in ``round_record``.

The telemetry hot path used to rebuild and re-sort the full JCT list on
every scheduler round — O(n log n) per round for n completed jobs,
O(n² log n) over a run.  :class:`repro.service.telemetry.RunningJctStats`
replaces that with an incrementally maintained sorted list
(``bisect.insort`` per completion), so a round's percentile block costs
O(percentiles · 1) lookups plus only the *new* completions' insertions.

This bench times both strategies over a simulated run (one completion
per round) and asserts the incremental path wins and stays
value-identical.  It deliberately avoids pytest-benchmark (not a repo
dependency): plain ``perf_counter`` loops, runnable as a script::

    PYTHONPATH=src python benchmarks/bench_round_record.py

or through pytest (``pytest benchmarks/bench_round_record.py``).
"""

from __future__ import annotations

import random
from time import perf_counter

from repro.analysis.cdf import percentile
from repro.service.telemetry import JCT_PERCENTILES, RunningJctStats
from repro.sim.metrics import JobRecord, SimulationMetrics

#: Rounds simulated (one job completes per round).
ROUNDS = 3000


def _record(index: int, jct: float) -> JobRecord:
    return JobRecord(
        job_id=f"j{index}",
        model_name="alexnet",
        arrival_time=0.0,
        completion_time=jct,
        deadline=jct + 1.0,
        jct=jct,
        waiting_time=0.0,
        iterations_completed=10,
        max_iterations=10,
        final_accuracy=0.9,
        accuracy_at_deadline=0.9,
        accuracy_requirement=0.8,
        urgency=5,
        gpus_requested=4,
        stopped_early=False,
        num_migrations=0,
    )


def _jcts(rounds: int, seed: int = 42) -> list[float]:
    rng = random.Random(seed)
    return [rng.expovariate(1.0 / 3600.0) for _ in range(rounds)]


def time_full_resort(jcts: list[float]) -> tuple[float, list[float]]:
    """The old strategy: rebuild + sort the JCT list every round."""
    metrics = SimulationMetrics()
    out: list[float] = []
    start = perf_counter()
    for index, jct in enumerate(jcts):
        metrics.job_records.append(_record(index, jct))
        sample = [r.jct for r in metrics.job_records]
        for q in JCT_PERCENTILES:
            out.append(percentile(sample, q))
    return perf_counter() - start, out


def time_incremental(jcts: list[float]) -> tuple[float, list[float]]:
    """The new strategy: RunningJctStats folds in only new completions."""
    metrics = SimulationMetrics()
    stats = RunningJctStats()
    out: list[float] = []
    start = perf_counter()
    for index, jct in enumerate(jcts):
        metrics.job_records.append(_record(index, jct))
        stats.sync(metrics)
        for q in JCT_PERCENTILES:
            out.append(stats.percentile(q))
    return perf_counter() - start, out


def test_incremental_is_faster_and_identical() -> None:
    """The incremental path must beat the resort path, bit-identically."""
    jcts = _jcts(ROUNDS)
    resort_s, resort_values = time_full_resort(jcts)
    incr_s, incr_values = time_incremental(jcts)
    assert incr_values == resort_values, "percentile values diverged"
    # The asymptotic gap is huge; 2x is a conservative floor that stays
    # robust under CI noise.
    assert incr_s * 2.0 < resort_s, (
        f"incremental path not faster: {incr_s:.4f}s vs {resort_s:.4f}s"
    )


def main() -> None:
    jcts = _jcts(ROUNDS)
    resort_s, resort_values = time_full_resort(jcts)
    incr_s, incr_values = time_incremental(jcts)
    assert incr_values == resort_values
    per_round_old = resort_s / ROUNDS * 1e6
    per_round_new = incr_s / ROUNDS * 1e6
    print(f"rounds                     {ROUNDS}")
    print(f"full re-sort per round     {per_round_old:10.2f} us")
    print(f"incremental per round      {per_round_new:10.2f} us")
    print(f"speedup                    {resort_s / incr_s:10.1f} x")


if __name__ == "__main__":
    main()
