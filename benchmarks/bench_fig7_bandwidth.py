"""Figure 7 — bandwidth-cost consideration.

The paper reports that including the bandwidth term in the placement
and migration rules (Section 3.3.2) reduces JCT by 5–15% and bandwidth
cost by 20–35%.  This bench compares MLF-H with and without the term.
"""

from harness import ablation_figure, print_figure, run_config_sweep

from repro.api import SchedulerSpec


def _sweeps():
    return {
        "w/ bandwidth": run_config_sweep(
            "bw-on",
            SchedulerSpec("MLF-H", config={"use_bandwidth": True}),
        ),
        "w/o bandwidth": run_config_sweep(
            "bw-off",
            SchedulerSpec("MLF-H", config={"use_bandwidth": False}),
        ),
    }


def test_fig7_bandwidth_cost(benchmark):
    """Total bandwidth with vs without the bandwidth term (left Y)."""
    sweeps = benchmark.pedantic(_sweeps, rounds=1, iterations=1)
    series = ablation_figure("Fig 7 bandwidth cost", "GB", "bandwidth_gb", sweeps)
    print_figure(series)
    top = max(series.xs())
    assert series.data["w/ bandwidth"][top] < series.data["w/o bandwidth"][top]


def test_fig7_jct(benchmark):
    """Average JCT with vs without the bandwidth term (right Y)."""
    sweeps = benchmark.pedantic(_sweeps, rounds=1, iterations=1)
    series = ablation_figure("Fig 7 avg JCT", "seconds", "avg_jct_s", sweeps)
    print_figure(series)
    top = max(series.xs())
    # Co-locating chatty tasks shortens iterations; allow slack since
    # the effect is the paper's 5-15%.
    assert series.data["w/ bandwidth"][top] <= series.data["w/o bandwidth"][top] * 1.10
