"""Figure 5 — overall performance at the large-scale simulation scale.

Same eight sub-figures as Figure 4 but on the larger ``SIM`` profile
(the paper's 550-server Philly-trace simulation, scaled down).  Shapes,
not absolute values, are asserted; see EXPERIMENTS.md for the measured
vs paper comparison.
"""

from harness import SIM, figure, jct_cdfs, print_figure

from repro.analysis import cdf_at, log_spaced_points


def test_fig5a_jct_cdf(benchmark):
    """Fig. 5(a): CDF of JCT at the highest workload (sim scale)."""
    cdfs = benchmark.pedantic(lambda: jct_cdfs(SIM), rounds=1, iterations=1)
    points = log_spaced_points(60.0, 4.0 * 3600.0, 8)
    print("\nFig 5(a) — CDF of jobs vs JCT (fraction with JCT <= t)")
    for name, cdf in cdfs.items():
        values = cdf_at([v for v, _f in cdf], points)
        print(name.ljust(12) + "".join(f"{v:>10.2f}" for v in values))
    mlfs = cdf_at([v for v, _ in cdfs["MLFS"]], points)
    fair = cdf_at([v for v, _ in cdfs["TensorFlow"]], points)
    assert sum(mlfs) >= sum(fair)


def test_fig5b_avg_jct(benchmark):
    """Fig. 5(b): average JCT vs number of jobs (sim scale)."""
    series = benchmark.pedantic(
        lambda: figure(SIM, "avg_jct_s", "Fig 5(b) avg JCT", "seconds"),
        rounds=1,
        iterations=1,
    )
    print_figure(series)
    ranking = series.ranking(max(series.xs()), ascending=True)
    assert ranking.index("MLFS") < ranking.index("TensorFlow")


def test_fig5c_deadline_ratio(benchmark):
    """Fig. 5(c): deadline guarantee ratio (sim scale)."""
    series = benchmark.pedantic(
        lambda: figure(SIM, "deadline_ratio", "Fig 5(c) deadline ratio", "ratio"),
        rounds=1,
        iterations=1,
    )
    print_figure(series)
    ranking = series.ranking(max(series.xs()), ascending=False)
    assert ranking.index("MLFS") < ranking.index("SLAQ")


def test_fig5d_waiting_time(benchmark):
    """Fig. 5(d): average job waiting time (sim scale)."""
    series = benchmark.pedantic(
        lambda: figure(SIM, "avg_wait_s", "Fig 5(d) avg waiting", "seconds"),
        rounds=1,
        iterations=1,
    )
    print_figure(series)
    ranking = series.ranking(max(series.xs()), ascending=True)
    assert ranking.index("MLFS") < ranking.index("TensorFlow")


def test_fig5e_average_accuracy(benchmark):
    """Fig. 5(e): average accuracy by deadline (sim scale)."""
    series = benchmark.pedantic(
        lambda: figure(SIM, "avg_accuracy", "Fig 5(e) avg accuracy", "accuracy"),
        rounds=1,
        iterations=1,
    )
    print_figure(series)
    ranking = series.ranking(max(series.xs()), ascending=False)
    assert ranking.index("MLFS") < ranking.index("TensorFlow")


def test_fig5f_accuracy_ratio(benchmark):
    """Fig. 5(f): accuracy guarantee ratio (sim scale)."""
    series = benchmark.pedantic(
        lambda: figure(SIM, "accuracy_ratio", "Fig 5(f) accuracy ratio", "ratio"),
        rounds=1,
        iterations=1,
    )
    print_figure(series)
    ranking = series.ranking(max(series.xs()), ascending=False)
    assert ranking.index("MLFS") < ranking.index("TensorFlow")


def test_fig5g_bandwidth(benchmark):
    """Fig. 5(g): total bandwidth cost (sim scale)."""
    series = benchmark.pedantic(
        lambda: figure(SIM, "bandwidth_gb", "Fig 5(g) bandwidth", "GB"),
        rounds=1,
        iterations=1,
    )
    print_figure(series)
    ranking = series.ranking(max(series.xs()), ascending=True)
    assert set(ranking[:3]) == {"MLFS", "MLF-RL", "MLF-H"}


def test_fig5h_scheduler_overhead(benchmark):
    """Fig. 5(h): scheduler time overhead (sim scale)."""
    series = benchmark.pedantic(
        lambda: figure(SIM, "overhead_ms", "Fig 5(h) overhead", "ms"),
        rounds=1,
        iterations=1,
    )
    print_figure(series)
    ranking = series.ranking(max(series.xs()), ascending=False)
    assert ranking[0] == "MLFS"
