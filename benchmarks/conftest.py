"""Benchmark fixtures: make the harness importable and share sweeps."""

import sys
from pathlib import Path

# The benchmarks directory is not a package; expose harness.py.
sys.path.insert(0, str(Path(__file__).parent))
