"""Figure 6 — urgency and deadline consideration in the priority.

Left axis of the paper's Figure 6: deadline guarantee ratio of *urgent*
jobs (urgency > 8) with and without the urgency coefficient ``L_J`` in
Eq. 2.  Right axis: overall deadline guarantee ratio with and without
the deadline term ``γ_d / (d_k − t)`` in Eq. 4.
"""

from harness import ablation_figure, print_figure, run_config_sweep

from repro.api import SchedulerSpec


def test_fig6_urgency_consideration(benchmark):
    """Urgent-job deadline ratio, w/ vs w/o the urgency coefficient."""

    def run():
        return {
            "w/ urgency": run_config_sweep(
                "urgency-on",
                SchedulerSpec("MLF-H", config={"use_urgency": True}),
            ),
            "w/o urgency": run_config_sweep(
                "urgency-off",
                SchedulerSpec("MLF-H", config={"use_urgency": False}),
            ),
        }

    sweeps = benchmark.pedantic(run, rounds=1, iterations=1)
    series = ablation_figure(
        "Fig 6 urgent-job deadline ratio",
        "ratio",
        "urgent_deadline_ratio",
        sweeps,
    )
    print_figure(series)
    top = max(series.xs())
    assert (
        series.data["w/ urgency"][top] >= series.data["w/o urgency"][top] - 0.05
    )


def test_fig6_deadline_consideration(benchmark):
    """Overall deadline ratio, w/ vs w/o the Eq. 4 deadline term."""

    def run():
        return {
            "w/ deadline": run_config_sweep(
                "deadline-on",
                SchedulerSpec("MLF-H", config={"use_deadline": True}),
            ),
            "w/o deadline": run_config_sweep(
                "deadline-off",
                SchedulerSpec("MLF-H", config={"use_deadline": False}),
            ),
        }

    sweeps = benchmark.pedantic(run, rounds=1, iterations=1)
    series = ablation_figure(
        "Fig 6 overall deadline ratio", "ratio", "deadline_ratio", sweeps
    )
    print_figure(series)
    top = max(series.xs())
    assert (
        series.data["w/ deadline"][top] >= series.data["w/o deadline"][top] - 0.05
    )
