"""Gateway front-tier throughput benchmark.

Boots a real gateway over N worker daemons and replays a seeded
synthetic submission stream (``repro.gateway.loadgen``) through the
batch path, measuring what the front tier is built for:

* sustained submissions per wall-clock second;
* p50/p95/p99 admission latency (a job's latency is the round trip of
  the batch call that carried it);
* integrity — every generated job id back exactly once (zero lost,
  zero duplicated) and clean worker shutdown afterwards.

Writes ``BENCH_gateway.json`` at the repo root.  Defaults replay 100k
submissions across 4 workers; the CI smoke step runs a small
configuration::

    python benchmarks/bench_gateway.py --count 1000 --workers 2

Thread spawn mode (the default) measures the protocol/routing path
without fork noise; ``--spawn process`` exercises the production shape.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.gateway import GatewayConfig, ThreadedGateway, run_loadgen  # noqa: E402

OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_gateway.json"


def run_bench(
    count: int,
    workers: int,
    batch: int,
    tenants: int,
    seed: int,
    spawn: str,
    out_path: Path,
) -> dict:
    """One full gateway bench run; returns (and writes) the result."""
    with tempfile.TemporaryDirectory(prefix="bench-gateway-") as tmp:
        config = GatewayConfig(
            workers=workers,
            spawn=spawn,
            workdir=str(Path(tmp) / "gw"),
            round_interval=0.0,  # rounds only on demand: pure ingest path
            gossip_interval=0.0,
            telemetry=False,  # no per-round JSONL cost in the hot path
        )
        started = time.perf_counter()
        with ThreadedGateway(config) as gateway:
            ready_seconds = time.perf_counter() - started
            result = run_loadgen(
                gateway.target,
                count=count,
                batch=batch,
                tenants=tenants,
                seed=seed,
                progress_every=max(count // 10, 1),
                progress=lambda done, total: print(
                    f"[bench_gateway] {done}/{total}", file=sys.stderr
                ),
            )
            assert gateway.supervisor is not None
            exit_codes = dict(gateway.supervisor.exit_codes())
        clean_shutdown = all(
            code in (0, None) for code in exit_codes.values()
        ) or spawn == "thread"
    payload = {
        "bench": "gateway",
        "workers": workers,
        "spawn": spawn,
        "startup_seconds": ready_seconds,
        "clean_shutdown": clean_shutdown,
        "worker_exit_codes": {str(k): v for k, v in exit_codes.items()},
        **result,
    }
    out_path.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--count", type=int, default=100_000)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--batch", type=int, default=500)
    parser.add_argument("--tenants", type=int, default=64)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--spawn", choices=["thread", "process"], default="thread")
    parser.add_argument("--out", default=str(OUT_PATH))
    args = parser.parse_args(argv)

    payload = run_bench(
        count=args.count,
        workers=args.workers,
        batch=args.batch,
        tenants=args.tenants,
        seed=args.seed,
        spawn=args.spawn,
        out_path=Path(args.out),
    )
    print(
        f"gateway bench: {payload['count']} submissions over"
        f" {payload['workers']} workers ({payload['spawn']}) ->"
        f" {payload['submissions_per_sec']:.0f} subs/s,"
        f" p99 {payload['latency_ms']['p99']:.2f} ms,"
        f" lost {payload['lost']}, duplicated {payload['duplicated']},"
        f" clean_shutdown {payload['clean_shutdown']}"
    )
    print(f"wrote {args.out}")
    if payload["lost"] or payload["duplicated"] or not payload["clean_shutdown"]:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
