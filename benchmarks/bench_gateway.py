"""Gateway front-tier throughput benchmark.

Boots a real gateway over N worker daemons and replays a seeded
synthetic submission stream (``repro.gateway.loadgen``) through the
batch path, measuring what the front tier is built for:

* sustained submissions per wall-clock second;
* p50/p95/p99 admission latency (a job's latency is the round trip of
  the batch call that carried it);
* integrity — every generated job id back exactly once (zero lost,
  zero duplicated) and clean worker shutdown afterwards.

Writes ``BENCH_gateway.json`` at the repo root.  Defaults replay 100k
submissions across 4 workers; the CI smoke step runs a small
configuration::

    python benchmarks/bench_gateway.py --count 1000 --workers 2

Thread spawn mode (the default) measures the protocol/routing path
without fork noise; ``--spawn process`` exercises the production shape.
``--trace`` turns on distributed tracing end to end (client trace ids,
gateway + worker spans) and writes the merged cluster Chrome trace plus
the aggregated per-worker Prometheus exposure next to the result JSON —
the traced run the observability acceptance check replays::

    python benchmarks/bench_gateway.py --count 10000 --workers 4 --trace
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.gateway import GatewayConfig, ThreadedGateway, run_loadgen  # noqa: E402
from repro.obs.distributed import trace_summary  # noqa: E402
from repro.service.client import ServiceClient  # noqa: E402

OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_gateway.json"


def run_bench(
    count: int,
    workers: int,
    batch: int,
    tenants: int,
    seed: int,
    spawn: str,
    out_path: Path,
    trace: bool = False,
) -> dict:
    """One full gateway bench run; returns (and writes) the result."""
    with tempfile.TemporaryDirectory(prefix="bench-gateway-") as tmp:
        config = GatewayConfig(
            workers=workers,
            spawn=spawn,
            workdir=str(Path(tmp) / "gw"),
            round_interval=0.0,  # rounds only on demand: pure ingest path
            gossip_interval=0.0,
            telemetry=False,  # no per-round JSONL cost in the hot path
            trace=trace,
        )
        started = time.perf_counter()
        trace_doc = None
        metrics_text = None
        with ThreadedGateway(config) as gateway:
            ready_seconds = time.perf_counter() - started
            result = run_loadgen(
                gateway.target,
                count=count,
                batch=batch,
                tenants=tenants,
                seed=seed,
                progress_every=max(count // 10, 1),
                progress=lambda done, total: print(
                    f"[bench_gateway] {done}/{total}", file=sys.stderr
                ),
                trace=trace,
            )
            if trace:
                with ServiceClient(gateway.target) as client:
                    trace_doc = client.trace_dump()["trace"]
                    metrics_text = client.metrics_text()
            assert gateway.supervisor is not None
            exit_codes = dict(gateway.supervisor.exit_codes())
        clean_shutdown = all(
            code in (0, None) for code in exit_codes.values()
        ) or spawn == "thread"
    payload = {
        "bench": "gateway",
        "workers": workers,
        "spawn": spawn,
        "startup_seconds": ready_seconds,
        "clean_shutdown": clean_shutdown,
        "worker_exit_codes": {str(k): v for k, v in exit_codes.items()},
        **result,
    }
    if trace_doc is not None:
        trace_path = out_path.with_name(out_path.stem + ".trace.json")
        trace_path.write_text(json.dumps(trace_doc, sort_keys=True) + "\n")
        payload["trace_summary"] = trace_summary(trace_doc)
        payload["trace_path"] = str(trace_path)
        print(f"[bench_gateway] wrote {trace_path}", file=sys.stderr)
    if metrics_text is not None:
        prom_path = out_path.with_name(out_path.stem + ".metrics.prom")
        prom_path.write_text(metrics_text)
        payload["metrics_path"] = str(prom_path)
        print(f"[bench_gateway] wrote {prom_path}", file=sys.stderr)
    out_path.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--count", type=int, default=100_000)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--batch", type=int, default=500)
    parser.add_argument("--tenants", type=int, default=64)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--spawn", choices=["thread", "process"], default="thread")
    parser.add_argument("--out", default=str(OUT_PATH))
    parser.add_argument(
        "--trace",
        action="store_true",
        help="end-to-end tracing; writes <out>.trace.json + <out>.metrics.prom",
    )
    args = parser.parse_args(argv)

    payload = run_bench(
        count=args.count,
        workers=args.workers,
        batch=args.batch,
        tenants=args.tenants,
        seed=args.seed,
        spawn=args.spawn,
        out_path=Path(args.out),
        trace=args.trace,
    )
    print(
        f"gateway bench: {payload['count']} submissions over"
        f" {payload['workers']} workers ({payload['spawn']}) ->"
        f" {payload['submissions_per_sec']:.0f} subs/s,"
        f" p99 {payload['latency_ms']['p99']:.2f} ms,"
        f" lost {payload['lost']}, duplicated {payload['duplicated']},"
        f" clean_shutdown {payload['clean_shutdown']}"
    )
    print(f"wrote {args.out}")
    if payload["lost"] or payload["duplicated"] or not payload["clean_shutdown"]:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
