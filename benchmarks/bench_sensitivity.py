"""Parameter-sensitivity ablations (the paper defers these to future
work — DESIGN.md §6 extension).

Sweeps the MLF-H weight ``α`` (ML vs computation features, Eq. 6), the
dependency discount ``γ`` (Eq. 3/5) and the migration-candidate
fraction ``p_s`` (Section 3.3.3), reporting average JCT and accuracy at
one contended workload point.
"""

from harness import ABLATION

from repro import api
from repro.analysis import format_table

_JOBS = 80


def _run(config: dict) -> dict:
    spec = api.replace_path(
        ABLATION.base_spec(api.SchedulerSpec("MLF-H", config=config)),
        "workload.num_jobs",
        _JOBS,
    )
    return api.run(spec)["summary"]


def test_alpha_sensitivity(benchmark):
    """Eq. 6 blend weight α ∈ {0, 0.3, 0.7, 1.0}."""

    def run():
        rows = []
        for alpha in (0.0, 0.3, 0.7, 1.0):
            summary = _run({"priority": {"alpha": alpha}})
            rows.append([alpha, summary["avg_jct_s"], summary["avg_accuracy"]])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n" + format_table(["alpha", "avg_jct_s", "avg_accuracy"], rows))
    assert len(rows) == 4
    assert all(jct > 0 for _a, jct, _acc in rows)


def test_gamma_sensitivity(benchmark):
    """Dependency discount γ ∈ {0.2, 0.5, 0.8, 0.95}."""

    def run():
        rows = []
        for gamma in (0.2, 0.5, 0.8, 0.95):
            summary = _run({"priority": {"gamma": gamma}})
            rows.append([gamma, summary["avg_jct_s"], summary["deadline_ratio"]])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n" + format_table(["gamma", "avg_jct_s", "deadline_ratio"], rows))
    assert len(rows) == 4


def test_ps_fraction_sensitivity(benchmark):
    """Migration-candidate fraction p_s ∈ {0.05, 0.1, 0.3, 1.0}."""

    def run():
        rows = []
        for ps in (0.05, 0.1, 0.3, 1.0):
            summary = _run({"migration_candidate_fraction": ps})
            rows.append([ps, summary["avg_jct_s"], summary["migrations"]])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n" + format_table(["p_s", "avg_jct_s", "migrations"], rows))
    assert len(rows) == 4


def test_overload_threshold_sensitivity(benchmark):
    """Overload threshold h_r ∈ {0.7, 0.8, 0.9, 0.99}."""

    def run():
        rows = []
        for hr in (0.7, 0.8, 0.9, 0.99):
            summary = _run(
                {"overload_threshold": hr, "system_overload_threshold": hr}
            )
            rows.append([hr, summary["avg_jct_s"], summary["overload_occurrences"]])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n" + format_table(["h_r", "avg_jct_s", "overloads"], rows))
    assert len(rows) == 4
