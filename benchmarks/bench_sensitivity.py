"""Parameter-sensitivity ablations (the paper defers these to future
work — DESIGN.md §6 extension).

Sweeps the MLF-H weight ``α`` (ML vs computation features, Eq. 6), the
dependency discount ``γ`` (Eq. 3/5) and the migration-candidate
fraction ``p_s`` (Section 3.3.3), reporting average JCT and accuracy at
one contended workload point.
"""

from harness import ABLATION, BENCH_ENGINE, BENCH_WORKLOAD

from repro.analysis import format_table
from repro.core import MLFSConfig, PriorityWeights, make_mlf_h
from repro.sim import SimulationSetup, run_simulation
from repro.workload import generate_trace

_JOBS = 80


def _run(config: MLFSConfig) -> dict:
    records = generate_trace(
        _JOBS,
        duration_seconds=ABLATION.arrival_window_seconds,
        seed=ABLATION.trace_seed,
    )
    setup = SimulationSetup(
        records=records,
        cluster_factory=ABLATION.cluster_factory(),
        workload_seed=ABLATION.workload_seed,
        engine_config=BENCH_ENGINE,
        workload_config=BENCH_WORKLOAD,
    )
    return run_simulation(make_mlf_h(config), setup).summary()


def test_alpha_sensitivity(benchmark):
    """Eq. 6 blend weight α ∈ {0, 0.3, 0.7, 1.0}."""

    def run():
        rows = []
        for alpha in (0.0, 0.3, 0.7, 1.0):
            config = MLFSConfig(
                priority=PriorityWeights(alpha=alpha), enable_load_control=False
            )
            summary = _run(config)
            rows.append([alpha, summary["avg_jct_s"], summary["avg_accuracy"]])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n" + format_table(["alpha", "avg_jct_s", "avg_accuracy"], rows))
    assert len(rows) == 4
    assert all(jct > 0 for _a, jct, _acc in rows)


def test_gamma_sensitivity(benchmark):
    """Dependency discount γ ∈ {0.2, 0.5, 0.8, 0.95}."""

    def run():
        rows = []
        for gamma in (0.2, 0.5, 0.8, 0.95):
            config = MLFSConfig(
                priority=PriorityWeights(gamma=gamma), enable_load_control=False
            )
            summary = _run(config)
            rows.append([gamma, summary["avg_jct_s"], summary["deadline_ratio"]])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n" + format_table(["gamma", "avg_jct_s", "deadline_ratio"], rows))
    assert len(rows) == 4


def test_ps_fraction_sensitivity(benchmark):
    """Migration-candidate fraction p_s ∈ {0.05, 0.1, 0.3, 1.0}."""

    def run():
        rows = []
        for ps in (0.05, 0.1, 0.3, 1.0):
            config = MLFSConfig(
                migration_candidate_fraction=ps, enable_load_control=False
            )
            summary = _run(config)
            rows.append([ps, summary["avg_jct_s"], summary["migrations"]])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n" + format_table(["p_s", "avg_jct_s", "migrations"], rows))
    assert len(rows) == 4


def test_overload_threshold_sensitivity(benchmark):
    """Overload threshold h_r ∈ {0.7, 0.8, 0.9, 0.99}."""

    def run():
        rows = []
        for hr in (0.7, 0.8, 0.9, 0.99):
            config = MLFSConfig(
                overload_threshold=hr,
                system_overload_threshold=hr,
                enable_load_control=False,
            )
            summary = _run(config)
            rows.append([hr, summary["avg_jct_s"], summary["overload_occurrences"]])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n" + format_table(["h_r", "avg_jct_s", "overloads"], rows))
    assert len(rows) == 4
