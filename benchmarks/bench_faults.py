"""Fault-injection benchmark: JCT degradation vs server MTBF.

Sweeps the same MLF-H workload under fault plans drawn at several
mean-time-between-failures values (plus a fault-free baseline) through
``repro.api.sweep``, twice — serial and process-parallel — and verifies
the merged results are bit-identical (the FaultPlan rides in each
spec's digest, so caching and sharding stay deterministic).  Writes
``BENCH_faults.json`` at the repo root: the JCT-vs-MTBF curve is the
headline table, the recovery accounting (kills, lost iterations) the
supporting one.

Override the sweep with::

    REPRO_FAULT_BENCH_MTBF=10,20,40,80 REPRO_FAULT_BENCH_JOBS=60 \
        python benchmarks/bench_faults.py
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from harness import REAL  # noqa: E402

from repro import api  # noqa: E402

OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_faults.json"

#: Rounds covered by each generated fault plan — long enough to span
#: the drain of the bench workload at every MTBF point.
FAULT_HORIZON_ROUNDS = 400

#: Checkpoint period (iterations) for lost-work accounting.
CHECKPOINT_PERIOD = 5


def _mtbf_values() -> list[float]:
    env = os.environ.get("REPRO_FAULT_BENCH_MTBF", "15,30,60")
    return [float(v) for v in env.split(",") if v.strip()]


def _grid() -> tuple[api.Grid, list[float]]:
    mtbfs = _mtbf_values()
    jobs = int(os.environ.get("REPRO_FAULT_BENCH_JOBS", "30"))
    base = api.replace_path(
        REAL.base_spec(api.SchedulerSpec("MLF-H")), "workload.num_jobs", jobs
    )
    plans = [None] + [
        api.FaultPlan.from_mtbf(
            num_servers=REAL.num_servers,
            horizon_rounds=FAULT_HORIZON_ROUNDS,
            mtbf_rounds=mtbf,
            seed=int(mtbf),
            checkpoint_period=CHECKPOINT_PERIOD,
        )
        for mtbf in mtbfs
    ]
    return api.Grid(base, axes={"faults": plans}), mtbfs


def run_bench() -> dict:
    """Sweep MTBF points serial and parallel; build the JCT curve."""
    grid, mtbfs = _grid()
    workers = int(os.environ.get("REPRO_FAULT_BENCH_WORKERS", "4"))

    started = time.perf_counter()
    serial = api.sweep(grid, workers=0)
    serial_s = time.perf_counter() - started

    started = time.perf_counter()
    parallel = api.sweep(grid, workers=workers)
    parallel_s = time.perf_counter() - started

    identical = json.dumps(serial.merged(), sort_keys=True) == json.dumps(
        parallel.merged(), sort_keys=True
    )

    # Records come back in grid order: fault-free first, then one per
    # MTBF point (ascending by our axis order).
    labels = ["no-faults"] + [f"mtbf={mtbf:g}r" for mtbf in mtbfs]
    curve = []
    for label, record in zip(labels, serial.ok()):
        summary = record["summary"]
        curve.append(
            {
                "point": label,
                "avg_jct_s": round(summary["avg_jct_s"], 3),
                "makespan_s": round(summary["makespan_s"], 3),
                "deadline_ratio": round(summary["deadline_ratio"], 4),
                "fault_events": summary.get("fault_events", 0.0),
                "tasks_killed": summary.get("tasks_killed", 0.0),
                "iterations_lost": summary.get("iterations_lost", 0.0),
            }
        )

    baseline = curve[0]["avg_jct_s"] if curve else 0.0
    for point in curve:
        point["jct_vs_baseline"] = (
            round(point["avg_jct_s"] / baseline, 4) if baseline > 0 else None
        )

    return {
        "benchmark": "repro.faults JCT vs MTBF",
        "scheduler": "MLF-H",
        "mtbf_rounds": mtbfs,
        "checkpoint_period": CHECKPOINT_PERIOD,
        "curve": curve,
        "serial_s": round(serial_s, 3),
        "parallel_s": round(parallel_s, 3),
        "workers": workers,
        "cpu_count": os.cpu_count(),
        "bit_identical": identical,
        "failed_shards": serial.stats["failed"] + parallel.stats["failed"],
    }


def main() -> int:
    report = run_bench()
    OUT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    if not report["bit_identical"] or report["failed_shards"]:
        return 1
    return 0


try:
    import pytest
except ImportError:  # pragma: no cover - script mode without pytest
    pytest = None

if pytest is not None:

    @pytest.mark.slow
    def test_fault_sweep_bit_identical():
        """Serial ≡ parallel over the MTBF sweep; JCT degrades with faults."""
        report = run_bench()
        OUT_PATH.write_text(json.dumps(report, indent=2) + "\n")
        assert report["bit_identical"]
        assert report["failed_shards"] == 0
        faulted = [p for p in report["curve"][1:]]
        assert any(p["fault_events"] > 0 for p in faulted)


if __name__ == "__main__":
    sys.exit(main())
