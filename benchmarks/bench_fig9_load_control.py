"""Figure 9 — effectiveness of MLF-C system load control.

Accuracy guarantee ratio and average JCT with vs without MLF-C.  The
paper reports MLF-C improves the accuracy guarantee ratio by 17–23% and
average JCT by 28–42% under overload.
"""

from harness import BENCH_PRETRAIN, ablation_figure, print_figure, run_config_sweep

from repro.api import SchedulerSpec


def _sweeps():
    return {
        # Full MLFS = MLF-RL + MLF-C; the ablation removes only MLF-C.
        "w/ MLF-C": run_config_sweep(
            "mlfc-on", SchedulerSpec("MLFS", pretrain=BENCH_PRETRAIN)
        ),
        "w/o MLF-C": run_config_sweep(
            "mlfc-off", SchedulerSpec("MLF-RL", pretrain=BENCH_PRETRAIN)
        ),
    }


def test_fig9_accuracy_guarantee(benchmark):
    """Left Y: accuracy guarantee ratio with vs without MLF-C."""
    sweeps = benchmark.pedantic(_sweeps, rounds=1, iterations=1)
    series = ablation_figure(
        "Fig 9 accuracy guarantee ratio", "ratio", "accuracy_ratio", sweeps
    )
    print_figure(series)
    top = max(series.xs())
    assert series.data["w/ MLF-C"][top] >= series.data["w/o MLF-C"][top] - 0.05


def test_fig9_jct(benchmark):
    """Right Y: average JCT with vs without MLF-C."""
    sweeps = benchmark.pedantic(_sweeps, rounds=1, iterations=1)
    series = ablation_figure("Fig 9 avg JCT", "seconds", "avg_jct_s", sweeps)
    print_figure(series)
    top = max(series.xs())
    # MLF-C sheds unnecessary iterations; JCT must improve under load.
    assert series.data["w/ MLF-C"][top] < series.data["w/o MLF-C"][top]
