"""Figure 4 — overall performance at the real-experiment scale.

One bench per sub-figure of the paper's Figure 4 (and the makespan
numbers quoted in Section 4.2.1).  All eight extract their metric from
the same cached job-count sweep (see ``harness.run_sweep``); the first
bench to run pays the sweep cost, which pytest-benchmark reports as its
timing.  Run with ``pytest benchmarks/ --benchmark-only -s`` to see the
series tables.
"""

from harness import REAL, figure, jct_cdfs, print_figure, run_sweep

from repro.analysis import cdf_at, log_spaced_points


def test_fig4a_jct_cdf(benchmark):
    """Fig. 4(a): CDF of JCT at the highest workload."""

    def build():
        return jct_cdfs(REAL)

    cdfs = benchmark.pedantic(build, rounds=1, iterations=1)
    points = log_spaced_points(60.0, 4.0 * 3600.0, 8)
    print("\nFig 4(a) — CDF of jobs vs JCT (fraction with JCT <= t)")
    header = "scheduler".ljust(12) + "".join(f"{p/60.0:>9.0f}m" for p in points)
    print(header)
    for name, cdf in cdfs.items():
        values = cdf_at([v for v, _f in cdf], points)
        print(name.ljust(12) + "".join(f"{v:>10.2f}" for v in values))
    # Shape check: MLFS's CDF dominates the fair scheduler's.
    mlfs = cdf_at([v for v, _ in cdfs["MLFS"]], points)
    fair = cdf_at([v for v, _ in cdfs["TensorFlow"]], points)
    assert sum(mlfs) >= sum(fair)


def test_fig4b_avg_jct(benchmark):
    """Fig. 4(b): average JCT vs number of jobs."""
    series = benchmark.pedantic(
        lambda: figure(REAL, "avg_jct_s", "Fig 4(b) avg JCT", "seconds"),
        rounds=1,
        iterations=1,
    )
    print_figure(series)
    top = max(series.xs())
    ranking = series.ranking(top, ascending=True)
    assert ranking.index("MLFS") < ranking.index("TensorFlow")


def test_fig4c_deadline_ratio(benchmark):
    """Fig. 4(c): job deadline guarantee ratio vs number of jobs."""
    series = benchmark.pedantic(
        lambda: figure(REAL, "deadline_ratio", "Fig 4(c) deadline ratio", "ratio"),
        rounds=1,
        iterations=1,
    )
    print_figure(series)
    top = max(series.xs())
    ranking = series.ranking(top, ascending=False)
    assert ranking.index("MLFS") < ranking.index("SLAQ")


def test_fig4d_waiting_time(benchmark):
    """Fig. 4(d): average job waiting time vs number of jobs."""
    series = benchmark.pedantic(
        lambda: figure(REAL, "avg_wait_s", "Fig 4(d) avg waiting", "seconds"),
        rounds=1,
        iterations=1,
    )
    print_figure(series)
    top = max(series.xs())
    ranking = series.ranking(top, ascending=True)
    assert ranking.index("MLFS") < ranking.index("TensorFlow")


def test_fig4e_average_accuracy(benchmark):
    """Fig. 4(e): average accuracy by the deadline vs number of jobs."""
    series = benchmark.pedantic(
        lambda: figure(REAL, "avg_accuracy", "Fig 4(e) avg accuracy", "accuracy"),
        rounds=1,
        iterations=1,
    )
    print_figure(series)
    top = max(series.xs())
    ranking = series.ranking(top, ascending=False)
    assert ranking.index("MLFS") < ranking.index("TensorFlow")


def test_fig4f_accuracy_ratio(benchmark):
    """Fig. 4(f): accuracy guarantee ratio vs number of jobs."""
    series = benchmark.pedantic(
        lambda: figure(REAL, "accuracy_ratio", "Fig 4(f) accuracy ratio", "ratio"),
        rounds=1,
        iterations=1,
    )
    print_figure(series)
    top = max(series.xs())
    ranking = series.ranking(top, ascending=False)
    assert ranking.index("MLFS") < ranking.index("TensorFlow")


def test_fig4g_bandwidth(benchmark):
    """Fig. 4(g): total bandwidth cost vs number of jobs."""
    series = benchmark.pedantic(
        lambda: figure(REAL, "bandwidth_gb", "Fig 4(g) bandwidth", "GB"),
        rounds=1,
        iterations=1,
    )
    print_figure(series)
    top = max(series.xs())
    ranking = series.ranking(top, ascending=True)
    # The MLFS family must be the three lowest-bandwidth schedulers.
    assert set(ranking[:3]) == {"MLFS", "MLF-RL", "MLF-H"}


def test_fig4h_scheduler_overhead(benchmark):
    """Fig. 4(h): average scheduler time overhead vs number of jobs."""
    series = benchmark.pedantic(
        lambda: figure(REAL, "overhead_ms", "Fig 4(h) overhead", "ms"),
        rounds=1,
        iterations=1,
    )
    print_figure(series)
    top = max(series.xs())
    ranking = series.ranking(top, ascending=False)
    # MLFS (RL + load control) is the most expensive scheduler.
    assert ranking[0] == "MLFS"


def test_fig4_makespan(benchmark):
    """Section 4.2.1 text: makespan at every workload level."""
    series = benchmark.pedantic(
        lambda: figure(REAL, "makespan_s", "Fig 4 makespan", "seconds"),
        rounds=1,
        iterations=1,
    )
    print_figure(series)
    top = max(series.xs())
    sweep = run_sweep(REAL)
    assert sweep["MLFS"][top]["makespan_s"] <= sweep["TensorFlow"][top]["makespan_s"]
