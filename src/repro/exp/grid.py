"""Cartesian experiment grids.

A :class:`Grid` is a base :class:`~repro.exp.spec.RunSpec` plus a set
of axes — dotted field paths mapped to the values they sweep over.  The
paper's Figure 4, for instance, is::

    Grid(
        base=RunSpec(scheduler=SchedulerSpec("MLF-H"), ...),
        axes={
            "scheduler": [SchedulerSpec("MLF-H"), SchedulerSpec("Tiresias"), ...],
            "workload.num_jobs": [30, 60, 120, 240],
        },
    )

Expansion order is deterministic: axes iterate in insertion order, the
last axis varying fastest (:func:`itertools.product` semantics), so the
same grid always yields the same spec list — the foundation of the
sweep engine's reproducible, order-independent merges.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping, Sequence

from repro.exp.spec import (
    ClusterSpec,
    RunSpec,
    SchedulerSpec,
    WorkloadSpec,
    engine_config_from_json,
    engine_config_to_json,
    replace_path,
)
from repro.faults.plan import FaultPlan

__all__ = ["Grid"]

#: Top-level spec fields whose axis values may be given as JSON
#: mappings (deserialized through the matching ``from_json``).
_SUBSPEC_CODECS = {
    "scheduler": SchedulerSpec.from_json,
    "workload": WorkloadSpec.from_json,
    "cluster": ClusterSpec.from_json,
    "engine": engine_config_from_json,
    "faults": lambda data: FaultPlan.from_json(data) if data else None,
}


@dataclass(frozen=True)
class Grid:
    """A declarative cartesian product of run specs."""

    base: RunSpec
    axes: Mapping[str, Sequence[Any]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for path, values in self.axes.items():
            if not values:
                raise ValueError(f"axis {path!r} has no values")

    def __len__(self) -> int:
        total = 1
        for values in self.axes.values():
            total *= len(values)
        return total

    def specs(self) -> list[RunSpec]:
        """Expand the grid into its spec list (deterministic order)."""
        return list(self)

    def __iter__(self) -> Iterator[RunSpec]:
        paths = list(self.axes)
        for combo in itertools.product(*(self.axes[p] for p in paths)):
            spec = self.base
            for path, value in zip(paths, combo):
                spec = replace_path(spec, path, value)
            yield spec

    def to_json(self) -> dict[str, Any]:
        """JSON-ready representation (axis sub-specs serialized)."""
        axes: dict[str, list[Any]] = {}
        for path, values in self.axes.items():
            out: list[Any] = []
            for value in values:
                if hasattr(value, "to_json"):
                    out.append(value.to_json())
                elif path == "engine":
                    out.append(engine_config_to_json(value))
                elif isinstance(value, tuple):
                    out.append(list(value))
                else:
                    out.append(value)
            axes[path] = out
        return {"base": self.base.to_json(), "axes": axes}

    @classmethod
    def from_json(cls, data: Mapping[str, Any]) -> "Grid":
        """Rebuild a grid from its JSON form (e.g. ``--grid`` files)."""
        axes: dict[str, list[Any]] = {}
        for path, values in data.get("axes", {}).items():
            codec = _SUBSPEC_CODECS.get(path)
            if codec is not None:
                axes[path] = [codec(v) for v in values]
            else:
                axes[path] = list(values)
        return cls(base=RunSpec.from_json(data["base"]), axes=axes)
