"""repro.exp — the declarative, process-parallel experiment engine.

Specs (:mod:`repro.exp.spec`) describe simulations; grids
(:mod:`repro.exp.grid`) expand cartesian products of them; the runner
(:mod:`repro.exp.runner`) executes them — serially or across a process
pool — with per-shard caching, structured failure isolation and
deterministic digest-keyed merging; :mod:`repro.exp.io` persists the
results.  Prefer importing through :mod:`repro.api`, the supported
public façade.
"""

from repro.exp.grid import Grid
from repro.exp.io import RESULTS_FORMAT, load_results, save_results
from repro.exp.runner import (
    RunRecord,
    SweepProgress,
    SweepResult,
    SweepRunner,
    default_workers,
    execute_spec,
)
from repro.exp.spec import (
    SPEC_FORMAT,
    ClusterSpec,
    GatewaySpec,
    PretrainSpec,
    RunSpec,
    SchedulerSpec,
    WorkloadSpec,
    replace_path,
)

__all__ = [
    "ClusterSpec",
    "GatewaySpec",
    "Grid",
    "PretrainSpec",
    "RESULTS_FORMAT",
    "RunRecord",
    "RunSpec",
    "SPEC_FORMAT",
    "SchedulerSpec",
    "SweepProgress",
    "SweepResult",
    "SweepRunner",
    "WorkloadSpec",
    "default_workers",
    "execute_spec",
    "load_results",
    "replace_path",
    "save_results",
]
