"""Declarative run specifications.

A :class:`RunSpec` fully describes one simulation — workload, cluster,
scheduler (name + config overrides + optional policy pretraining),
engine configuration and the workload seed.  Every spec:

* **round-trips through JSON** (``to_json`` / ``from_json`` are exact
  inverses, proven by equality in ``tests/test_exp.py``), so grids can
  be stored in files, shipped to worker processes and archived next to
  their results;
* **hashes to a stable digest** (:meth:`RunSpec.digest`) — the SHA-256
  of its canonical JSON form — which keys the sweep shard cache and the
  deterministic result merge in :mod:`repro.exp.runner`.

Scheduler configuration is carried as a plain JSON mapping (scalars
plus optional nested ``priority`` / ``reward`` mappings) rather than an
:class:`~repro.core.config.MLFSConfig` instance so that the spec stays
serializable; :func:`repro.schedulers.build_scheduler` converts it when
the simulation is instantiated.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Mapping, Optional

from repro.cluster.cluster import Cluster
from repro.faults.plan import FaultPlan
from repro.sim.engine import EngineConfig
from repro.workload.generator import WorkloadConfig
from repro.workload.synthetic import generate_trace
from repro.workload.trace import TraceRecord, read_trace

__all__ = [
    "ClusterSpec",
    "GatewaySpec",
    "PretrainSpec",
    "RunSpec",
    "SchedulerSpec",
    "WorkloadSpec",
    "SPEC_FORMAT",
]

#: Version salt folded into every digest: bump when the spec schema (or
#: the simulation semantics a spec implies) changes incompatibly, so
#: stale shard caches can never satisfy a new sweep.
#: v2: specs carry an optional ``faults`` FaultPlan (repro.faults).
SPEC_FORMAT = "repro.exp/2"


def _freeze_config(config: Mapping[str, Any]) -> dict[str, Any]:
    """Normalize a scheduler-config mapping to JSON-native values.

    Tuples become lists (what ``json.loads`` would hand back), so spec
    equality is preserved across a JSON round-trip.
    """
    out: dict[str, Any] = {}
    for key, value in config.items():
        if isinstance(value, Mapping):
            out[key] = _freeze_config(value)
        elif isinstance(value, tuple):
            out[key] = list(value)
        else:
            out[key] = value
    return out


@dataclass(frozen=True)
class WorkloadSpec:
    """The workload of one run: a trace plus the job-conversion knobs.

    Either a synthetic Philly-like trace (``num_jobs`` jobs over
    ``duration_hours``, generated with ``trace_seed``) or, when
    ``trace_path`` is set, a trace CSV read from disk (the synthetic
    fields are then ignored).
    """

    num_jobs: int = 100
    duration_hours: float = 2.0
    trace_seed: int = 0
    deadline_hours: tuple[float, float] = (0.5, 24.0)
    trace_path: Optional[str] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "deadline_hours", tuple(self.deadline_hours))

    def records(self) -> list[TraceRecord]:
        """Materialize the trace this spec describes."""
        if self.trace_path is not None:
            return read_trace(self.trace_path)
        return generate_trace(
            self.num_jobs,
            duration_seconds=self.duration_hours * 3600.0,
            seed=self.trace_seed,
        )

    def workload_config(self) -> WorkloadConfig:
        """The trace → job conversion configuration."""
        return WorkloadConfig(deadline_uniform_range_hours=self.deadline_hours)

    def to_json(self) -> dict[str, Any]:
        """JSON-ready representation."""
        return {
            "num_jobs": self.num_jobs,
            "duration_hours": self.duration_hours,
            "trace_seed": self.trace_seed,
            "deadline_hours": list(self.deadline_hours),
            "trace_path": self.trace_path,
        }

    @classmethod
    def from_json(cls, data: Mapping[str, Any]) -> "WorkloadSpec":
        """Inverse of :meth:`to_json`."""
        return cls(
            num_jobs=int(data["num_jobs"]),
            duration_hours=float(data["duration_hours"]),
            trace_seed=int(data["trace_seed"]),
            deadline_hours=tuple(data.get("deadline_hours", (0.5, 24.0))),
            trace_path=data.get("trace_path"),
        )


@dataclass(frozen=True)
class ClusterSpec:
    """The cluster of one run (homogeneous servers, as in the paper)."""

    num_servers: int = 8
    gpus_per_server: int = 4

    def build(self) -> Cluster:
        """A fresh cluster (clusters are stateful — one per run)."""
        return Cluster.build(self.num_servers, self.gpus_per_server)

    def to_json(self) -> dict[str, Any]:
        """JSON-ready representation."""
        return {
            "num_servers": self.num_servers,
            "gpus_per_server": self.gpus_per_server,
        }

    @classmethod
    def from_json(cls, data: Mapping[str, Any]) -> "ClusterSpec":
        """Inverse of :meth:`to_json`."""
        return cls(
            num_servers=int(data["num_servers"]),
            gpus_per_server=int(data["gpus_per_server"]),
        )


@dataclass(frozen=True)
class PretrainSpec:
    """Recipe for imitation-pretraining an MLF-RL scoring policy.

    Mirrors :class:`repro.core.train.TrainingSetup` in declarative form:
    MLF-H runs over the described workload with a decision recorder, and
    the recorded host choices supervise the policy.  The runner memoizes
    the trained policy per process, keyed by this spec's digest, so a
    sweep trains each distinct recipe once per worker instead of once
    per shard.
    """

    workload: WorkloadSpec = WorkloadSpec(num_jobs=60, duration_hours=1.0, trace_seed=7)
    cluster: ClusterSpec = ClusterSpec(num_servers=6, gpus_per_server=4)
    seed: int = 8
    imitation_epochs: int = 2
    config: Mapping[str, Any] = field(
        default_factory=lambda: {"enable_load_control": False}
    )
    engine: EngineConfig = EngineConfig()

    def __post_init__(self) -> None:
        object.__setattr__(self, "config", _freeze_config(self.config))

    def to_json(self) -> dict[str, Any]:
        """JSON-ready representation."""
        return {
            "workload": self.workload.to_json(),
            "cluster": self.cluster.to_json(),
            "seed": self.seed,
            "imitation_epochs": self.imitation_epochs,
            "config": dict(self.config),
            "engine": engine_config_to_json(self.engine),
        }

    @classmethod
    def from_json(cls, data: Mapping[str, Any]) -> "PretrainSpec":
        """Inverse of :meth:`to_json`."""
        return cls(
            workload=WorkloadSpec.from_json(data["workload"]),
            cluster=ClusterSpec.from_json(data["cluster"]),
            seed=int(data["seed"]),
            imitation_epochs=int(data["imitation_epochs"]),
            config=data.get("config", {}),
            engine=engine_config_from_json(data.get("engine", {})),
        )

    def digest(self) -> str:
        """Stable content hash (policy memoization key)."""
        return _digest_of(self.to_json())


@dataclass(frozen=True)
class SchedulerSpec:
    """Which policy schedules the run, and how it is configured.

    ``name`` is a :data:`repro.schedulers.SCHEDULER_FACTORIES` key;
    ``config`` holds :class:`~repro.core.config.MLFSConfig` overrides
    for the MLF family (baselines take no config); ``pretrain``
    optionally supplies an imitation-trained scoring policy (MLF-RL,
    MLFS and the RL baseline accept one).
    """

    name: str = "MLF-H"
    config: Mapping[str, Any] = field(default_factory=dict)
    pretrain: Optional[PretrainSpec] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "config", _freeze_config(self.config))

    def to_json(self) -> dict[str, Any]:
        """JSON-ready representation."""
        return {
            "name": self.name,
            "config": dict(self.config),
            "pretrain": self.pretrain.to_json() if self.pretrain else None,
        }

    @classmethod
    def from_json(cls, data: Mapping[str, Any]) -> "SchedulerSpec":
        """Inverse of :meth:`to_json`."""
        pretrain = data.get("pretrain")
        return cls(
            name=str(data["name"]),
            config=data.get("config", {}),
            pretrain=PretrainSpec.from_json(pretrain) if pretrain else None,
        )


def engine_config_to_json(config: EngineConfig) -> dict[str, Any]:
    """:class:`EngineConfig` → JSON mapping (all fields are scalars)."""
    return dataclasses.asdict(config)


def engine_config_from_json(data: Mapping[str, Any]) -> EngineConfig:
    """Inverse of :func:`engine_config_to_json`; unknown keys rejected."""
    known = {f.name for f in dataclasses.fields(EngineConfig)}
    unknown = set(data) - known
    if unknown:
        raise ValueError(f"unknown EngineConfig fields: {sorted(unknown)}")
    return EngineConfig(**dict(data))


@dataclass(frozen=True)
class RunSpec:
    """Everything needed to reproduce one simulation, serializable.

    ``seed`` is the workload seed of the trace → job conversion
    (:func:`repro.workload.build_jobs`); sweep replications vary it
    while holding the rest of the spec fixed.  ``faults`` optionally
    attaches a :class:`repro.faults.plan.FaultPlan` — it is part of the
    spec's JSON form and digest, so faulted and fault-free runs (and
    runs under different plans) never share a cache shard.
    """

    scheduler: SchedulerSpec
    workload: WorkloadSpec = field(default_factory=WorkloadSpec)
    cluster: ClusterSpec = field(default_factory=ClusterSpec)
    engine: EngineConfig = field(default_factory=EngineConfig)
    seed: int = 0
    faults: Optional[FaultPlan] = None

    def to_json(self) -> dict[str, Any]:
        """JSON-ready representation (exact inverse of ``from_json``)."""
        return {
            "format": SPEC_FORMAT,
            "scheduler": self.scheduler.to_json(),
            "workload": self.workload.to_json(),
            "cluster": self.cluster.to_json(),
            "engine": engine_config_to_json(self.engine),
            "seed": self.seed,
            "faults": self.faults.to_json() if self.faults is not None else None,
        }

    @classmethod
    def from_json(cls, data: Mapping[str, Any]) -> "RunSpec":
        """Rebuild a spec from its JSON form."""
        fmt = data.get("format", SPEC_FORMAT)
        if fmt != SPEC_FORMAT:
            raise ValueError(f"unsupported spec format {fmt!r} (want {SPEC_FORMAT!r})")
        faults = data.get("faults")
        return cls(
            scheduler=SchedulerSpec.from_json(data["scheduler"]),
            workload=WorkloadSpec.from_json(data["workload"]),
            cluster=ClusterSpec.from_json(data["cluster"]),
            engine=engine_config_from_json(data.get("engine", {})),
            seed=int(data.get("seed", 0)),
            faults=FaultPlan.from_json(faults) if faults else None,
        )

    def digest(self) -> str:
        """SHA-256 of the canonical JSON form — the shard cache key."""
        return _digest_of(self.to_json())

    def label(self) -> str:
        """Short human-readable tag used in progress reporting."""
        return (
            f"{self.scheduler.name}/j{self.workload.num_jobs}"
            f"/s{self.seed}/{self.digest()[:8]}"
        )


@dataclass(frozen=True)
class GatewaySpec:
    """Everything that determines a gateway deployment's behaviour.

    The declarative form of :class:`repro.gateway.GatewayConfig` minus
    the runtime-only knobs (listen address, workdir, spawn mode, poll
    intervals): exactly the fields the determinism contract (DESIGN.md
    §12) says must match for two gateways to route and schedule one
    submission trace identically.  ``digest()`` is therefore the
    replay-cache key for gateway benchmarks.
    """

    workers: int = 4
    ring_replicas: int = 64
    ring_seed: int = 0
    scheduler: str = "MLF-H"
    servers_per_worker: int = 4
    gpus_per_server: int = 4
    tick_seconds: float = 60.0
    seed: int = 0
    admission_policy: str = "queue"
    admission_threshold: float = 0.90
    global_threshold: Optional[float] = None
    global_alpha: float = 0.5
    telemetry_obs: str = "deterministic"

    def to_json(self) -> dict[str, Any]:
        """JSON-ready representation (exact inverse of ``from_json``)."""
        return {
            "workers": self.workers,
            "ring_replicas": self.ring_replicas,
            "ring_seed": self.ring_seed,
            "scheduler": self.scheduler,
            "servers_per_worker": self.servers_per_worker,
            "gpus_per_server": self.gpus_per_server,
            "tick_seconds": self.tick_seconds,
            "seed": self.seed,
            "admission_policy": self.admission_policy,
            "admission_threshold": self.admission_threshold,
            "global_threshold": self.global_threshold,
            "global_alpha": self.global_alpha,
            "telemetry_obs": self.telemetry_obs,
        }

    @classmethod
    def from_json(cls, data: Mapping[str, Any]) -> "GatewaySpec":
        """Inverse of :meth:`to_json`."""
        global_threshold = data.get("global_threshold")
        return cls(
            workers=int(data["workers"]),
            ring_replicas=int(data.get("ring_replicas", 64)),
            ring_seed=int(data.get("ring_seed", 0)),
            scheduler=str(data.get("scheduler", "MLF-H")),
            servers_per_worker=int(data.get("servers_per_worker", 4)),
            gpus_per_server=int(data.get("gpus_per_server", 4)),
            tick_seconds=float(data.get("tick_seconds", 60.0)),
            seed=int(data.get("seed", 0)),
            admission_policy=str(data.get("admission_policy", "queue")),
            admission_threshold=float(data.get("admission_threshold", 0.90)),
            global_threshold=(
                float(global_threshold) if global_threshold is not None else None
            ),
            global_alpha=float(data.get("global_alpha", 0.5)),
            telemetry_obs=str(data.get("telemetry_obs", "deterministic")),
        )

    def digest(self) -> str:
        """SHA-256 of the canonical JSON form (the determinism key)."""
        return _digest_of(self.to_json())

    def gateway_config(
        self, workdir: str, *, spawn: str = "process", listen: str = "127.0.0.1:0"
    ) -> Any:
        """A deterministic-replay :class:`repro.gateway.GatewayConfig`.

        Rounds advance only on explicit ``step``/``drain`` and the poll
        loop is off, so worker state is a pure function of the
        submission trace (imported lazily to keep spec loading light).
        """
        from repro.gateway import GatewayConfig

        return GatewayConfig(
            listen=listen,
            workers=self.workers,
            ring_replicas=self.ring_replicas,
            ring_seed=self.ring_seed,
            scheduler=self.scheduler,
            servers_per_worker=self.servers_per_worker,
            gpus_per_server=self.gpus_per_server,
            tick_seconds=self.tick_seconds,
            seed=self.seed,
            round_interval=0.0,
            admission_policy=self.admission_policy,
            admission_threshold=self.admission_threshold,
            global_threshold=self.global_threshold,
            global_alpha=self.global_alpha,
            gossip_interval=0.0,
            workdir=workdir,
            spawn=spawn,
            telemetry_obs=self.telemetry_obs,
        )


def _digest_of(payload: Mapping[str, Any]) -> str:
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def replace_path(spec: RunSpec, path: str, value: Any) -> RunSpec:
    """Functional update of a dotted field path on a (nested) spec.

    ``replace_path(spec, "workload.num_jobs", 240)`` returns a new spec
    with every other field shared.  Intermediate segments must name
    dataclass fields; the leaf may be any field value (including whole
    sub-specs, e.g. ``path="scheduler"`` with a :class:`SchedulerSpec`).
    """
    return _replace_on(spec, path, value)


def _replace_on(obj: Any, path: str, value: Any) -> Any:
    head, _, rest = path.partition(".")
    if not dataclasses.is_dataclass(obj) or head not in {
        f.name for f in dataclasses.fields(obj)
    }:
        raise ValueError(f"no spec field {head!r} on {type(obj).__name__}")
    if rest:
        value = _replace_on(getattr(obj, head), rest, value)
    return dataclasses.replace(obj, **{head: value})
