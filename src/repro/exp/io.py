"""Sweep result persistence.

One sweep → one JSON document: ``{"format": ..., "results": [...]}``
with records in grid order.  The document contains only deterministic
content (no wall-clock, no worker counts), so the same grid produces a
byte-identical file whether it ran serially, in parallel, or partially
from cache — which makes result files diffable across machines and
safe to commit as regression anchors.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Sequence, Union

from repro.exp.runner import RunRecord, SweepResult

__all__ = ["RESULTS_FORMAT", "load_results", "save_results"]

#: Format tag of the persisted result document.
RESULTS_FORMAT = "repro.exp.sweep/1"


def save_results(
    result: Union[SweepResult, Sequence[RunRecord]], path: Union[str, Path]
) -> Path:
    """Write a sweep's merged results to ``path``; returns the path."""
    records = list(result.records) if isinstance(result, SweepResult) else list(result)
    document = {"format": RESULTS_FORMAT, "results": records}
    out = Path(path)
    if out.parent != Path(""):
        out.parent.mkdir(parents=True, exist_ok=True)
    with out.open("w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")
    return out


def load_results(path: Union[str, Path]) -> SweepResult:
    """Read a result document back into a :class:`SweepResult`."""
    with Path(path).open("r", encoding="utf-8") as handle:
        document: dict[str, Any] = json.load(handle)
    fmt = document.get("format")
    if fmt != RESULTS_FORMAT:
        raise ValueError(
            f"unsupported results format {fmt!r} (want {RESULTS_FORMAT!r})"
        )
    return SweepResult(records=list(document["results"]))
