"""The process-parallel sweep engine.

:func:`execute_spec` turns one :class:`~repro.exp.spec.RunSpec` into a
*run record* — a JSON-ready dict holding the spec, its digest and the
simulation's headline metrics.  :class:`SweepRunner` executes many
specs, fanning shards out over a :class:`concurrent.futures.ProcessPoolExecutor`.

Contracts the engine guarantees (exercised by ``tests/test_exp.py``):

* **Determinism under parallelism** — results are keyed and merged by
  spec digest in grid order, never by completion order, and records
  contain no wall-clock fields, so ``workers=0`` (serial, in-process)
  and ``workers=N`` produce bit-identical merged results.
* **Shard caching / resume** — with a ``cache_dir``, each successful
  record is persisted as ``<digest>.json``; a re-run (after an
  interrupt, or with a grown grid) loads finished shards instead of
  recomputing them.  Failed shards are never cached, so resumes retry
  them.
* **Failure isolation** — a crashing shard yields a structured error
  record (exception type, message, traceback); the sweep completes and
  reports the failure instead of aborting.
* **Progress/ETA** — shard completions feed the ``repro.obs`` observer
  (``repro_sweep_*`` counters/gauges plus per-shard timeline events)
  and an optional ``on_progress`` callback.

Policies for MLF-RL/MLFS shards are imitation-trained on demand and
memoized **per process** by pretrain-spec digest: training is fully
seeded, so every worker derives the identical policy and parallel
sweeps stay bit-identical to serial ones.
"""

from __future__ import annotations

import json
import os
import time
import traceback
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterable, Optional, Union

from repro.core.train import TrainingSetup, train_mlf_rl_policy
from repro.exp.grid import Grid
from repro.exp.spec import PretrainSpec, RunSpec
from repro.obs.observer import NULL_OBSERVER, NullObserver, Observer
from repro.rl.policy import ScoringPolicy
from repro.schedulers import build_scheduler, mlfs_config_from_mapping
from repro.sim.engine import SimulationEngine
from repro.workload.generator import build_jobs

__all__ = [
    "RunRecord",
    "SweepProgress",
    "SweepResult",
    "SweepRunner",
    "default_workers",
    "execute_spec",
]

#: A run record: the JSON-ready outcome of one spec's simulation.
RunRecord = dict[str, Any]

AnyObserver = Union[Observer, NullObserver]
ProgressFn = Callable[["SweepProgress"], None]


def default_workers() -> int:
    """Default pool size: every core but one, at least one."""
    return max(1, (os.cpu_count() or 2) - 1)


# -- policy pretraining (memoized per process) -----------------------------

_POLICY_CACHE: dict[str, ScoringPolicy] = {}


def policy_for(pretrain: PretrainSpec) -> ScoringPolicy:
    """Train (or fetch) the scoring policy a pretrain spec describes.

    Training is fully seeded — trace generation, job building, the
    imitation buffer and the policy initialisation all derive from the
    spec — so the same spec yields the same policy in every process.
    """
    key = pretrain.digest()
    policy = _POLICY_CACHE.get(key)
    if policy is None:
        setup = TrainingSetup(
            records=pretrain.workload.records(),
            cluster_factory=pretrain.cluster.build,
            config=mlfs_config_from_mapping(pretrain.config),
            engine_config=pretrain.engine,
            workload_config=pretrain.workload.workload_config(),
            workload_seed=pretrain.seed,
        )
        policy = train_mlf_rl_policy(setup, imitation_epochs=pretrain.imitation_epochs)
        _POLICY_CACHE[key] = policy
    return policy


# -- single-spec execution -------------------------------------------------


def execute_spec(spec: RunSpec) -> RunRecord:
    """Run one spec's simulation and return its (successful) record.

    Raises whatever the simulation raises; :func:`run_shard` wraps this
    with the structured-error envelope used inside sweeps.
    """
    policy = (
        policy_for(spec.scheduler.pretrain)
        if spec.scheduler.pretrain is not None
        else None
    )
    scheduler = build_scheduler(
        spec.scheduler.name, spec.scheduler.config or None, policy=policy
    )
    jobs = build_jobs(
        spec.workload.records(),
        seed=spec.seed,
        config=spec.workload.workload_config(),
    )
    engine = SimulationEngine(
        scheduler=scheduler,
        jobs=jobs,
        cluster=spec.cluster.build(),
        config=spec.engine,
        faults=spec.faults,
    )
    metrics = engine.run()
    summary = metrics.summary()
    # Scheduling overhead is a wall-clock *observation* of this host, not
    # a property of the schedule: it goes into the non-deterministic
    # "measured" side-channel (stripped from merged/cached results) so
    # serial and parallel sweeps stay bit-identical.
    overhead_ms = summary.pop("overhead_ms", 0.0)
    return {
        "digest": spec.digest(),
        "spec": spec.to_json(),
        "scheduler": scheduler.name,
        "status": "ok",
        "summary": summary,
        "urgent_deadline_ratio": metrics.urgent_deadline_ratio(),
        "jct_cdf": [[value, fraction] for value, fraction in metrics.jct_cdf()],
        "error": None,
        "measured": {"overhead_ms": overhead_ms},
    }


def error_record(spec: RunSpec, exc: BaseException, tb: Optional[str] = None) -> RunRecord:
    """The structured record of a crashed shard."""
    return {
        "digest": spec.digest(),
        "spec": spec.to_json(),
        "scheduler": spec.scheduler.name,
        "status": "error",
        "summary": None,
        "urgent_deadline_ratio": None,
        "jct_cdf": None,
        "error": {
            "type": type(exc).__name__,
            "message": str(exc),
            "traceback": tb if tb is not None else traceback.format_exc(),
        },
    }


def run_shard(payload: dict[str, Any]) -> RunRecord:
    """Worker entry point: spec JSON in, record out, never raises.

    Top-level (picklable) so :class:`ProcessPoolExecutor` can ship it;
    also the serial path, so both modes share one code path.
    """
    spec = RunSpec.from_json(payload)
    try:
        return execute_spec(spec)
    except Exception as exc:  # noqa: BLE001 — failure isolation is the point
        return error_record(spec, exc)


def warm_worker(pretrain_payloads: list[dict[str, Any]]) -> None:
    """Pool initializer: pretrain policies before any shard arrives.

    Under the ``fork`` start method the parent already trained these
    (see :meth:`SweepRunner._warm_parent`), so the calls are cache hits
    and worker start-up stays instant; under ``spawn`` each worker
    trains once here instead of stalling its first RL shard.  Training
    failures are swallowed — the shard that needs the policy will hit
    the same error and report it through the structured-error envelope.
    """
    for payload in pretrain_payloads:
        try:
            policy_for(PretrainSpec.from_json(payload))
        except Exception:  # noqa: BLE001 — shards surface the real error
            pass


# -- sweep orchestration ---------------------------------------------------


@dataclass(frozen=True)
class SweepProgress:
    """One progress snapshot handed to ``on_progress`` callbacks."""

    done: int
    total: int
    cached: int
    failed: int
    eta_seconds: Optional[float]
    label: str


@dataclass
class SweepResult:
    """The merged outcome of one sweep.

    ``records`` follow grid order (deduplicated by digest), regardless
    of the order shards completed in.  ``stats``, ``timings`` and
    ``measured`` (per-digest wall-clock observations such as the
    scheduler's ``overhead_ms``; absent for cache-loaded shards) carry
    bookkeeping that is deliberately **not** part of :meth:`merged`, so
    merged results stay bit-identical across serial/parallel/cached
    executions.
    """

    records: list[RunRecord]
    stats: dict[str, int] = field(default_factory=dict)
    timings: dict[str, float] = field(default_factory=dict)
    measured: dict[str, dict[str, float]] = field(default_factory=dict)

    def merged(self) -> dict[str, Any]:
        """The deterministic, JSON-ready result document."""
        from repro.exp.io import RESULTS_FORMAT

        return {"format": RESULTS_FORMAT, "results": self.records}

    def by_digest(self) -> dict[str, RunRecord]:
        """Records keyed by spec digest."""
        return {record["digest"]: record for record in self.records}

    def ok(self) -> list[RunRecord]:
        """Successful records only."""
        return [r for r in self.records if r["status"] == "ok"]

    def failures(self) -> list[RunRecord]:
        """Structured error records of crashed shards."""
        return [r for r in self.records if r["status"] == "error"]


class SweepRunner:
    """Executes a grid (or spec list) with caching and parallelism.

    The worker pool is *warm*: it is created on the first parallel
    :meth:`run`, pre-seeded with every pretrain policy the grid needs
    (parent-side training + a pool initializer, so the work happens
    once rather than once per worker), and reused by later runs.  Use
    the runner as a context manager — or call :meth:`close` — to
    release the pool.

    Parameters
    ----------
    workers:
        ``0`` runs shards serially in-process; ``N >= 1`` uses a
        process pool of that size; ``None`` picks
        :func:`default_workers`.
    cache_dir:
        Per-shard result cache directory (created on demand).  Absent
        → every shard recomputes.
    observer:
        A ``repro.obs`` observer; live observers receive
        ``repro_sweep_*`` metrics and per-shard timeline events.
    on_progress:
        Callback invoked with a :class:`SweepProgress` after every
        shard (completed, failed or cache-loaded).
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        cache_dir: Optional[Union[str, Path]] = None,
        observer: AnyObserver = NULL_OBSERVER,
        on_progress: Optional[ProgressFn] = None,
    ) -> None:
        if workers is not None and workers < 0:
            raise ValueError(f"workers must be >= 0, got {workers}")
        self.workers = default_workers() if workers is None else workers
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self.observer = observer
        self.on_progress = on_progress
        #: Warm pool, built on first parallel execution and reused by
        #: every subsequent :meth:`run` (workers keep their per-process
        #: policy cache).  :meth:`close` releases it.
        self._pool: Optional[ProcessPoolExecutor] = None

    def close(self) -> None:
        """Shut down the warm worker pool (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def __enter__(self) -> "SweepRunner":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def run(self, grid: Union[Grid, Iterable[RunSpec]]) -> SweepResult:
        """Execute every spec; return the deterministically merged result."""
        specs = self._dedupe(grid.specs() if isinstance(grid, Grid) else list(grid))
        order = [spec.digest() for spec in specs]
        results: dict[str, RunRecord] = {}
        stats = {"shards": len(specs), "executed": 0, "cached": 0, "failed": 0}
        timings: dict[str, float] = {}
        measured: dict[str, dict[str, float]] = {}
        reporter = _Reporter(self.observer, self.on_progress, total=len(specs))

        pending: list[RunSpec] = []
        for spec in specs:
            cached = self._load_cached(spec.digest())
            if cached is not None:
                results[spec.digest()] = cached
                stats["cached"] += 1
                reporter.shard_done(spec, cached, from_cache=True)
            else:
                pending.append(spec)

        for digest, record, elapsed in self._execute(pending, reporter):
            observations = record.pop("measured", None)
            if observations is not None:
                measured[digest] = observations
            results[digest] = record
            stats["executed"] += 1
            timings[digest] = elapsed
            if record["status"] == "error":
                stats["failed"] += 1
            else:
                self._store_cached(digest, record)

        merged = [results[digest] for digest in order]
        return SweepResult(
            records=merged, stats=stats, timings=timings, measured=measured
        )

    # -- execution backends ------------------------------------------------

    def _execute(
        self, specs: list[RunSpec], reporter: "_Reporter"
    ) -> Iterable[tuple[str, RunRecord, float]]:
        if not specs:
            return
        if self.workers == 0:
            yield from self._execute_serial(specs, reporter)
        else:
            yield from self._execute_pool(specs, reporter)

    def _execute_serial(
        self, specs: list[RunSpec], reporter: "_Reporter"
    ) -> Iterable[tuple[str, RunRecord, float]]:
        for spec in specs:
            started = time.monotonic()
            record = run_shard(spec.to_json())
            elapsed = time.monotonic() - started
            reporter.shard_done(spec, record, elapsed=elapsed)
            yield spec.digest(), record, elapsed

    def _pretrains_of(self, specs: list[RunSpec]) -> list[PretrainSpec]:
        """Distinct pretrain specs the pending shards will need."""
        by_digest: dict[str, PretrainSpec] = {}
        for spec in specs:
            pretrain = spec.scheduler.pretrain
            if pretrain is not None:
                by_digest.setdefault(pretrain.digest(), pretrain)
        return list(by_digest.values())

    def _warm_parent(self, pretrains: list[PretrainSpec]) -> None:
        """Train needed policies in the parent before forking workers.

        Under the (Linux-default) ``fork`` start method every worker
        inherits :data:`_POLICY_CACHE`, so N workers share one training
        instead of each redoing it — the fix for parallel sweeps coming
        out *slower* than serial on RL grids.  Failures are left to the
        owning shard so they surface as structured error records.
        """
        for pretrain in pretrains:
            try:
                policy_for(pretrain)
            except Exception:  # noqa: BLE001 — shards surface the real error
                pass

    def _ensure_pool(self, specs: list[RunSpec]) -> ProcessPoolExecutor:
        if self._pool is None:
            pretrains = self._pretrains_of(specs)
            self._warm_parent(pretrains)
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers,
                initializer=warm_worker,
                initargs=([p.to_json() for p in pretrains],),
            )
        return self._pool

    def _execute_pool(
        self, specs: list[RunSpec], reporter: "_Reporter"
    ) -> Iterable[tuple[str, RunRecord, float]]:
        by_future: dict[Future[RunRecord], tuple[RunSpec, float]] = {}
        pool = self._ensure_pool(specs)
        for spec in specs:
            future = pool.submit(run_shard, spec.to_json())
            by_future[future] = (spec, time.monotonic())
        outstanding = set(by_future)
        while outstanding:
            finished, outstanding = wait(outstanding, return_when=FIRST_COMPLETED)
            for future in finished:
                spec, started = by_future[future]
                elapsed = time.monotonic() - started
                try:
                    record = future.result()
                except Exception as exc:  # pool/pickling breakage
                    record = error_record(spec, exc, tb=traceback.format_exc())
                reporter.shard_done(spec, record, elapsed=elapsed)
                yield spec.digest(), record, elapsed

    # -- cache -------------------------------------------------------------

    def _load_cached(self, digest: str) -> Optional[RunRecord]:
        if self.cache_dir is None:
            return None
        path = self.cache_dir / f"{digest}.json"
        try:
            with path.open("r", encoding="utf-8") as handle:
                record: RunRecord = json.load(handle)
        except (FileNotFoundError, json.JSONDecodeError):
            return None
        # Only successful, matching records satisfy the cache; anything
        # else (partial write survived somehow, digest mismatch) re-runs.
        if record.get("status") != "ok" or record.get("digest") != digest:
            return None
        return record

    def _store_cached(self, digest: str, record: RunRecord) -> None:
        if self.cache_dir is None:
            return
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        path = self.cache_dir / f"{digest}.json"
        tmp = path.with_suffix(".json.tmp")
        with tmp.open("w", encoding="utf-8") as handle:
            json.dump(record, handle)
        os.replace(tmp, path)

    # -- plumbing ----------------------------------------------------------

    @staticmethod
    def _dedupe(specs: list[RunSpec]) -> list[RunSpec]:
        seen: set[str] = set()
        out: list[RunSpec] = []
        for spec in specs:
            digest = spec.digest()
            if digest not in seen:
                seen.add(digest)
                out.append(spec)
        return out


class _Reporter:
    """Feeds shard completions to the observer and progress callback."""

    def __init__(
        self, observer: AnyObserver, on_progress: Optional[ProgressFn], total: int
    ) -> None:
        self.observer = observer
        self.on_progress = on_progress
        self.total = total
        self.done = 0
        self.cached = 0
        self.failed = 0
        self._started = time.monotonic()
        self._run_seconds = 0.0
        if observer.enabled and observer.registry is not None:
            registry = observer.registry
            self._shards_total = registry.counter(
                "repro_sweep_shards_total", "Sweep shards finished (any outcome)."
            )
            self._cache_hits = registry.counter(
                "repro_sweep_cache_hits_total", "Sweep shards satisfied from cache."
            )
            self._failures = registry.counter(
                "repro_sweep_shard_failures_total", "Sweep shards that crashed."
            )
            self._eta = registry.gauge(
                "repro_sweep_eta_seconds", "Estimated seconds until the sweep drains."
            )

    def shard_done(
        self,
        spec: RunSpec,
        record: RunRecord,
        elapsed: float = 0.0,
        from_cache: bool = False,
    ) -> None:
        self.done += 1
        self.cached += int(from_cache)
        failed = record["status"] == "error"
        self.failed += int(failed)
        if not from_cache:
            self._run_seconds += elapsed
        eta = self.eta_seconds()
        if self.observer.enabled and self.observer.registry is not None:
            self._shards_total.inc()
            if from_cache:
                self._cache_hits.inc()
            if failed:
                self._failures.inc()
            if eta is not None:
                self._eta.set(eta)
            self.observer.job_event(
                f"sweep:{record['digest'][:12]}",
                "shard_failed" if failed else "shard_done",
                time.monotonic() - self._started,
                detail=spec.label(),
                cached=from_cache,
            )
        if self.on_progress is not None:
            self.on_progress(
                SweepProgress(
                    done=self.done,
                    total=self.total,
                    cached=self.cached,
                    failed=self.failed,
                    eta_seconds=eta,
                    label=spec.label(),
                )
            )

    def eta_seconds(self) -> Optional[float]:
        """Remaining-time estimate from the mean executed-shard cost."""
        executed = self.done - self.cached
        remaining = self.total - self.done
        if executed <= 0 or remaining <= 0:
            return 0.0 if remaining == 0 else None
        return self._run_seconds / executed * remaining
