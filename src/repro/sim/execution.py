"""Iteration execution model: how long one training iteration takes.

One iteration of a fully-placed job costs

``duration = critical_path(compute with contention slowdowns) + comm``

* each task's compute time is stretched by its GPU's oversubscription
  factor and by any CPU/memory overload of its host server — this is the
  mechanism by which "overloaded server → long job latency, low accuracy
  by job deadline" (Figure 1) materializes in the simulator;
* the critical path respects the model-partition dependency DAG
  (sequential partitions serialize, layered partitions overlap);
* communication time comes from :mod:`repro.sim.network`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from repro.cluster.cluster import Cluster
from repro.workload.job import Job, Task
from repro.sim.network import CommLink, IterationComm, iteration_comm, job_links


@dataclass
class ExecutionModel:
    """Computes iteration durations, with per-job caches.

    Parameters
    ----------
    straggler_probability / straggler_slowdown:
        Optional failure injection (paper Section 3.3.3 discusses
        stragglers as future work): each iteration independently suffers
        a slowdown with the given probability.
    """

    straggler_probability: float = 0.0
    straggler_slowdown: float = 3.0

    _topo_cache: dict[str, list[str]] = field(default_factory=dict, repr=False)
    _preds_cache: dict[str, dict[str, list[str]]] = field(
        default_factory=dict, repr=False
    )
    _links_cache: dict[str, list[CommLink]] = field(default_factory=dict, repr=False)
    #: Memoized (placement+load key, compute seconds, comm) per job: a
    #: job iterating on an otherwise-quiet cluster re-derives the exact
    #: same critical path and comm time every iteration.  The key pins
    #: each task's (server, gpu, server load version), which covers
    #: every input of the duration model, so a hit is exact — see
    #: :meth:`iteration_duration`.
    _duration_cache: dict[
        str,
        tuple[tuple[tuple[int | None, int | None, int], ...], float, IterationComm],
    ] = field(default_factory=dict, repr=False)

    # -- caches ----------------------------------------------------------

    def topo_order(self, job: Job) -> list[str]:
        """Cached topological order of the job's task DAG."""
        order = self._topo_cache.get(job.job_id)
        if order is None:
            order = list(nx.topological_sort(job.dag))
            self._topo_cache[job.job_id] = order
        return order

    def predecessors(self, job: Job) -> dict[str, list[str]]:
        """Cached predecessor lists of the job's task DAG.

        ``compute_critical_path`` runs once per iteration start, so at
        trace scale the graph-walk overhead of
        ``dag.predecessors(node)`` dominates; the DAG is frozen after
        job construction, so the adjacency is cached like the topo
        order.
        """
        preds = self._preds_cache.get(job.job_id)
        if preds is None:
            dag = job.dag
            preds = {node: list(dag.predecessors(node)) for node in dag.nodes}
            self._preds_cache[job.job_id] = preds
        return preds

    def links(self, job: Job) -> list[CommLink]:
        """Cached communication links of the job."""
        cached = self._links_cache.get(job.job_id)
        if cached is None:
            cached = job_links(job)
            self._links_cache[job.job_id] = cached
        return cached

    def forget(self, job: Job) -> None:
        """Drop caches of a finished job."""
        self._topo_cache.pop(job.job_id, None)
        self._preds_cache.pop(job.job_id, None)
        self._links_cache.pop(job.job_id, None)
        self._duration_cache.pop(job.job_id, None)

    # -- the model -------------------------------------------------------

    def task_slowdown(self, task: Task, cluster: Cluster) -> float:
        """Contention multiplier (>= 1) for one placed task."""
        if task.server_id is None or task.gpu_id is None:
            raise ValueError(f"task {task.task_id} is not placed")
        server = cluster.server(task.server_id)
        gpu = server.gpus[task.gpu_id]
        slowdown = max(1.0, gpu.utilization)
        # Scalar cpu/mem utilizations: this runs for every task of every
        # iteration start, and ``server.utilization()`` would allocate
        # two vectors per call.  ``max(1.0, clamp0(x)) == max(1.0, x)``,
        # so the clamp folds into the floor.
        load = server.load
        cap = server.capacity
        slowdown *= max(1.0, load.cpu / cap.cpu if cap.cpu else 0.0)
        slowdown *= max(1.0, load.mem / cap.mem if cap.mem else 0.0)
        return slowdown

    def compute_critical_path(self, job: Job, cluster: Cluster) -> float:
        """Longest dependency chain of contention-adjusted compute times."""
        effective: dict[str, float] = {}
        for task in job.tasks:
            effective[task.task_id] = task.compute_seconds * self.task_slowdown(
                task, cluster
            )
        longest: dict[str, float] = {}
        preds = self.predecessors(job)
        for node in self.topo_order(job):
            best = 0.0
            for pred in preds[node]:
                value = longest[pred]
                if value > best:
                    best = value
            longest[node] = best + effective.get(node, 0.0)
        return max(longest.values(), default=0.0)

    def iteration_duration(
        self, job: Job, cluster: Cluster, straggler_draw: float = 1.0
    ) -> tuple[float, float]:
        """Duration (seconds) and cross-server volume (MB) of one iteration.

        ``straggler_draw`` is a uniform [0, 1) sample from the engine's
        RNG; the straggler slowdown applies when it falls below
        ``straggler_probability``.

        The pre-straggler (compute, comm) pair is memoized against the
        job's placement-and-load key: durations depend only on each
        task's (server, gpu) and its host server's load state, all of
        which :attr:`Server.load_version` tracks — every ``place_task``
        and ``remove_task`` anywhere on a host bumps its version, so a
        key match guarantees bit-identical inputs and the memo is exact
        (the straggler draw stays outside the cache).
        """
        key = tuple(
            (
                task.server_id,
                task.gpu_id,
                cluster.server(task.server_id).load_version
                if task.server_id is not None
                else -1,
            )
            for task in job.tasks
        )
        cached = self._duration_cache.get(job.job_id)
        if cached is not None and cached[0] == key:
            compute = cached[1]
            comm = cached[2]
        else:
            compute = self.compute_critical_path(job, cluster)
            comm = iteration_comm(job, cluster, self.links(job))
            self._duration_cache[job.job_id] = (key, compute, comm)
        duration = compute + comm.seconds
        if straggler_draw < self.straggler_probability:
            duration *= self.straggler_slowdown
        return duration, comm.cross_server_mb
