"""Event queue for the discrete-event simulation engine.

A classic calendar queue over ``heapq`` with a monotonic sequence number
breaking ties so that simultaneous events fire in insertion order —
important for determinism across runs and platforms.

Determinism contract (DESIGN.md §15): the heap ordering key is the pair
``(time, insertion sequence)`` and nothing else — never object identity
or hash order — so (1) equal-timestamp events always fire in the order
they were pushed, (2) pickling the queue (daemon snapshots pickle the
whole engine, heap included) and resuming replays the identical event
order, because both the heap list and the ``itertools.count`` cursor
travel with the snapshot.  Producers rely on the tie-break: trace
arrivals are pushed before the first tick, and an iteration started
during a pass is pushed before that pass's next tick, which fixes the
admission/completion order at shared timestamps.
"""

from __future__ import annotations

import enum
import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Optional


class EventKind(enum.Enum):
    """The kinds of events the engine processes."""

    JOB_ARRIVAL = "job_arrival"
    SCHEDULE_TICK = "schedule_tick"
    ITERATION_DONE = "iteration_done"


@dataclass(frozen=True, slots=True)
class Event:
    """One scheduled event.

    ``payload`` is kind-specific: the arriving job for ``JOB_ARRIVAL``;
    ``(job, token)`` for ``ITERATION_DONE`` where ``token`` guards
    against stale completions after preemption/migration; ``None`` for
    ticks.
    """

    time: float
    kind: EventKind
    payload: Any = None


@dataclass
class EventQueue:
    """A time-ordered queue of :class:`Event` objects."""

    _heap: list[tuple[float, int, Event]] = field(default_factory=list)
    _counter: "itertools.count" = field(default_factory=itertools.count)

    def push(self, event: Event) -> None:
        """Insert an event."""
        if event.time < 0:
            raise ValueError(f"event time must be non-negative, got {event.time}")
        heapq.heappush(self._heap, (event.time, next(self._counter), event))

    def pop(self) -> Event:
        """Remove and return the earliest event.

        Raises ``IndexError`` when empty.
        """
        _time, _seq, event = heapq.heappop(self._heap)
        return event

    def peek_time(self) -> Optional[float]:
        """Time of the earliest event, or ``None`` when empty."""
        return self._heap[0][0] if self._heap else None

    def peek(self) -> Optional[Event]:
        """The earliest event without removing it, or ``None`` when empty."""
        return self._heap[0][2] if self._heap else None

    def events_in_order(self) -> list[Event]:
        """Every pending event in firing order (non-destructive).

        Snapshot/restore tests use this to assert that a restored heap
        will fire the identical sequence; it is O(n log n) and must not
        appear on the hot path.
        """
        return [entry[2] for entry in sorted(self._heap, key=lambda e: e[:2])]

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)
