"""Event queue for the discrete-event simulation engine.

A classic calendar queue over ``heapq`` with a monotonic sequence number
breaking ties so that simultaneous events fire in insertion order —
important for determinism across runs and platforms.
"""

from __future__ import annotations

import enum
import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Optional


class EventKind(enum.Enum):
    """The kinds of events the engine processes."""

    JOB_ARRIVAL = "job_arrival"
    SCHEDULE_TICK = "schedule_tick"
    ITERATION_DONE = "iteration_done"


@dataclass(frozen=True, slots=True)
class Event:
    """One scheduled event.

    ``payload`` is kind-specific: the arriving job for ``JOB_ARRIVAL``;
    ``(job, token)`` for ``ITERATION_DONE`` where ``token`` guards
    against stale completions after preemption/migration; ``None`` for
    ticks.
    """

    time: float
    kind: EventKind
    payload: Any = None


@dataclass
class EventQueue:
    """A time-ordered queue of :class:`Event` objects."""

    _heap: list[tuple[float, int, Event]] = field(default_factory=list)
    _counter: "itertools.count" = field(default_factory=itertools.count)

    def push(self, event: Event) -> None:
        """Insert an event."""
        if event.time < 0:
            raise ValueError(f"event time must be non-negative, got {event.time}")
        heapq.heappush(self._heap, (event.time, next(self._counter), event))

    def pop(self) -> Event:
        """Remove and return the earliest event.

        Raises ``IndexError`` when empty.
        """
        _time, _seq, event = heapq.heappop(self._heap)
        return event

    def peek_time(self) -> Optional[float]:
        """Time of the earliest event, or ``None`` when empty."""
        return self._heap[0][0] if self._heap else None

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)
