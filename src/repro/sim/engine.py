"""The discrete-event simulation engine.

Drives a workload of jobs through a cluster under a pluggable scheduling
policy, reproducing the paper's experimental loop: "The job scheduler
runs every minute" (Section 4.1); tasks are queued, placed, migrated and
preempted at scheduler rounds; fully-placed jobs execute training
iterations whose durations come from :mod:`repro.sim.execution`; every
completed iteration updates the loss/accuracy state the ML-feature
priorities feed on.

Liveness guard: a task-granular scheduler can leave a job partially
placed (holding GPUs while unable to iterate).  Real clusters break such
stalemates with admission timeouts; the engine evicts all placed tasks
of a job that has been partially placed for ``stall_ticks`` consecutive
rounds, returning them to the queue.

Stepping API: besides the monolithic :meth:`SimulationEngine.run`, the
engine exposes a time-based incremental driver interface used by the
online service layer (:mod:`repro.service`):
:meth:`SimulationEngine.advance` runs the simulation through exactly
one scheduling pass and returns a :class:`PassResult`;
:meth:`SimulationEngine.run_until` processes every event up to a target
simulation time; :meth:`SimulationEngine.inject_job` admits a job
mid-run (the streaming-arrival path); :meth:`SimulationEngine.cancel_job`
terminates an active job early.  ``run()`` is a thin loop over
``advance()`` so both drivers produce the identical schedule.
:meth:`SimulationEngine.step` remains as a deprecated round-indexed
shim over ``advance()`` (one release of compatibility; see DESIGN.md
§15).

Event-driven mode: ``EngineConfig(pass_policy="event")`` keeps the
fixed scheduling-pass grid but *parks* the pass timer whenever a pass
provably cannot change the schedule — every task placed, no overload,
no stall in progress, no fault event armed — and re-arms it (on the
same grid, so event-aligned passes coincide with the fixed cadence) as
soon as an arrival or drain-out changes that.  Sparse workloads then
cost O(events) instead of O(simulated minutes).  The default
``pass_policy="fixed"`` reproduces the historical cadence bit for bit.

Invariant sanitizer: ``SimulationEngine(sanitize=True)`` (or the
``REPRO_SANITIZE=1`` environment switch) audits every completed round
with :class:`repro.check.sanitize.Sanitizer` — resource conservation,
queue consistency, priority-ordered dequeue and snapshot round-trip —
raising :class:`repro.check.sanitize.InvariantViolation` with the
offending server/task ids the moment bookkeeping breaks.
"""

from __future__ import annotations

import math
import random
import time as _time
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Iterator, Optional, Union

from repro.check.sanitize import Sanitizer, sanitize_from_env
from repro.cluster.cluster import Cluster
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultEvent, FaultPlan
from repro.learncurve.accuracy import AccuracyPredictor
from repro.learncurve.runtime import RuntimePredictor
from repro.obs.observer import (
    NULL_OBSERVER,
    NullObserver,
    Observer,
    set_current_observer,
)
from repro.obs.tracing import Tracer
from repro.sim.events import Event, EventKind, EventQueue
from repro.sim.execution import ExecutionModel
from repro.sim.interface import (
    Scheduler,
    SchedulerDecision,
    SchedulingContext,
)
from repro.sim.metrics import SimulationMetrics
from repro.sim.network import migration_volume_mb
from repro.workload.job import Job, JobState, Task, TaskState


@dataclass(frozen=True)
class EngineConfig:
    """Engine knobs (defaults follow Section 4.1).

    Attributes
    ----------
    tick_seconds:
        Scheduler invocation period (paper: one minute).
    overload_threshold:
        Per-resource/per-GPU overload threshold ``h_r``.
    system_overload_threshold:
        Cluster overload threshold ``h_s`` used by MLF-C.
    migration_penalty_seconds:
        Extra time added to a job's in-flight iteration when one of its
        tasks is migrated (checkpoint + restore).
    stall_ticks:
        Rounds a job may remain partially placed before the engine
        evicts its placed tasks (liveness guard).
    max_time:
        Hard stop for the simulation clock.
    straggler_probability / straggler_slowdown:
        Failure injection passed to the execution model.
    seed:
        Seed of the engine's private RNG (straggler draws).
    pass_policy:
        ``"fixed"`` (default) runs a scheduling pass every
        ``tick_seconds`` of simulated time while work is active — the
        paper's "the job scheduler runs every minute" and the cadence
        the golden traces froze.  ``"event"`` keeps the same pass grid
        but skips passes that provably cannot change the schedule (see
        the module docstring); requires a scheduler that declares
        ``event_parkable`` or it silently behaves like ``"fixed"``.
    """

    tick_seconds: float = 60.0
    overload_threshold: float = 0.90
    system_overload_threshold: float = 0.90
    migration_penalty_seconds: float = 10.0
    stall_ticks: int = 30
    max_time: float = 60.0 * 24 * 3600.0
    straggler_probability: float = 0.0
    straggler_slowdown: float = 3.0
    seed: int = 0
    pass_policy: str = "fixed"


@dataclass
class _IterationState:
    """Bookkeeping of one in-flight iteration."""

    token: int
    end_time: float
    cross_mb: float


@dataclass(frozen=True, slots=True)
class PassResult:
    """What happened during one :meth:`SimulationEngine.advance` call.

    A *pass* is the span of simulated time up to and including the next
    scheduling pass (historically a "round").  The service layer turns
    these into telemetry records keyed by ``sim_time``; ``ticked`` is
    False when the event queue ran dry (or ``max_time`` was hit) before
    a pass could fire.

    ``PassResult`` supersedes the round-indexed ``RoundResult`` (which
    is now a deprecated alias of this class): ``round_index`` and
    ``now`` remain readable as compatibility properties for one release
    (DESIGN.md §15 documents the migration).
    """

    pass_index: int
    sim_time: float
    ticked: bool
    events_processed: int
    arrivals: int
    completions: int
    stops: int
    placements: int
    migrations: int
    evictions: int
    queue_depth: int
    active_jobs: int
    running_jobs: int
    overload_degree: float
    drained: bool
    #: Fault injection (repro.faults): events applied this pass, tasks
    #: killed by them, and servers currently down after the pass.
    faults: int = 0
    tasks_killed: int = 0
    failed_servers: int = 0

    @property
    def round_index(self) -> int:
        """Deprecated spelling of :attr:`pass_index`."""
        return self.pass_index

    @property
    def now(self) -> float:
        """Deprecated spelling of :attr:`sim_time`."""
        return self.sim_time


def __getattr__(name: str) -> Any:
    # Deprecated alias kept importable for one release: the engine's
    # public result type is PassResult; RoundResult is the same class
    # under its pre-event-engine name.
    if name == "RoundResult":
        warnings.warn(
            "RoundResult is deprecated; use repro.sim.engine.PassResult"
            " (same fields, with pass_index/sim_time as the primary"
            " spellings of round_index/now)",
            DeprecationWarning,
            stacklevel=2,
        )
        return PassResult
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


class TaskQueue:
    """The waiting-task FIFO with amortized-O(1) arbitrary removal.

    Placement removes tasks from arbitrary positions; at synthetic-Philly
    scale (10^5 queued tasks under a deep backlog) ``list.remove`` makes
    every scheduling pass O(n²).  Removal here only marks the task id
    dead; the backing list compacts once half its entries are dead, so
    append/remove are amortized O(1) while iteration preserves exact
    FIFO (insertion) order — the dequeue order the golden traces froze.

    A task id may be re-queued after removal (eviction and fault-kill
    paths); the structure assumes one live entry per task id, which the
    engine guarantees (a task is either queued or placed, never both).
    """

    #: Dead-entry floor below which compaction is not worth the copy.
    _COMPACT_MIN = 64

    def __init__(self, tasks: Optional[Iterable[Task]] = None) -> None:
        self._items: list[Task] = []
        self._live: set[str] = set()
        self._dead: set[str] = set()
        for task in tasks or ():
            self.append(task)

    def append(self, task: Task) -> None:
        if task.task_id in self._live:
            raise ValueError(f"task {task.task_id} is already queued")
        if task.task_id in self._dead:
            # Purge the stale entry first so the re-queued task lands at
            # the tail (FIFO position of *this* enqueue, not the old one).
            self._compact()
        self._items.append(task)
        self._live.add(task.task_id)

    def remove(self, task: Task) -> None:
        if task.task_id not in self._live:
            raise ValueError(f"task {task.task_id} not in the waiting queue")
        self._live.discard(task.task_id)
        self._dead.add(task.task_id)
        if (
            len(self._dead) >= self._COMPACT_MIN
            and len(self._dead) * 2 >= len(self._items)
        ):
            self._compact()

    def _compact(self) -> None:
        self._items = [t for t in self._items if t.task_id in self._live]
        self._dead.clear()

    def __iter__(self) -> Iterator[Task]:
        live = self._live
        return (t for t in self._items if t.task_id in live)

    def __getitem__(self, index: int) -> Task:
        """Positional access in FIFO order (tests/diagnostics; O(n))."""
        return list(self)[index]

    def __len__(self) -> int:
        return len(self._live)

    def __bool__(self) -> bool:
        return bool(self._live)

    def __contains__(self, task: object) -> bool:
        task_id = getattr(task, "task_id", None)
        return task_id is not None and task_id in self._live

    def __eq__(self, other: object) -> bool:
        if isinstance(other, TaskQueue):
            return list(self) == list(other)
        if isinstance(other, (list, tuple)):
            return list(self) == list(other)
        return NotImplemented

    def __repr__(self) -> str:
        return f"TaskQueue({[t.task_id for t in self]!r})"


class SimulationEngine:
    """Runs one simulation of (scheduler, jobs, cluster)."""

    def __init__(
        self,
        scheduler: Scheduler,
        jobs: list[Job],
        cluster: Cluster,
        config: Optional[EngineConfig] = None,
        accuracy_predictor: Optional[AccuracyPredictor] = None,
        runtime_predictor: Optional[RuntimePredictor] = None,
        observer: Optional[Union[Observer, NullObserver]] = None,
        trace: Optional[Union[str, Path]] = None,
        sanitize: Optional[bool] = None,
        faults: Optional[Union[FaultPlan, FaultInjector]] = None,
    ) -> None:
        self.scheduler = scheduler
        self.jobs = sorted(jobs, key=lambda j: (j.arrival_time, j.job_id))
        self.cluster = cluster
        self.config = config or EngineConfig()
        self._trace_path = Path(trace) if trace is not None else None
        if observer is not None:
            self.obs = observer
        elif self._trace_path is not None:
            self.obs = Observer(tracer=Tracer())
        else:
            self.obs = NULL_OBSERVER
        self.accuracy_predictor = accuracy_predictor or AccuracyPredictor(
            seed=self.config.seed
        )
        self.runtime_predictor = runtime_predictor or RuntimePredictor(
            seed=self.config.seed
        )
        self.metrics = SimulationMetrics()
        self.execution = ExecutionModel(
            straggler_probability=self.config.straggler_probability,
            straggler_slowdown=self.config.straggler_slowdown,
        )
        if self.config.pass_policy not in ("fixed", "event"):
            raise ValueError(
                f"unknown pass_policy {self.config.pass_policy!r};"
                " expected 'fixed' or 'event'"
            )
        self.now = 0.0
        self.queue: TaskQueue = TaskQueue()
        self.active_jobs: dict[str, Job] = {}
        self._events = EventQueue()
        self._rng = random.Random(self.config.seed)
        self._iteration: dict[str, _IterationState] = {}
        self._tokens: dict[str, int] = {}
        self._wait_since: dict[str, float] = {}
        self._wait_accum: dict[str, float] = {}
        self._stall_counter: dict[str, int] = {}
        self._last_duration: dict[str, float] = {}
        self._pending_arrivals = len(self.jobs)
        self._started = False
        self._finalized = False
        self._max_time_reached = False
        self._ticks_pending = 0
        self._round_index = 0
        # Event-driven pass control: a "parked" engine has no scheduling
        # pass pending; ``_anchor`` is the time of the last pass and
        # defines the grid re-armed passes snap back onto.  The
        # ``event_parkable`` declaration and the accrue/veto hooks are
        # read once here — a scheduler toggling the attribute mid-run
        # must not change outcomes (pinned by a regression test).
        self._event_mode = self.config.pass_policy == "event" and bool(
            getattr(scheduler, "event_parkable", False)
        )
        self._accrue_hook = getattr(scheduler, "accrue", None)
        self._park_veto = getattr(scheduler, "can_park", None)
        self._parked = False
        self._anchor = 0.0
        self._round_counters: dict[str, int] = {}
        self._reset_round_counters()
        # Invariant sanitizer (repro.check.sanitize): explicit flag wins,
        # otherwise the REPRO_SANITIZE environment switch decides.
        if sanitize is None:
            sanitize = sanitize_from_env()
        self.sanitizer: Optional[Sanitizer] = Sanitizer() if sanitize else None
        self._last_decision: Optional[SchedulerDecision] = None
        # Fault injection (repro.faults): accept a frozen plan or a live
        # injector (the service layer shares one across restarts).  An
        # idle injector is bit-identical to running without one.
        if faults is None:
            self.faults: Optional[FaultInjector] = None
        elif isinstance(faults, FaultInjector):
            self.faults = faults
        else:
            self.faults = FaultInjector(faults)

    # ------------------------------------------------------------------
    # Run loop
    # ------------------------------------------------------------------

    @property
    def is_drained(self) -> bool:
        """No job is active and no arrival is pending."""
        return not self.active_jobs and self._pending_arrivals == 0

    @property
    def round_index(self) -> int:
        """Number of scheduling passes executed so far (legacy name)."""
        return self._round_index

    @property
    def pass_index(self) -> int:
        """Number of scheduling passes executed so far."""
        return self._round_index

    @property
    def parked(self) -> bool:
        """Whether the pass timer is parked (event mode, quiet cluster)."""
        return self._parked

    def start(self) -> None:
        """Seed arrival events and the first scheduler tick (idempotent)."""
        if self._started:
            return
        self._started = True
        for job in self.jobs:
            self._events.push(Event(job.arrival_time, EventKind.JOB_ARRIVAL, job))
        if self.jobs:
            self._push_tick(self.jobs[0].arrival_time)

    def run(self) -> SimulationMetrics:
        """Execute the simulation to completion and return the metrics."""
        self.start()
        while True:
            result = self.advance()
            if result.drained or result.events_processed == 0:
                break
        self.finalize()
        return self.metrics

    def advance(self, until: Optional[float] = None) -> PassResult:
        """Advance through pending events until one scheduling pass ran.

        Processes events in time order and returns after handling the
        next ``SCHEDULE_TICK`` (or earlier, when the event queue runs
        dry, ``max_time`` is exceeded, the workload drains, or the next
        event lies beyond ``until``).  Calling ``advance()`` in a loop
        reproduces exactly the schedule ``run()`` produces — the service
        daemon relies on this equivalence for deterministic
        snapshot/restore.
        """
        self.start()
        self._reset_round_counters()
        # Runtime-injected faults (``faultctl``) must not sit queued on
        # a drained (or parked) engine with no tick to carry the fault
        # phase — seed one so e.g. a crash on an idle cluster still
        # applies.  Plan events are unaffected: they fire only on
        # passes that happen anyway.
        if self.faults is not None and self.faults.pending:
            if self._parked:
                self._exit_park(self.now)
            self._ensure_tick(self.now)
        ticked = False
        events_processed = 0
        while self._events:
            next_time = self._events.peek_time()
            if next_time is not None and next_time > self.config.max_time:
                self._max_time_reached = True
                break
            if until is not None and next_time is not None and next_time > until:
                break
            event = self._events.pop()
            self.now = max(self.now, event.time)
            events_processed += 1
            if event.kind is EventKind.JOB_ARRIVAL:
                self._handle_arrival(event.payload)
            elif event.kind is EventKind.SCHEDULE_TICK:
                self._ticks_pending -= 1
                self._handle_tick()
                ticked = True
            elif event.kind is EventKind.ITERATION_DONE:
                job, token = event.payload
                self._handle_iteration_done(job, token)
            if self.is_drained or ticked:
                break
        if ticked:
            self._round_index += 1
        if self.sanitizer is not None and events_processed:
            decision = self._last_decision if ticked else None
            self._last_decision = None
            self.sanitizer.check_round(self, decision=decision)
        counters = self._round_counters
        result = PassResult(
            pass_index=self._round_index,
            sim_time=self.now,
            ticked=ticked,
            events_processed=events_processed,
            arrivals=counters["arrivals"],
            completions=counters["completions"],
            stops=counters["stops"],
            placements=counters["placements"],
            migrations=counters["migrations"],
            evictions=counters["evictions"],
            queue_depth=len(self.queue),
            active_jobs=len(self.active_jobs),
            running_jobs=len(self._iteration),
            overload_degree=self.cluster.overload_degree(),
            drained=self.is_drained,
            faults=counters["faults"],
            tasks_killed=counters["tasks_killed"],
            failed_servers=len(self.cluster.failed_servers()),
        )
        self.obs.on_round(result)
        return result

    def run_until(self, until: float) -> list[PassResult]:
        """Process every event at or before ``until``; advance the clock.

        Runs scheduling passes as they come due, returning one
        :class:`PassResult` per ``advance()`` call (the final entry may
        have ``ticked=False`` — the tail of events before the cut-off).
        Afterwards the simulation clock stands at ``until`` (clamped to
        ``max_time``) even if no event lay that far out, so time-based
        drivers can interleave ``run_until`` with :meth:`inject_job`.
        """
        self.start()
        results: list[PassResult] = []
        while True:
            result = self.advance(until=until)
            results.append(result)
            if result.drained or result.events_processed == 0:
                break
        self.fast_forward(until)
        return results

    def fast_forward(self, until: float) -> float:
        """Advance the idle clock to ``until`` (clamped to ``max_time``).

        Only moves time forward — never rewinds — and refuses to move
        past ``max_time``.  Callers that drain events up to a bound
        (:meth:`run_until`, the daemon's ``step until=``) use this so
        the clock lands exactly on the bound even when no event lay
        that far out.
        """
        if not self._max_time_reached:
            target = min(until, self.config.max_time)
            if target > self.now:
                self.now = target
        return self.now

    def step(self) -> PassResult:
        """Deprecated alias of :meth:`advance` (no ``until`` bound).

        The round-indexed stepping surface predates the event-driven
        engine; new callers should drive the engine with
        :meth:`advance` / :meth:`run_until`.  The shim is bit-identical
        to ``advance()`` — the golden traces pin that contract.
        """
        warnings.warn(
            "SimulationEngine.step() is deprecated; use advance() or"
            " run_until() (see DESIGN.md §15)",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.advance()

    def finalize(self) -> SimulationMetrics:
        """Force-complete what is still active and close the metrics."""
        if not self._finalized:
            self._finalized = True
            self._finalize_unfinished()
            if self._trace_path is not None and self.obs.tracer.enabled:
                self.obs.tracer.write(self._trace_path)
        return self.metrics

    # ------------------------------------------------------------------
    # Streaming admission (service layer)
    # ------------------------------------------------------------------

    def inject_job(self, job: Job, arrival_time: Optional[float] = None) -> float:
        """Admit a job mid-run; returns its effective arrival time.

        The arrival is clamped to the current simulation clock (events
        cannot fire in the past).  If the engine had drained, a new
        scheduler tick is seeded so the job gets scheduled.
        """
        self.start()
        arrival = self.now if arrival_time is None else max(arrival_time, self.now)
        job.arrival_time = arrival
        self.jobs.append(job)
        self._pending_arrivals += 1
        self._finalized = False
        self._events.push(Event(arrival, EventKind.JOB_ARRIVAL, job))
        # A parked engine has no pass pending by design; a streamed
        # arrival re-arms it immediately (service responsiveness beats
        # grid alignment on this path), after replaying the scheduler's
        # clocks over the grid passes the park skipped.
        if self._parked:
            self._exit_park(arrival)
        self._ensure_tick(arrival)
        return arrival

    def cancel_job(self, job_id: str) -> bool:
        """Terminate an active job early (counts as stopped_early)."""
        job = self.active_jobs.get(job_id)
        if job is None:
            return False
        self._complete_job(job, stopped_early=True)
        return True

    def _push_tick(self, time: float) -> None:
        self._events.push(Event(time, EventKind.SCHEDULE_TICK))
        self._ticks_pending += 1

    def _ensure_tick(self, time: float) -> None:
        """Guarantee a scheduler tick is pending at or after ``time``."""
        if self._ticks_pending <= 0:
            self._push_tick(max(time, self.now))

    def _reset_round_counters(self) -> None:
        self._round_counters = {
            "arrivals": 0,
            "completions": 0,
            "stops": 0,
            "placements": 0,
            "migrations": 0,
            "evictions": 0,
            "faults": 0,
            "tasks_killed": 0,
        }

    # ------------------------------------------------------------------
    # Event handlers
    # ------------------------------------------------------------------

    def _handle_arrival(self, job: Job) -> None:
        self._unpark()
        self._pending_arrivals -= 1
        self._round_counters["arrivals"] += 1
        self.active_jobs[job.job_id] = job
        self._wait_since[job.job_id] = self.now
        self._wait_accum[job.job_id] = 0.0
        self._tokens[job.job_id] = 0
        for task in job.tasks:
            task.mark_queued(self.now)
            self.queue.append(task)
        self.obs.job_event(
            job.job_id,
            "submitted",
            self.now,
            round_index=self._round_index,
            detail=job.model.name,
            gpus=job.gpus_requested,
        )
        self.obs.job_event(
            job.job_id,
            "queued",
            self.now,
            round_index=self._round_index,
            tasks=len(job.tasks),
        )
        self.scheduler.on_job_arrival(job, self.now)

    def _handle_tick(self) -> None:
        # Every pass re-anchors the grid parked passes snap back onto.
        self._anchor = self.now
        # Fault phase first: capacity changes and kills must be visible
        # to this round's scheduling pass, and crashes apply even while
        # the cluster is idle.
        self._apply_faults()
        if self.active_jobs:
            overloaded = self.cluster.overloaded_servers(self.config.overload_threshold)
            self.metrics.overload_occurrences += len(overloaded)
            ctx = SchedulingContext(
                now=self.now,
                cluster=self.cluster,
                queue=list(self.queue),
                active_jobs=list(self.active_jobs.values()),
                overload_threshold=self.config.overload_threshold,
                system_overload_threshold=self.config.system_overload_threshold,
                accuracy_predictor=self.accuracy_predictor,
                runtime_predictor=self.runtime_predictor,
            )
            previous = set_current_observer(self.obs)
            try:
                with self.obs.span(
                    "round",
                    round=self._round_index,
                    queue=len(self.queue),
                    active_jobs=len(self.active_jobs),
                ):
                    started = _time.perf_counter()
                    decision = self.scheduler.on_schedule(ctx)
                    self.metrics.record_overhead(_time.perf_counter() - started)
                    if self.sanitizer is not None:
                        self._last_decision = decision
                    self._apply_decision(decision)
                    self._enforce_stall_guard()
                    self._start_ready_iterations()
            finally:
                set_current_observer(previous)
        self._schedule_next_tick()

    def _schedule_next_tick(self) -> None:
        if not self.active_jobs and self._pending_arrivals == 0:
            return
        if self._can_park():
            # Event-driven mode: every task is running, nothing can need
            # a pass before the next event — park instead of ticking.
            self._parked = True
            return
        next_time = self.now + self.config.tick_seconds
        if not self.active_jobs:
            # Idle: jump straight to the next arrival.
            upcoming = self._events.peek_time()
            if upcoming is not None:
                next_time = max(next_time, upcoming)
        self._push_tick(next_time)

    # ------------------------------------------------------------------
    # Event-driven pass control (pass_policy="event")
    # ------------------------------------------------------------------

    def _can_park(self) -> bool:
        """Whether the next scheduling pass is provably a no-op.

        True only when every active job is fully placed and iterating
        (empty waiting queue, no partial placement under the stall
        guard), no server exceeds the overload threshold (so no
        migration can be due), and no fault event can still fire.  Under
        those conditions a pass places nothing, evicts nothing, migrates
        nothing and stops nothing — for schedulers that declare
        ``event_parkable`` — so skipping it leaves the schedule
        bit-identical while the clock jumps straight to the next event.
        """
        if not self._event_mode:
            return False
        if not self.active_jobs or self.queue:
            return False
        if self._stall_counter:
            return False
        # ``_round_index`` increments after the tick; the pass running
        # right now is round ``_round_index + 1`` and its plan events
        # have already fired in this pass's fault phase.
        if self.faults is not None and self.faults.armed_after(self._round_index + 1):
            return False
        if self.cluster.overloaded_servers(self.config.overload_threshold):
            return False
        if self._park_veto is not None and not self._park_veto(self.cluster):
            # The scheduler sees a condition the engine's server-level
            # checks cannot (e.g. Gandiva's per-GPU threshold).
            return False
        return True

    def _unpark(self) -> None:
        """Re-arm the pass timer on the fixed grid after a parked gap.

        The next pass lands on the first ``tick_seconds`` grid point at
        or after ``now`` (measured from the last pass, ``_anchor``), so
        event-aligned passes coincide exactly with the fixed cadence —
        the property the dense-trace equivalence tests pin.
        """
        if not self._parked:
            return
        tick = self.config.tick_seconds
        periods = max(1, math.ceil((self.now - self._anchor) / tick))
        next_time = self._anchor + periods * tick
        if next_time < self.now:
            next_time = self.now
        self._exit_park(next_time)
        self._push_tick(next_time)

    def _exit_park(self, next_pass_time: float) -> None:
        """Leave the parked state, replaying clocks over skipped passes.

        ``next_pass_time`` is where the next pass will run.  Every fixed
        -cadence grid point strictly before it (``anchor + k * tick``,
        ``k = 1..skipped``) was a provably-no-op pass that the event
        policy skipped; the scheduler's ``accrue()`` hook advances any
        clocked state across them analytically so the pass that *does*
        run sees bit-identical scheduler state to the fixed cadence.
        """
        self._parked = False
        if self._accrue_hook is None:
            return
        tick = self.config.tick_seconds
        skipped = max(0, math.ceil((next_pass_time - self._anchor) / tick) - 1)
        if skipped:
            self._accrue_hook(
                skipped * tick,
                skipped_passes=skipped,
                now=self.now,
                tick_seconds=tick,
            )

    def _handle_iteration_done(self, job: Job, token: int) -> None:
        state = self._iteration.get(job.job_id)
        if state is None or state.token != token:
            return  # stale completion (preempted/migrated/stopped)
        del self._iteration[job.job_id]
        job.iterations_completed += 1
        self.metrics.bandwidth_mb += state.cross_mb
        if self.now <= job.deadline:
            job.iterations_at_deadline = job.iterations_completed
        self.runtime_predictor.observe_iteration(job, self._last_duration[job.job_id])
        self.accuracy_predictor.observe(job, job.iterations_completed)
        self.scheduler.on_iteration_complete(job, self.now)
        if job.iterations_completed >= job.max_iterations:
            self._complete_job(job, stopped_early=False)
        else:
            self._start_iteration(job)

    # ------------------------------------------------------------------
    # Fault injection (repro.faults)
    # ------------------------------------------------------------------

    def _apply_faults(self) -> None:
        """Apply this round's fault events before the scheduling pass."""
        injector = self.faults
        if injector is None or injector.is_idle:
            return
        # ``_round_index`` increments after the tick, so the round being
        # executed is reported as ``_round_index + 1`` — plan round
        # indices refer to those reported (1-based) round numbers.
        this_round = self._round_index + 1
        events = injector.take_events(this_round)
        if not events:
            return
        previous = set_current_observer(self.obs)
        try:
            with self.obs.span(
                "faults", round=this_round, events=len(events)
            ):
                killed_jobs: set[str] = set()
                for event in events:
                    self._apply_fault_event(event, killed_jobs)
                # One rollback per job per batch: losing two tasks at the
                # same round restores a single checkpoint, not two.
                for job_id in sorted(killed_jobs):
                    job = self.active_jobs.get(job_id)
                    if job is not None:
                        self._rollback_to_checkpoint(job)
        finally:
            set_current_observer(previous)

    def _apply_fault_event(self, event: FaultEvent, killed_jobs: set[str]) -> None:
        injector = self.faults
        assert injector is not None
        if event.server_id >= len(self.cluster.servers):
            return  # plan targets a server this cluster does not have
        server = self.cluster.server(event.server_id)
        kind = event.kind
        applied = False
        if kind == "server_crash":
            if not server.failed:
                applied = True
                server.failed = True
                self._count_fault("servers_failed")
                for task in server.tasks():
                    self._kill_task(task, killed_jobs, f"server-{server.server_id}-crash")
        elif kind == "server_revive":
            if server.failed:
                applied = True
                server.failed = False
                self._count_fault("servers_revived")
        elif kind == "gpu_fail":
            if event.gpu_id is not None and event.gpu_id < len(server.gpus):
                gpu = server.gpus[event.gpu_id]
                if not gpu.failed:
                    applied = True
                    gpu.failed = True
                    self._count_fault("gpus_failed")
                    for task in gpu.tasks():
                        self._kill_task(
                            task,
                            killed_jobs,
                            f"server-{server.server_id}-gpu-{gpu.gpu_id}-fail",
                        )
        elif kind == "gpu_revive":
            if event.gpu_id is not None and event.gpu_id < len(server.gpus):
                gpu = server.gpus[event.gpu_id]
                if gpu.failed:
                    applied = True
                    gpu.failed = False
                    self._count_fault("gpus_revived")
        elif kind == "straggler_start":
            applied = True
            injector.start_straggler(server.server_id, event.slowdown)
            self._count_fault("straggler_events")
        elif kind == "straggler_end":
            if server.server_id in injector.stragglers:
                applied = True
                injector.end_straggler(server.server_id)
                self._count_fault("straggler_events")
        if applied:
            self._round_counters["faults"] += 1
            self.metrics.fault_events += 1

    def _count_fault(self, key: str) -> None:
        """Bump the same fault counter in the metrics and the injector."""
        assert self.faults is not None
        self.faults.counters[key] += 1
        setattr(self.metrics, key, getattr(self.metrics, key) + 1)

    def _kill_task(self, task: Task, killed_jobs: set[str], reason: str) -> None:
        """Fault-kill a resident task: release it and re-enqueue it.

        Unlike a scheduler eviction this is involuntary — the task's job
        will be rolled back to its last checkpoint once the whole fault
        batch has been applied, and the scheduler re-places the task
        through its normal paths in the same round.
        """
        server = self.cluster.server(task.server_id)
        server.remove_task(task)
        task.mark_queued(self.now)
        self.queue.append(task)
        self._round_counters["tasks_killed"] += 1
        self._count_fault("tasks_killed")
        self.obs.job_event(
            task.job_id,
            "fault_killed",
            self.now,
            round_index=self._round_index + 1,
            task_id=task.task_id,
            server_id=server.server_id,
            detail=reason,
        )
        job = task.job
        killed_jobs.add(job.job_id)
        self._cancel_iteration(job)
        if not job.placed_tasks():
            self._open_wait_stint(job)

    def _rollback_to_checkpoint(self, job: Job) -> None:
        """Checkpoint-restart: resume from the last completed checkpoint.

        Jobs checkpoint every ``checkpoint_period`` completed iterations;
        the iterations past that point are lost work, redone after the
        scheduler re-places the killed tasks.  Deadline-time progress is
        clamped too — the restored model state *is* the checkpoint.
        """
        assert self.faults is not None
        period = self.faults.plan.checkpoint_period
        checkpointed = (job.iterations_completed // period) * period
        lost = job.iterations_completed - checkpointed
        if lost <= 0:
            return
        job.iterations_completed = checkpointed
        job.iterations_at_deadline = min(job.iterations_at_deadline, checkpointed)
        self.metrics.iterations_lost += lost
        self.faults.counters["iterations_lost"] += lost
        self.obs.job_event(
            job.job_id,
            "rolled_back",
            self.now,
            round_index=self._round_index + 1,
            iterations_lost=lost,
            checkpoint=checkpointed,
        )

    # ------------------------------------------------------------------
    # Decision application
    # ------------------------------------------------------------------

    def _apply_decision(self, decision: SchedulerDecision) -> None:
        for eviction in decision.evictions:
            self._evict_task(eviction.task)
        for migration in decision.migrations:
            self._migrate_task(migration.task, migration.dst_server_id, migration.gpu_id)
        for placement in decision.placements:
            self._place_task(placement.task, placement.server_id, placement.gpu_id)
        for stop in decision.stops:
            job = stop.job
            if job.job_id in self.active_jobs and not job.is_complete:
                self._complete_job(job, stopped_early=True)

    def _place_task(self, task: Task, server_id: int, gpu_id: Optional[int]) -> None:
        if task.state is not TaskState.QUEUED:
            raise ValueError(f"cannot place task {task.task_id}: not queued")
        if task.job_id not in self.active_jobs:
            return  # job already stopped this round
        try:
            self.queue.remove(task)
        except ValueError:
            raise ValueError(f"task {task.task_id} not in the waiting queue") from None
        server = self.cluster.server(server_id)
        gpu = server.gpus[gpu_id] if gpu_id is not None else None
        landed = server.place_task(task, gpu)
        task.mark_placed(self.now, server_id, landed.gpu_id)
        self._round_counters["placements"] += 1
        self.obs.job_event(
            task.job_id,
            "placed",
            self.now,
            round_index=self._round_index,
            task_id=task.task_id,
            server_id=server_id,
            gpu_id=landed.gpu_id,
        )
        self._close_wait_stint(task.job)
        self._cancel_iteration(task.job)  # placement changes contention; restart cleanly

    def _evict_task(self, task: Task) -> None:
        if not task.is_placed:
            raise ValueError(f"cannot evict task {task.task_id}: not placed")
        src_server_id = task.server_id
        server = self.cluster.server(task.server_id)
        server.remove_task(task)
        task.mark_queued(self.now)
        self.queue.append(task)
        self.metrics.num_evictions += 1
        self._round_counters["evictions"] += 1
        self.obs.job_event(
            task.job_id,
            "evicted",
            self.now,
            round_index=self._round_index,
            task_id=task.task_id,
            server_id=src_server_id,
        )
        job = task.job
        self._cancel_iteration(job)
        if not job.placed_tasks():
            self._open_wait_stint(job)

    def _migrate_task(
        self, task: Task, dst_server_id: int, gpu_id: Optional[int]
    ) -> None:
        if not task.is_placed:
            raise ValueError(f"cannot migrate task {task.task_id}: not placed")
        if task.server_id == dst_server_id:
            return
        src_server_id = task.server_id
        src = self.cluster.server(task.server_id)
        src.remove_task(task)
        dst = self.cluster.server(dst_server_id)
        gpu = dst.gpus[gpu_id] if gpu_id is not None else None
        landed = dst.place_task(task, gpu)
        task.server_id = dst_server_id
        task.gpu_id = landed.gpu_id
        task.num_migrations += 1
        self.metrics.num_migrations += 1
        self._round_counters["migrations"] += 1
        self.obs.job_event(
            task.job_id,
            "migrated",
            self.now,
            round_index=self._round_index,
            task_id=task.task_id,
            server_id=dst_server_id,
            gpu_id=landed.gpu_id,
            detail=f"from=server-{src_server_id}",
        )
        self.metrics.migration_bandwidth_mb += migration_volume_mb(task)
        self._extend_iteration(task.job, self.config.migration_penalty_seconds)

    # ------------------------------------------------------------------
    # Iteration lifecycle
    # ------------------------------------------------------------------

    def _start_ready_iterations(self) -> None:
        for job in list(self.active_jobs.values()):
            if (
                job.is_fully_placed
                and job.job_id not in self._iteration
                and job.remaining_iterations > 0
            ):
                self._start_iteration(job)

    def _start_iteration(self, job: Job) -> None:
        if not job.is_fully_placed:
            return
        if job.state is JobState.WAITING:
            job.state = JobState.RUNNING
            job.first_run_time = self.now
        duration, cross_mb = self.execution.iteration_duration(
            job, self.cluster, self._rng.random()
        )
        if self.faults is not None and self.faults.stragglers:
            factor = self.faults.slowdown_for(job)
            if factor != 1.0:
                duration *= factor
        duration = max(duration, 1e-6)
        token = self._tokens[job.job_id] = self._tokens.get(job.job_id, 0) + 1
        self._iteration[job.job_id] = _IterationState(
            token=token, end_time=self.now + duration, cross_mb=cross_mb
        )
        self._last_duration[job.job_id] = duration
        self._events.push(
            Event(self.now + duration, EventKind.ITERATION_DONE, (job, token))
        )

    def _cancel_iteration(self, job: Job) -> None:
        self._iteration.pop(job.job_id, None)
        self._tokens[job.job_id] = self._tokens.get(job.job_id, 0) + 1

    def _extend_iteration(self, job: Job, penalty: float) -> None:
        state = self._iteration.get(job.job_id)
        if state is None:
            return
        remaining = max(0.0, state.end_time - self.now) + penalty
        self._cancel_iteration(job)
        token = self._tokens[job.job_id]
        new_state = _IterationState(
            token=token, end_time=self.now + remaining, cross_mb=state.cross_mb
        )
        self._iteration[job.job_id] = new_state
        self._last_duration[job.job_id] = (
            self._last_duration.get(job.job_id, remaining) + penalty
        )
        self._events.push(
            Event(new_state.end_time, EventKind.ITERATION_DONE, (job, token))
        )

    # ------------------------------------------------------------------
    # Job completion & waiting accounting
    # ------------------------------------------------------------------

    def _complete_job(self, job: Job, stopped_early: bool) -> None:
        self._round_counters["completions"] += 1
        if stopped_early:
            self._round_counters["stops"] += 1
        self._cancel_iteration(job)
        for task in job.tasks:
            if task.is_placed:
                self.cluster.server(task.server_id).remove_task(task)
            elif task.state is TaskState.QUEUED:
                try:
                    self.queue.remove(task)
                except ValueError:
                    pass
            task.mark_finished()
        job.state = JobState.COMPLETED
        job.completion_time = self.now
        job.stopped_early = stopped_early
        if self.now <= job.deadline:
            job.iterations_at_deadline = job.iterations_completed
        if job.completion_time <= job.deadline:
            job.accuracy_at_deadline = job.final_accuracy
        else:
            job.accuracy_at_deadline = job.accuracy_at(job.iterations_at_deadline)
        self._close_wait_stint(job, completing=True)
        waiting = self._wait_accum.pop(job.job_id, 0.0)
        self.obs.job_event(
            job.job_id,
            "stopped" if stopped_early else "completed",
            self.now,
            round_index=self._round_index,
            jct=job.completion_time - job.arrival_time,
            iterations=job.iterations_completed,
        )
        self.metrics.record_job(job, waiting)
        self.active_jobs.pop(job.job_id, None)
        if self._parked and not self.active_jobs:
            # The cluster just went idle mid-gap: re-arm the pass timer
            # so the engine reproduces the fixed cadence's idle handoff
            # (one grid-aligned tick, then the jump to the next arrival).
            self._unpark()
        self._stall_counter.pop(job.job_id, None)
        self._wait_since.pop(job.job_id, None)
        self._last_duration.pop(job.job_id, None)
        self.accuracy_predictor.forget(job)
        self.runtime_predictor.forget(job)
        self.execution.forget(job)
        self.scheduler.on_job_complete(job, self.now)

    def _open_wait_stint(self, job: Job) -> None:
        if job.job_id in self.active_jobs and job.job_id not in self._wait_since:
            self._wait_since[job.job_id] = self.now

    def _close_wait_stint(self, job: Job, completing: bool = False) -> None:
        since = self._wait_since.pop(job.job_id, None)
        if since is not None:
            self._wait_accum[job.job_id] = self._wait_accum.get(job.job_id, 0.0) + max(
                0.0, self.now - since
            )
        if not completing and not job.placed_tasks():
            # Still nothing running; re-open immediately.
            self._wait_since[job.job_id] = self.now

    # ------------------------------------------------------------------
    # Liveness guard
    # ------------------------------------------------------------------

    def _enforce_stall_guard(self) -> None:
        for job in list(self.active_jobs.values()):
            placed = job.placed_tasks()
            if placed and not job.is_fully_placed:
                count = self._stall_counter.get(job.job_id, 0) + 1
                self._stall_counter[job.job_id] = count
                if count > self.config.stall_ticks:
                    for task in placed:
                        self._evict_task(task)
                    self._stall_counter[job.job_id] = 0
            else:
                self._stall_counter.pop(job.job_id, None)

    def _finalize_unfinished(self) -> None:
        """Force-complete jobs still active when ``max_time`` is hit.

        Their metrics reflect the truncated run (missed deadlines, the
        accuracy actually reached) rather than being dropped, so an
        overload scenario cannot silently shed its worst jobs.
        """
        for job in list(self.active_jobs.values()):
            self._complete_job(job, stopped_early=False)
