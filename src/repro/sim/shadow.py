"""Shadow resource accounting for batch scheduling decisions.

A scheduler emits a *batch* of placements per round, but the live
cluster only reflects them after the engine applies the decision.  The
:class:`ShadowCluster` overlays tentative demand on top of the real
loads so that capacity checks within one round see earlier choices of
the same round.  Schedulers must never mutate the real cluster.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import Optional

from repro.cluster.cluster import Cluster
from repro.cluster.resources import ResourceVector
from repro.cluster.server import Server
from repro.workload.job import Task

#: What :meth:`ShadowCluster.snapshot` captures: (server deltas, GPU
#: deltas, tentative task locations).
ShadowSnapshot = tuple[
    dict[int, ResourceVector], dict[tuple[int, int], float], dict[str, Optional[int]]
]


#: Process-wide monotonic shadow identities.  A scheduler builds one
#: shadow per scheduling pass, so a changed token tells pass-scoped
#: caches (the placement index) "new pass — live loads may have moved".
#: ``id()`` cannot serve here: CPython reuses addresses after GC.
_SHADOW_TOKENS = itertools.count(1)


@dataclass
class ShadowCluster:
    """Read-through view of a cluster with tentative load deltas."""

    cluster: Cluster
    _server_delta: dict[int, ResourceVector] = field(default_factory=dict)
    _gpu_delta: dict[tuple[int, int], float] = field(default_factory=dict)
    #: Tentative task locations: task_id -> server_id (placements and
    #: migrations committed this round; ``None`` marks removals).
    _locations: dict[str, Optional[int]] = field(default_factory=dict)
    #: Monotonic instance identity (see ``_SHADOW_TOKENS``).  Not
    #: meaningful across processes — pass-scoped caches keyed on it must
    #: drop their state on unpickle.
    token: int = field(default_factory=lambda: next(_SHADOW_TOKENS))

    # -- queries -----------------------------------------------------------

    def delta_server_ids(self) -> set[int]:
        """Server ids whose shadow load differs from the live load.

        Incremental candidate structures prefilter on *live* loads; any
        server touched by this round's tentative commits must be
        re-examined exactly (an eviction can free capacity the live
        view does not show yet).
        """
        return set(self._server_delta)

    def server_load(self, server: Server) -> ResourceVector:
        """Real + tentative load of a server."""
        delta = self._server_delta.get(server.server_id)
        if delta is None:
            return server.load.clamp_nonnegative()
        return (server.load + delta).clamp_nonnegative()

    def utilization(self, server: Server) -> ResourceVector:
        """Utilization vector including tentative load."""
        return self.server_load(server).divide_by(server.capacity).clamp_nonnegative()

    def utilization_tuple(
        self, server: Server
    ) -> tuple[float, float, float, float]:
        """:meth:`utilization` as a plain tuple, allocation-free.

        The RIAL distance loop reads utilizations for every candidate
        server of every task; going through :class:`ResourceVector`
        there costs three allocations per server per query.  Numerically
        identical to ``utilization(server).as_tuple()``.
        """
        load = server.load
        lg, lc, lm, lb = load.gpu, load.cpu, load.mem, load.bw
        delta = self._server_delta.get(server.server_id)
        if delta is not None:
            lg += delta.gpu
            lc += delta.cpu
            lm += delta.mem
            lb += delta.bw
        cap = server.capacity
        ug = lg / cap.gpu if cap.gpu else 0.0
        uc = lc / cap.cpu if cap.cpu else 0.0
        um = lm / cap.mem if cap.mem else 0.0
        ub = lb / cap.bw if cap.bw else 0.0
        return (
            ug if ug > 0.0 else 0.0,
            uc if uc > 0.0 else 0.0,
            um if um > 0.0 else 0.0,
            ub if ub > 0.0 else 0.0,
        )

    def overload_degree(self, server: Server) -> float:
        """``||U_s||`` including tentative load."""
        return self.utilization(server).norm()

    def gpu_load(self, server: Server, gpu_id: int) -> float:
        """Real + tentative load of one GPU."""
        gpu = server.gpus[gpu_id]
        return gpu.load + self._gpu_delta.get((server.server_id, gpu_id), 0.0)

    def gpu_utilization(self, server: Server, gpu_id: int) -> float:
        """GPU utilization including tentative load."""
        gpu = server.gpus[gpu_id]
        return self.gpu_load(server, gpu_id) / gpu.capacity if gpu.capacity else 0.0

    def least_loaded_gpu(self, server: Server) -> int:
        """GPU id with the smallest shadow utilization (healthy first)."""
        if not server.gpus:
            raise RuntimeError(f"server {server.server_id} has no GPUs")
        pool = server.healthy_gpus() or server.gpus
        return min(
            (g.gpu_id for g in pool),
            key=lambda gid: (self.gpu_utilization(server, gid), gid),
        )

    def is_overloaded(self, server: Server, threshold: float) -> bool:
        """Shadow-aware server overload predicate (failed ⇒ overloaded)."""
        return server.failed or self.utilization(server).exceeds_any(threshold)

    def underloaded_servers(self, threshold: float) -> list[Server]:
        """Servers not overloaded under shadow accounting."""
        return [
            s for s in self.cluster.servers if not self.is_overloaded(s, threshold)
        ]

    def would_overload(
        self,
        server: Server,
        demand: ResourceVector,
        threshold: float,
        gpu_id: Optional[int] = None,
    ) -> bool:
        """Whether hosting ``demand`` would overload server or target GPU.

        Failed servers and failed GPUs (including a server whose every
        device failed) always overload, so no scheduler path routes work
        onto lost hardware.

        This predicate runs once per (task, server) pair inside every
        placement scan — the hottest loop at Philly scale — so it is
        written scalar-wise, allocating no intermediate
        :class:`ResourceVector`; numerically it matches the composed
        ``server_load``/``divide_by``/``exceeds_any`` path exactly.
        """
        if server.failed:
            return True
        load = server.load
        lg, lc, lm, lb = load.gpu, load.cpu, load.mem, load.bw
        delta = self._server_delta.get(server.server_id)
        if delta is not None:
            lg += delta.gpu
            lc += delta.cpu
            lm += delta.mem
            lb += delta.bw
        # clamp_nonnegative of the shadow load, unrolled.
        if lg < 0.0:
            lg = 0.0
        if lc < 0.0:
            lc = 0.0
        if lm < 0.0:
            lm = 0.0
        if lb < 0.0:
            lb = 0.0
        cap = server.capacity
        if (
            (cap.gpu and (lg + demand.gpu) / cap.gpu > threshold)
            or (cap.cpu and (lc + demand.cpu) / cap.cpu > threshold)
            or (cap.mem and (lm + demand.mem) / cap.mem > threshold)
            or (cap.bw and (lb + demand.bw) / cap.bw > threshold)
        ):
            return True
        if gpu_id is not None:
            gpu = server.gpus[gpu_id]
            if gpu.failed:
                return True
            if not gpu.capacity:
                return demand.gpu > 0
            return (self.gpu_load(server, gpu_id) + demand.gpu) / gpu.capacity > threshold
        if not server.gpus:
            raise RuntimeError(f"server {server.server_id} has no GPUs")
        # Inline least_loaded_gpu over healthy devices: iteration is in
        # gpu_id order and strict ``<`` keeps the first minimum, matching
        # the ``(utilization, gpu_id)`` tie-break of the method.
        gpu_delta = self._gpu_delta
        sid = server.server_id
        best = None
        best_util = math.inf
        for g in server.gpus:
            if g.failed:
                continue
            g_load = g.load + gpu_delta.get((sid, g.gpu_id), 0.0)
            util = g_load / g.capacity if g.capacity else 0.0
            if util < best_util:
                best_util = util
                best = g
        if best is None:
            # Every device failed: least_loaded_gpu would fall back to a
            # failed GPU, which always overloads.
            return True
        if not best.capacity:
            return demand.gpu > 0
        return (best.load + gpu_delta.get((sid, best.gpu_id), 0.0) + demand.gpu) / best.capacity > threshold

    def task_location(self, task: Task) -> Optional[int]:
        """Server id hosting the task, honoring this round's tentative moves."""
        if task.task_id in self._locations:
            return self._locations[task.task_id]
        return task.server_id

    # -- commits -----------------------------------------------------------

    def commit_placement(self, task: Task, server_id: int, gpu_id: int) -> None:
        """Record a tentative placement of a queued task."""
        self._add(server_id, gpu_id, task.demand)
        self._locations[task.task_id] = server_id

    def commit_removal(self, task: Task) -> None:
        """Record a tentative removal (eviction or migration source)."""
        location = self.task_location(task)
        if location is None:
            raise ValueError(f"task {task.task_id} has no location to remove")
        gpu_id = task.gpu_id if task.gpu_id is not None else 0
        self._add(location, gpu_id, task.demand * -1.0)
        self._locations[task.task_id] = None

    def commit_migration(self, task: Task, dst_server_id: int, dst_gpu_id: int) -> None:
        """Record a tentative migration (removal + placement)."""
        self.commit_removal(task)
        self._add(dst_server_id, dst_gpu_id, task.demand)
        self._locations[task.task_id] = dst_server_id

    # -- snapshot / rollback -------------------------------------------------

    def snapshot(self) -> ShadowSnapshot:
        """Capture the tentative state (for speculative packing)."""
        return (
            dict(self._server_delta),
            dict(self._gpu_delta),
            dict(self._locations),
        )

    def restore(self, snapshot: ShadowSnapshot) -> None:
        """Roll back to a state captured by :meth:`snapshot`."""
        server_delta, gpu_delta, locations = snapshot
        self._server_delta = dict(server_delta)
        self._gpu_delta = dict(gpu_delta)
        self._locations = dict(locations)

    def _add(self, server_id: int, gpu_id: int, demand: ResourceVector) -> None:
        current = self._server_delta.get(server_id, ResourceVector.zeros())
        self._server_delta[server_id] = current + demand
        key = (server_id, gpu_id)
        self._gpu_delta[key] = self._gpu_delta.get(key, 0.0) + demand.gpu
