"""Top-level simulation entry points.

``run_simulation`` wires a scheduler, a workload and a cluster into a
:class:`~repro.sim.engine.SimulationEngine` run and returns a
:class:`SimulationResult`.  ``run_comparison`` executes the same workload
under several schedulers — the core of every figure in Section 4.2.

Because jobs are stateful, each run deep-builds its own workload from
the trace records (never share `Job` objects between runs).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from repro.cluster.cluster import Cluster
from repro.faults.plan import FaultPlan
from repro.sim.engine import EngineConfig, SimulationEngine
from repro.sim.interface import Scheduler
from repro.sim.metrics import SimulationMetrics
from repro.workload.generator import WorkloadConfig, build_jobs
from repro.workload.trace import TraceRecord


@dataclass
class SimulationResult:
    """Outcome of one simulation run."""

    scheduler_name: str
    metrics: SimulationMetrics

    def summary(self) -> dict[str, float]:
        """Headline aggregates (see :meth:`SimulationMetrics.summary`)."""
        return self.metrics.summary()


@dataclass(frozen=True)
class SimulationSetup:
    """Everything needed to reproduce one run.

    ``cluster_factory`` builds a fresh cluster per run (clusters are
    stateful); ``workload_seed`` makes the trace → job conversion
    deterministic so every scheduler sees an identical workload.
    """

    records: Sequence[TraceRecord]
    cluster_factory: Callable[[], Cluster]
    engine_config: EngineConfig = field(default_factory=EngineConfig)
    workload_config: WorkloadConfig = field(default_factory=WorkloadConfig)
    workload_seed: int = 0
    #: Optional fault plan; a plan (not an injector) so comparison runs
    #: each get a fresh injector over the same frozen schedule.
    faults: Optional[FaultPlan] = None


def run_simulation(
    scheduler: Scheduler,
    setup: SimulationSetup,
    engine_config: Optional[EngineConfig] = None,
) -> SimulationResult:
    """Run one scheduler over the setup's workload."""
    jobs = build_jobs(setup.records, seed=setup.workload_seed, config=setup.workload_config)
    cluster = setup.cluster_factory()
    engine = SimulationEngine(
        scheduler=scheduler,
        jobs=jobs,
        cluster=cluster,
        config=engine_config or setup.engine_config,
        faults=setup.faults,
    )
    metrics = engine.run()
    return SimulationResult(scheduler_name=scheduler.name, metrics=metrics)


def run_comparison(
    schedulers: Sequence[Scheduler] | Sequence[Callable[[], Scheduler]],
    setup: SimulationSetup,
) -> dict[str, SimulationResult]:
    """Run every scheduler over the identical workload.

    Accepts scheduler instances or zero-argument factories (factories
    are preferred for stateful schedulers such as MLF-RL).
    """
    results: dict[str, SimulationResult] = {}
    for entry in schedulers:
        scheduler = entry() if callable(entry) and not isinstance(entry, Scheduler) else entry
        result = run_simulation(scheduler, setup)
        results[result.scheduler_name] = result
    return results
