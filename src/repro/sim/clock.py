"""Pass-indexed policy clocks that survive parked gaps bit-identically.

Schedulers with *clocked* per-pass behavior (Gandiva rotates time
slices, SLAQ reallocates once per epoch) fire an action every N-th
scheduling pass.  Under the event-driven engine
(``EngineConfig(pass_policy="event")``, DESIGN.md §15) no-op passes are
*skipped*, so a wall-clock timer (``now - last_fire >= period``) would
fire at different times than the fixed cadence — float accumulation
aside, the history itself diverges.

:class:`PassClock` counts **passes**, not seconds: one :meth:`tick` per
executed scheduling pass, and an analytic :meth:`advance` that replays
any number of skipped passes in O(1) integer arithmetic.  Because the
engine only skips passes that are provably no-ops (empty queue, all
jobs placed, no overload, no armed fault, scheduler veto consulted),
a skipped pass could only ever have *fired the clock without acting* —
replaying the counter is exactly equivalent to having run the pass.
Integer state means no float rounding can make the modes diverge.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class PassClock:
    """Fires every ``period_passes``-th scheduling pass.

    The counter lives in pure integers so the fixed-cadence and the
    event-driven engine agree bit for bit: ``tick()`` at pass *k*
    followed by ``advance(n)`` is indistinguishable from ``tick()``
    called ``n`` more times (the proof obligation of the ``accrue()``
    contract, DESIGN.md §15.7).
    """

    period_passes: int = 1
    _since_fire: int = field(default=0)

    def __post_init__(self) -> None:
        if self.period_passes < 1:
            raise ValueError(
                f"period_passes must be >= 1, got {self.period_passes}"
            )

    def tick(self) -> bool:
        """Count one executed scheduling pass; True when the clock fires."""
        self._since_fire += 1
        if self._since_fire >= self.period_passes:
            self._since_fire = 0
            return True
        return False

    def advance(self, skipped_passes: int) -> None:
        """Replay ``skipped_passes`` parked no-op passes analytically.

        Each skipped pass would have incremented the counter and — when
        it reached the period — fired as a no-op and reset.  The closed
        form of that loop is a single modulo.
        """
        if skipped_passes < 0:
            raise ValueError(f"skipped_passes must be >= 0, got {skipped_passes}")
        if skipped_passes:
            self._since_fire = (self._since_fire + skipped_passes) % self.period_passes

    @property
    def passes_since_fire(self) -> int:
        """Executed (or replayed) passes since the clock last fired."""
        return self._since_fire
