"""Communication model: per-iteration transfer volumes and times.

Only *cross-server* links consume cluster bandwidth — co-located tasks
exchange data through host memory for free, which is exactly why the
paper's placement logic tries "to allocate high-volume communicating
tasks to the same server" (Section 3.3.2).  Per-iteration communication
time is the NIC bottleneck: the most loaded server's cross-traffic
divided by its NIC bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.cluster.cluster import Cluster
from repro.workload.job import Job, Task


@dataclass(frozen=True, slots=True)
class CommLink:
    """One resolved communication link between two tasks."""

    src: Task
    dst: Task
    volume_mb: float


@dataclass(frozen=True, slots=True)
class IterationComm:
    """Communication outcome of one iteration of one job."""

    cross_server_mb: float
    seconds: float


def job_links(job: Job) -> list[CommLink]:
    """All per-iteration communication links of a job.

    Dependency edges (activations/gradients between partitions and to a
    parameter server) plus all-reduce synchronization links.
    """
    by_id = {t.task_id: t for t in job.tasks}
    links = [
        CommLink(src=by_id[u], dst=by_id[v], volume_mb=data["volume_mb"])
        for u, v, data in job.dag.edges(data=True)
    ]
    links.extend(
        CommLink(src=by_id[u], dst=by_id[v], volume_mb=vol)
        for u, v, vol in job.sync_links
    )
    return links


def iteration_comm(
    job: Job, cluster: Cluster, links: Iterable[CommLink] | None = None
) -> IterationComm:
    """Volume and time of one iteration's communication for ``job``.

    All of the job's tasks must be placed.  Cross-server links charge
    their volume to both endpoints' NICs; the iteration's communication
    time is the worst per-server NIC time.
    """
    per_server_mb: dict[int, float] = {}
    cross_mb = 0.0
    rounds = float(job.model.comm_rounds_per_iteration)
    for link in links if links is not None else job_links(job):
        src_server = link.src.server_id
        dst_server = link.dst.server_id
        if src_server is None or dst_server is None:
            raise ValueError(
                f"task {link.src.task_id} or {link.dst.task_id} is not placed"
            )
        if src_server == dst_server:
            continue
        volume = link.volume_mb * rounds
        cross_mb += volume
        per_server_mb[src_server] = per_server_mb.get(src_server, 0.0) + volume
        per_server_mb[dst_server] = per_server_mb.get(dst_server, 0.0) + volume

    seconds = 0.0
    for server_id, mb in per_server_mb.items():
        bw = cluster.server(server_id).capacity.bw
        seconds = max(seconds, mb / bw if bw else 0.0)
    return IterationComm(cross_server_mb=cross_mb, seconds=seconds)


def migration_volume_mb(task: Task) -> float:
    """Bandwidth cost of moving a task: its partition's parameter state.

    One million fp32 parameters serialize to 4 MB; a small fixed
    container/checkpoint overhead is added.
    """
    return task.partition_params_m * 4.0 + 8.0


def pairwise_cross_volume(job: Job, task: Task, server_id: int) -> float:
    """Communication volume task ↔ rest-of-job that would cross servers
    if ``task`` lived on ``server_id``.

    Used by placement heuristics to score candidate servers (the
    ``u_BW,V`` component of the ideal virtual server in Section 3.3.2):
    lower is better.
    Unplaced peers are ignored — their location is unknown.
    """
    crossing = 0.0
    for link in job_links(job):
        if link.src.task_id == task.task_id:
            peer = link.dst
        elif link.dst.task_id == task.task_id:
            peer = link.src
        else:
            continue
        if peer.server_id is None:
            continue
        if peer.server_id != server_id:
            crossing += link.volume_mb
    return crossing
