"""Discrete-event ML-cluster simulator: events, execution, network, engine."""

from repro.sim.engine import EngineConfig, RoundResult, SimulationEngine
from repro.sim.events import Event, EventKind, EventQueue
from repro.sim.execution import ExecutionModel
from repro.sim.interface import (
    Eviction,
    JobStop,
    Migration,
    Placement,
    Scheduler,
    SchedulerDecision,
    SchedulingContext,
)
from repro.sim.metrics import JobRecord, SimulationMetrics
from repro.sim.network import (
    CommLink,
    IterationComm,
    iteration_comm,
    job_links,
    migration_volume_mb,
    pairwise_cross_volume,
)
from repro.sim.simulation import (
    SimulationResult,
    SimulationSetup,
    run_comparison,
    run_simulation,
)

__all__ = [
    "CommLink",
    "EngineConfig",
    "Event",
    "EventKind",
    "EventQueue",
    "Eviction",
    "ExecutionModel",
    "IterationComm",
    "JobRecord",
    "JobStop",
    "Migration",
    "Placement",
    "RoundResult",
    "Scheduler",
    "SchedulerDecision",
    "SchedulingContext",
    "SimulationEngine",
    "SimulationMetrics",
    "SimulationResult",
    "SimulationSetup",
    "iteration_comm",
    "job_links",
    "migration_volume_mb",
    "pairwise_cross_volume",
    "run_comparison",
    "run_simulation",
]
