"""Discrete-event ML-cluster simulator: events, execution, network, engine."""

from typing import Any

from repro.sim.engine import EngineConfig, PassResult, SimulationEngine, TaskQueue
from repro.sim.events import Event, EventKind, EventQueue
from repro.sim.execution import ExecutionModel
from repro.sim.interface import (
    Eviction,
    JobStop,
    Migration,
    Placement,
    Scheduler,
    SchedulerDecision,
    SchedulingContext,
)
from repro.sim.metrics import JobRecord, SimulationMetrics
from repro.sim.network import (
    CommLink,
    IterationComm,
    iteration_comm,
    job_links,
    migration_volume_mb,
    pairwise_cross_volume,
)
from repro.sim.simulation import (
    SimulationResult,
    SimulationSetup,
    run_comparison,
    run_simulation,
)

__all__ = [
    "CommLink",
    "EngineConfig",
    "Event",
    "EventKind",
    "EventQueue",
    "Eviction",
    "ExecutionModel",
    "IterationComm",
    "JobRecord",
    "JobStop",
    "Migration",
    "PassResult",
    "Placement",
    "RoundResult",
    "Scheduler",
    "SchedulerDecision",
    "SchedulingContext",
    "SimulationEngine",
    "SimulationMetrics",
    "SimulationResult",
    "SimulationSetup",
    "TaskQueue",
    "iteration_comm",
    "job_links",
    "migration_volume_mb",
    "pairwise_cross_volume",
    "run_comparison",
    "run_simulation",
]


def __getattr__(name: str) -> Any:
    # ``RoundResult`` stays importable for one release; the engine
    # module owns the alias (and its DeprecationWarning).
    if name == "RoundResult":
        from repro.sim import engine

        return engine.RoundResult
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
