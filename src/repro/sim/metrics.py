"""Metrics collection — everything the paper's evaluation reports.

One :class:`SimulationMetrics` instance per run gathers per-job records
and cluster-level counters, then exposes the aggregates behind every
figure of Section 4.2: JCT CDF (4a/5a), average JCT (4b/5b), deadline
guarantee ratio (4c/5c), average job waiting time (4d/5d), average
accuracy by deadline (4e/5e), accuracy guarantee ratio (4f/5f),
bandwidth cost (4g/5g), scheduler time overhead (4h/5h), makespan
(Section 4.2.1 text) and server-overload occurrences (Figure 8a).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.workload.job import Job


@dataclass(frozen=True, slots=True)
class JobRecord:
    """Final outcome of one job."""

    job_id: str
    model_name: str
    arrival_time: float
    completion_time: float
    deadline: float
    jct: float
    waiting_time: float
    iterations_completed: int
    max_iterations: int
    final_accuracy: float
    accuracy_at_deadline: float
    accuracy_requirement: float
    urgency: int
    gpus_requested: int
    stopped_early: bool
    num_migrations: int

    @property
    def met_deadline(self) -> bool:
        """Whether the job completed by its deadline."""
        return self.completion_time <= self.deadline

    @property
    def met_accuracy(self) -> bool:
        """Whether the accuracy by the deadline met the requirement."""
        return self.accuracy_at_deadline >= self.accuracy_requirement


@dataclass
class SimulationMetrics:
    """Accumulates per-run measurements."""

    job_records: list[JobRecord] = field(default_factory=list)
    bandwidth_mb: float = 0.0
    migration_bandwidth_mb: float = 0.0
    num_migrations: int = 0
    num_evictions: int = 0
    overload_occurrences: int = 0
    # Fault injection (repro.faults): applied events, capacity transitions,
    # kills and checkpoint-restart lost work.
    fault_events: int = 0
    servers_failed: int = 0
    servers_revived: int = 0
    gpus_failed: int = 0
    gpus_revived: int = 0
    straggler_events: int = 0
    tasks_killed: int = 0
    iterations_lost: int = 0
    scheduler_overhead_seconds: list[float] = field(default_factory=list)
    first_arrival: Optional[float] = None
    last_completion: Optional[float] = None

    # -- recording ---------------------------------------------------------

    def record_job(self, job: Job, waiting_time: float) -> None:
        """Append the final record of a completed job."""
        if job.completion_time is None:
            raise ValueError(f"job {job.job_id} has not completed")
        accuracy_at_deadline = (
            job.accuracy_at_deadline
            if job.accuracy_at_deadline is not None
            else job.final_accuracy
        )
        self.job_records.append(
            JobRecord(
                job_id=job.job_id,
                model_name=job.model.name,
                arrival_time=job.arrival_time,
                completion_time=job.completion_time,
                deadline=job.deadline,
                jct=job.completion_time - job.arrival_time,
                waiting_time=waiting_time,
                iterations_completed=job.iterations_completed,
                max_iterations=job.max_iterations,
                final_accuracy=job.final_accuracy,
                accuracy_at_deadline=accuracy_at_deadline,
                accuracy_requirement=job.accuracy_requirement,
                urgency=job.urgency,
                gpus_requested=job.gpus_requested,
                stopped_early=job.stopped_early,
                num_migrations=job.tasks and sum(t.num_migrations for t in job.tasks) or 0,
            )
        )
        if self.first_arrival is None or job.arrival_time < self.first_arrival:
            self.first_arrival = job.arrival_time
        if self.last_completion is None or job.completion_time > self.last_completion:
            self.last_completion = job.completion_time

    def record_overhead(self, seconds: float) -> None:
        """Record one scheduler invocation's wall-clock cost."""
        self.scheduler_overhead_seconds.append(seconds)

    # -- aggregates (the paper's y-axes) ---------------------------------------

    def average_jct(self) -> float:
        """Mean job completion time in seconds (Figures 4b/5b)."""
        return _mean([r.jct for r in self.job_records])

    def jct_cdf(self, points: Optional[Sequence[float]] = None) -> list[tuple[float, float]]:
        """CDF of JCT (Figures 4a/5a) as (jct_seconds, fraction) pairs."""
        jcts = sorted(r.jct for r in self.job_records)
        if not jcts:
            return []
        if points is None:
            return [
                (jct, (index + 1) / len(jcts)) for index, jct in enumerate(jcts)
            ]
        out = []
        for p in points:
            count = sum(1 for j in jcts if j <= p)
            out.append((p, count / len(jcts)))
        return out

    def deadline_guarantee_ratio(self) -> float:
        """Fraction of jobs completing by their deadline (4c/5c)."""
        return _ratio([r.met_deadline for r in self.job_records])

    def average_waiting_time(self) -> float:
        """Mean accumulated job waiting time (4d/5d)."""
        return _mean([r.waiting_time for r in self.job_records])

    def average_accuracy(self) -> float:
        """Mean accuracy by the deadline (4e/5e)."""
        return _mean([r.accuracy_at_deadline for r in self.job_records])

    def accuracy_guarantee_ratio(self) -> float:
        """Fraction of jobs meeting their accuracy requirement (4f/5f)."""
        return _ratio([r.met_accuracy for r in self.job_records])

    def total_bandwidth_mb(self) -> float:
        """Total cross-server traffic incl. migrations in MB (4g/5g)."""
        return self.bandwidth_mb + self.migration_bandwidth_mb

    def average_overhead_ms(self) -> float:
        """Mean scheduler invocation cost in milliseconds (4h/5h)."""
        return _mean(self.scheduler_overhead_seconds) * 1000.0

    def makespan(self) -> float:
        """First arrival → last completion (Section 4.2.1)."""
        if self.first_arrival is None or self.last_completion is None:
            return 0.0
        return self.last_completion - self.first_arrival

    def urgent_deadline_ratio(self, urgency_threshold: int = 8) -> float:
        """Deadline guarantee ratio among urgent jobs (Figure 6)."""
        urgent = [r.met_deadline for r in self.job_records if r.urgency > urgency_threshold]
        return _ratio(urgent)

    def fraction_jct_below(self, seconds: float) -> float:
        """Fraction of jobs with JCT below a threshold (used in §4.2.1)."""
        if not self.job_records:
            return 0.0
        return sum(1 for r in self.job_records if r.jct < seconds) / len(self.job_records)

    def summary(self) -> dict[str, float]:
        """All headline aggregates in one dict (for tables and tests)."""
        return {
            "jobs": float(len(self.job_records)),
            "avg_jct_s": self.average_jct(),
            "makespan_s": self.makespan(),
            "deadline_ratio": self.deadline_guarantee_ratio(),
            "avg_wait_s": self.average_waiting_time(),
            "avg_accuracy": self.average_accuracy(),
            "accuracy_ratio": self.accuracy_guarantee_ratio(),
            "bandwidth_gb": self.total_bandwidth_mb() / 1024.0,
            "overhead_ms": self.average_overhead_ms(),
            "overload_occurrences": float(self.overload_occurrences),
            "migrations": float(self.num_migrations),
            "fault_events": float(self.fault_events),
            "tasks_killed": float(self.tasks_killed),
            "iterations_lost": float(self.iterations_lost),
        }


def _mean(values: Sequence[float]) -> float:
    values = list(values)
    return sum(values) / len(values) if values else 0.0


def _ratio(flags: Sequence[bool]) -> float:
    flags = list(flags)
    return sum(flags) / len(flags) if flags else 0.0
