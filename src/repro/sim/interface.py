"""The scheduler ↔ simulator contract.

Every scheduler — MLFS and all baselines — implements
:class:`Scheduler`.  At each scheduling round the engine hands the
scheduler a :class:`SchedulingContext` snapshot and receives a
:class:`SchedulerDecision`: task placements, migrations out of
overloaded servers, evictions back to the queue, and early job stops.
This mirrors the paper's action space, "the selection of tasks in
overloaded nodes to move out and the assigned node (either underloaded
node or queue) for each task" (Section 3.4).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.cluster.cluster import Cluster
from repro.workload.job import Job, Task

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.learncurve.accuracy import AccuracyPredictor
    from repro.learncurve.runtime import RuntimePredictor


@dataclass(frozen=True, slots=True)
class Placement:
    """Assign a queued task to a server (and optionally a specific GPU)."""

    task: Task
    server_id: int
    gpu_id: Optional[int] = None


@dataclass(frozen=True, slots=True)
class Migration:
    """Move a running task to a different server."""

    task: Task
    dst_server_id: int
    gpu_id: Optional[int] = None


@dataclass(frozen=True, slots=True)
class Eviction:
    """Preempt a running task back to the waiting queue."""

    task: Task


@dataclass(frozen=True, slots=True)
class JobStop:
    """Terminate a job early (MLF-C load control)."""

    job: Job
    reason: str = ""


@dataclass
class SchedulerDecision:
    """The full output of one scheduling round.

    The engine applies evictions, then migrations, then placements, then
    stops.  An empty decision is valid (nothing to do).
    """

    placements: list[Placement] = field(default_factory=list)
    migrations: list[Migration] = field(default_factory=list)
    evictions: list[Eviction] = field(default_factory=list)
    stops: list[JobStop] = field(default_factory=list)
    #: Priority-ordered dequeue declaration for the invariant sanitizer
    #: (:mod:`repro.check.sanitize`): the ``(job_id, task_id)`` pool in
    #: the order the scheduler considered it, plus the scores that
    #: ordering used.  Empty for schedulers without a priority queue.
    dequeue_order: list[tuple[str, str]] = field(default_factory=list)
    dequeue_scores: dict[str, float] = field(default_factory=dict)

    def is_empty(self) -> bool:
        """True when the decision contains no actions."""
        return not (self.placements or self.migrations or self.evictions or self.stops)

    def record_dequeue(self, ordered: list[Task], scores: dict[str, float]) -> None:
        """Declare the priority-ordered pool this decision dequeued from.

        Called by priority-queue schedulers (the MLF family) so the
        runtime sanitizer can assert priority-monotone dequeue order.
        """
        self.dequeue_order = [(t.job_id, t.task_id) for t in ordered]
        self.dequeue_scores = dict(scores)


@dataclass
class SchedulingContext:
    """Read-only snapshot handed to the scheduler each round.

    Attributes
    ----------
    now:
        Simulation time in seconds.
    cluster:
        The cluster (live object — schedulers must not mutate it).
    queue:
        Tasks waiting for placement, in engine arrival order; schedulers
        impose their own ordering (e.g. the MLF-H priority queue).
    active_jobs:
        All jobs that have arrived and not completed.
    overload_threshold:
        The per-resource threshold ``h_r``.
    system_overload_threshold:
        The cluster threshold ``h_s`` used by MLF-C.
    accuracy_predictor / runtime_predictor:
        The shared prediction services of Section 3.1.
    """

    now: float
    cluster: Cluster
    queue: list[Task]
    active_jobs: list[Job]
    overload_threshold: float
    system_overload_threshold: float
    accuracy_predictor: "AccuracyPredictor"
    runtime_predictor: "RuntimePredictor"

    def running_jobs(self) -> list[Job]:
        """Active jobs that currently have at least one placed task."""
        return [j for j in self.active_jobs if j.placed_tasks()]

    def system_overloaded(self) -> bool:
        """MLF-C's predicate: queued tasks exist or ``O_c > h_s``."""
        return self.cluster.is_overloaded(
            self.system_overload_threshold, queue_nonempty=bool(self.queue)
        )


class Scheduler(abc.ABC):
    """Base class for every scheduling policy."""

    #: Human-readable policy name used in benchmark tables.
    name: str = "scheduler"

    #: Declares that a no-op round is *provably* a no-op: when every
    #: active job is fully placed, the queue is empty, no server is
    #: overloaded, :meth:`can_park` agrees and no fault event can fire,
    #: this scheduler's decision is always empty *and* any clocked state
    #: it keeps can be advanced analytically via :meth:`accrue` with
    #: bit-identical results.  The event-driven engine
    #: (``EngineConfig(pass_policy="event")``) only skips scheduling
    #: passes for schedulers that set this; it reads the flag **once at
    #: engine construction** — toggling it mid-run has no effect (a
    #: pinned regression contract).  Load controllers (MLFS/MLF-C
    #: evaluate OptStop every round) must leave it False.
    event_parkable: bool = False

    @abc.abstractmethod
    def on_schedule(self, ctx: SchedulingContext) -> SchedulerDecision:
        """Produce the decision for one scheduling round."""

    def can_park(self, cluster: Cluster) -> bool:
        """Scheduler veto on parking the pass timer (optional override).

        Consulted by the engine *in addition to* its own park
        preconditions (empty queue, all jobs placed, no server over the
        engine's overload threshold, no armed fault).  Override when the
        policy acts on conditions the engine cannot see — e.g. Gandiva
        migrates off GPUs above its *own* per-device threshold, which a
        server-level check can miss.  Must be a pure read of ``cluster``.
        """
        return True

    def accrue(
        self,
        gap_seconds: float,
        *,
        skipped_passes: int,
        now: float,
        tick_seconds: float,
    ) -> None:
        """Advance clocked state across a parked gap (optional override).

        Called by the event-driven engine when it leaves the parked
        state, *before* the next scheduling pass runs:
        ``skipped_passes`` fixed-cadence passes (at times ``anchor + k *
        tick_seconds``, spanning ``gap_seconds = skipped_passes *
        tick_seconds``) were provably no-ops and did not execute.  An
        override must leave the scheduler in **bit-identical** state to
        having run those passes — see DESIGN.md §15.7 for the proof
        obligation and for which state may advance analytically (pass
        counters via :class:`repro.sim.clock.PassClock`; closed-form
        time integrals that fixed cadence never accumulates eagerly).
        State that is already a pure function of simulation time and of
        events that fire in both modes (arrivals, completions,
        iterations) needs no accrual — the default is a no-op.
        """

    def on_job_arrival(self, job: Job, now: float) -> None:
        """Hook: a job was submitted (optional override)."""

    def on_job_complete(self, job: Job, now: float) -> None:
        """Hook: a job finished (optional override)."""

    def on_iteration_complete(self, job: Job, now: float) -> None:
        """Hook: a job finished one iteration (optional override)."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name!r}>"
