"""Deterministic fault injection and recovery semantics.

See :mod:`repro.faults.plan` for the frozen scenario description and
:mod:`repro.faults.injector` for the runtime executor.
"""

from repro.faults.injector import FaultInjector
from repro.faults.plan import (
    FAULT_KINDS,
    PLAN_FORMAT,
    FaultEvent,
    FaultPlan,
    load_plan,
    save_plan,
)

__all__ = [
    "FAULT_KINDS",
    "PLAN_FORMAT",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "load_plan",
    "save_plan",
]
