"""Declarative fault plans — what fails, when, and how jobs recover.

Large shared GPU clusters lose servers and single GPUs routinely and
host stragglers chronically; MLFS's migration machinery (Sections 3.3.2
and 3.3.3) is exactly what a scheduler uses to recover from them.  A
:class:`FaultPlan` describes one deterministic failure scenario as an
explicit list of :class:`FaultEvent` entries scheduled at scheduler
rounds:

* ``server_crash`` / ``server_revive`` — whole-server loss and return;
* ``gpu_fail`` / ``gpu_revive`` — single-device loss and return;
* ``straggler_start`` / ``straggler_end`` — a server slows down by a
  multiplicative factor (new iterations touching it run slower).

Plans are *frozen* and **round-trip through JSON** exactly
(``to_json`` / ``from_json`` are inverses), so they ship inside
:class:`repro.exp.spec.RunSpec` documents, fold into spec digests (a
sweep over failure rates caches and resumes like any other sweep), and
can be stored next to results.  Seeded stochastic scenarios are drawn
**at construction time** by :meth:`FaultPlan.from_mtbf` — the draw is
part of building the plan, never part of running it, so the plan the
engine executes is always an explicit, reproducible event list.

``checkpoint_period`` carries the recovery semantics: jobs checkpoint
every that-many completed iterations, and a task killed by a fault
resumes its job from the last checkpoint (the iterations since it are
*lost work*, accounted in the run metrics).
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import dataclass, field
from typing import Any, Mapping, Optional

__all__ = [
    "FAULT_KINDS",
    "FaultEvent",
    "FaultPlan",
    "PLAN_FORMAT",
]

#: Version tag stamped into every serialized plan (and therefore into
#: every spec digest that embeds one).
PLAN_FORMAT = "repro.faults/1"

#: The recognised event kinds.
FAULT_KINDS = frozenset(
    {
        "server_crash",
        "server_revive",
        "gpu_fail",
        "gpu_revive",
        "straggler_start",
        "straggler_end",
    }
)

#: Kinds that address a single GPU (``gpu_id`` required).
_GPU_KINDS = frozenset({"gpu_fail", "gpu_revive"})


@dataclass(frozen=True, slots=True)
class FaultEvent:
    """One scheduled fault: *kind* hits *server* (and GPU) at *round*.

    ``round_index`` uses the engine's reported (1-based) round numbers
    — the same numbers :class:`~repro.sim.engine.RoundResult` and the
    telemetry ``round`` field carry.  An event at round ``r`` is
    applied during the fault phase at the start of round ``r``, before
    that round's scheduling pass.  ``slowdown`` is only meaningful for
    ``straggler_start`` (multiplier ≥ 1 applied to iteration durations
    of jobs touching the server).
    """

    round_index: int
    kind: str
    server_id: int
    gpu_id: Optional[int] = None
    slowdown: float = 1.0

    def __post_init__(self) -> None:
        if self.round_index < 0:
            raise ValueError(f"round_index must be >= 0, got {self.round_index}")
        if self.kind not in FAULT_KINDS:
            known = ", ".join(sorted(FAULT_KINDS))
            raise ValueError(f"unknown fault kind {self.kind!r}; choose from: {known}")
        if self.server_id < 0:
            raise ValueError(f"server_id must be >= 0, got {self.server_id}")
        if self.kind in _GPU_KINDS and self.gpu_id is None:
            raise ValueError(f"{self.kind} requires a gpu_id")
        if self.kind == "straggler_start" and self.slowdown < 1.0:
            raise ValueError(f"slowdown must be >= 1, got {self.slowdown}")

    def to_json(self) -> dict[str, Any]:
        """JSON-ready representation (exact inverse of ``from_json``)."""
        out: dict[str, Any] = {
            "round": self.round_index,
            "kind": self.kind,
            "server": self.server_id,
        }
        if self.gpu_id is not None:
            out["gpu"] = self.gpu_id
        if self.kind == "straggler_start":
            out["slowdown"] = self.slowdown
        return out

    @classmethod
    def from_json(cls, data: Mapping[str, Any]) -> "FaultEvent":
        """Inverse of :meth:`to_json`."""
        return cls(
            round_index=int(data["round"]),
            kind=str(data["kind"]),
            server_id=int(data["server"]),
            gpu_id=int(data["gpu"]) if data.get("gpu") is not None else None,
            slowdown=float(data.get("slowdown", 1.0)),
        )

    def sort_key(self) -> tuple[int, int, int, str]:
        """Deterministic application order within the plan."""
        return (
            self.round_index,
            self.server_id,
            -1 if self.gpu_id is None else self.gpu_id,
            self.kind,
        )


@dataclass(frozen=True)
class FaultPlan:
    """A frozen, serializable failure scenario.

    ``events`` are normalized to a tuple sorted by
    :meth:`FaultEvent.sort_key`, so two plans describing the same
    scenario in different orders are equal and share a digest.
    ``checkpoint_period`` (iterations between checkpoints, ≥ 1) sets the
    checkpoint-restart recovery semantics; 1 means every iteration is
    checkpointed and faults lose no completed work.
    """

    events: tuple[FaultEvent, ...] = ()
    checkpoint_period: int = 1

    def __post_init__(self) -> None:
        normalized = tuple(sorted(self.events, key=FaultEvent.sort_key))
        object.__setattr__(self, "events", normalized)
        if self.checkpoint_period < 1:
            raise ValueError(
                f"checkpoint_period must be >= 1, got {self.checkpoint_period}"
            )

    # -- queries -----------------------------------------------------------

    @property
    def is_empty(self) -> bool:
        """Whether the plan schedules no events at all."""
        return not self.events

    def events_at(self, round_index: int) -> tuple[FaultEvent, ...]:
        """The events scheduled for one round, in application order."""
        return tuple(e for e in self.events if e.round_index == round_index)

    def last_round(self) -> int:
        """Round of the latest scheduled event (``-1`` when empty)."""
        return max((e.round_index for e in self.events), default=-1)

    # -- serialization -----------------------------------------------------

    def to_json(self) -> dict[str, Any]:
        """JSON-ready representation (exact inverse of ``from_json``)."""
        return {
            "format": PLAN_FORMAT,
            "checkpoint_period": self.checkpoint_period,
            "events": [e.to_json() for e in self.events],
        }

    @classmethod
    def from_json(cls, data: Mapping[str, Any]) -> "FaultPlan":
        """Rebuild a plan from its JSON form."""
        fmt = data.get("format", PLAN_FORMAT)
        if fmt != PLAN_FORMAT:
            raise ValueError(f"unsupported plan format {fmt!r} (want {PLAN_FORMAT!r})")
        return cls(
            events=tuple(FaultEvent.from_json(e) for e in data.get("events", ())),
            checkpoint_period=int(data.get("checkpoint_period", 1)),
        )

    def digest(self) -> str:
        """SHA-256 of the canonical JSON form."""
        canonical = json.dumps(self.to_json(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    # -- seeded scenario generators ----------------------------------------

    @classmethod
    def from_mtbf(
        cls,
        num_servers: int,
        horizon_rounds: int,
        mtbf_rounds: float,
        seed: int = 0,
        mttr_rounds: float = 5.0,
        straggler_probability: float = 0.0,
        straggler_slowdown: float = 3.0,
        checkpoint_period: int = 1,
    ) -> "FaultPlan":
        """Draw a crash/revive scenario from seeded MTBF statistics.

        Each server independently alternates up/down phases: time to
        failure is exponential with mean ``mtbf_rounds``, repair time is
        exponential with mean ``mttr_rounds`` (at least one round).
        With probability ``straggler_probability`` a failure manifests
        as a straggler phase (slowdown, then recovery) instead of a
        crash.  All draws come from ``random.Random(seed)``, so the
        same arguments always yield the identical explicit plan.
        """
        if num_servers <= 0:
            raise ValueError(f"num_servers must be > 0, got {num_servers}")
        if mtbf_rounds <= 0:
            raise ValueError(f"mtbf_rounds must be > 0, got {mtbf_rounds}")
        rng = random.Random(seed)
        events: list[FaultEvent] = []
        for server_id in range(num_servers):
            clock = rng.expovariate(1.0 / mtbf_rounds)
            while clock < horizon_rounds:
                down = rng.expovariate(1.0 / mttr_rounds) if mttr_rounds > 0 else 1.0
                down_rounds = max(1, int(round(down)))
                fail_round = max(1, int(clock))  # rounds are 1-based
                back_round = fail_round + down_rounds
                straggle = rng.random() < straggler_probability
                if straggle:
                    events.append(
                        FaultEvent(
                            fail_round,
                            "straggler_start",
                            server_id,
                            slowdown=straggler_slowdown,
                        )
                    )
                    if back_round < horizon_rounds:
                        events.append(
                            FaultEvent(back_round, "straggler_end", server_id)
                        )
                else:
                    events.append(FaultEvent(fail_round, "server_crash", server_id))
                    if back_round < horizon_rounds:
                        events.append(
                            FaultEvent(back_round, "server_revive", server_id)
                        )
                clock = back_round + rng.expovariate(1.0 / mtbf_rounds)
        return cls(events=tuple(events), checkpoint_period=checkpoint_period)


def load_plan(path: Any) -> FaultPlan:
    """Read a :class:`FaultPlan` from a JSON file."""
    with open(path, "r", encoding="utf-8") as handle:
        return FaultPlan.from_json(json.load(handle))


def save_plan(plan: FaultPlan, path: Any) -> None:
    """Write a :class:`FaultPlan` to a JSON file."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(plan.to_json(), handle, indent=2)
        handle.write("\n")
