"""Runtime state of an executing :class:`~repro.faults.plan.FaultPlan`.

The :class:`FaultInjector` sits between a frozen plan and the
simulation engine's fault phase.  It answers "which events fire this
round?" (merging the plan's scheduled events with any runtime-injected
ones, in a deterministic order), tracks which servers are currently
straggling (the engine multiplies new iteration durations by
:meth:`FaultInjector.slowdown_for`), and keeps the fault counters.

The injector deliberately does **not** mutate the cluster — the engine
owns kill/re-enqueue/rollback so the recovery path is in one place.
Failed/revived flags live on :class:`repro.cluster.server.Server` and
:class:`repro.cluster.gpu.GPU` (and therefore inside service
snapshots); the injector carries only plan-cursor state and is itself
picklable, so a restored daemon resumes the scenario exactly where the
snapshot left it.
"""

from __future__ import annotations

from typing import Optional

from repro.faults.plan import FaultEvent, FaultPlan
from repro.workload.job import Job

__all__ = ["FaultInjector"]


class FaultInjector:
    """Executes a :class:`FaultPlan` round by round."""

    def __init__(self, plan: Optional[FaultPlan] = None) -> None:
        self.plan = plan or FaultPlan()
        #: Runtime-injected events (``faultctl``); drained at the next tick.
        self.pending: list[FaultEvent] = []
        #: server_id -> slowdown multiplier for active straggler phases.
        self.stragglers: dict[int, float] = {}
        self.counters: dict[str, int] = {
            "servers_failed": 0,
            "servers_revived": 0,
            "gpus_failed": 0,
            "gpus_revived": 0,
            "straggler_events": 0,
            "tasks_killed": 0,
            "iterations_lost": 0,
        }

    # -- event feed --------------------------------------------------------

    @property
    def is_idle(self) -> bool:
        """Whether the injector can never affect the run from here on.

        True only for an empty plan with no runtime injections and no
        straggler phase in flight — the engine skips the fault phase
        entirely, so carrying an idle injector is bit-identical to
        running without one.
        """
        return self.plan.is_empty and not self.pending and not self.stragglers

    def armed_after(self, round_index: int) -> bool:
        """Whether any fault activity can still occur past this round.

        The event-driven engine must not park its pass timer while this
        is True: plan events are keyed by (1-based) round index, so
        skipping passes would postpone them, and an active straggler
        phase or queued runtime event likewise needs passes to resolve.
        Once the plan's last round has fired and nothing is pending the
        injector can never act again and parking is safe.
        """
        if self.pending or self.stragglers:
            return True
        return any(event.round_index > round_index for event in self.plan.events)

    def take_events(self, round_index: int) -> tuple[FaultEvent, ...]:
        """Events to apply this round: scheduled ∪ runtime, sorted.

        Runtime-injected events are drained regardless of their nominal
        ``round_index`` (they fire at the first tick after injection);
        the merged batch is ordered by :meth:`FaultEvent.sort_key` so
        the application order never depends on injection timing.
        """
        scheduled = self.plan.events_at(round_index)
        if not self.pending:
            return scheduled
        runtime = tuple(self.pending)
        self.pending.clear()
        return tuple(sorted(scheduled + runtime, key=FaultEvent.sort_key))

    def inject(self, event: FaultEvent) -> None:
        """Queue a runtime fault (``faultctl``) for the next tick."""
        self.pending.append(event)

    # -- straggler bookkeeping --------------------------------------------

    def start_straggler(self, server_id: int, slowdown: float) -> None:
        self.stragglers[server_id] = slowdown

    def end_straggler(self, server_id: int) -> None:
        self.stragglers.pop(server_id, None)

    def slowdown_for(self, job: Job) -> float:
        """Largest active straggler multiplier among the job's servers."""
        if not self.stragglers:
            return 1.0
        worst = 1.0
        for task in job.tasks:
            if task.server_id is None:
                continue
            factor = self.stragglers.get(task.server_id)
            if factor is not None and factor > worst:
                worst = factor
        return worst

    # -- introspection -----------------------------------------------------

    def state(self) -> dict[str, object]:
        """JSON-ready status (``faultctl status`` / telemetry)."""
        return {
            "plan_events": len(self.plan.events),
            "checkpoint_period": self.plan.checkpoint_period,
            "pending": [e.to_json() for e in self.pending],
            "stragglers": {str(k): v for k, v in sorted(self.stragglers.items())},
            "counters": dict(self.counters),
        }

    def digest_state(self) -> tuple[object, ...]:
        """Deterministic tuple folded into the engine state digest."""
        return (
            self.plan.digest(),
            tuple(tuple(sorted(e.to_json().items())) for e in self.pending),
            tuple(sorted(self.stragglers.items())),
            tuple(sorted(self.counters.items())),
        )
