"""The scheduler registry: display name → zero-argument factory.

Shared by the CLI and the service daemon (which cannot import
:mod:`repro.cli` without creating a cycle).  Names match the labels the
paper's figures use.
"""

from __future__ import annotations

from typing import Callable

from repro.baselines import (
    FIFOScheduler,
    FairScheduler,
    GandivaScheduler,
    GrapheneScheduler,
    HyperSchedScheduler,
    RLScheduler,
    SLAQScheduler,
    TiresiasScheduler,
)
from repro.core import make_mlf_h, make_mlf_rl, make_mlfs
from repro.sim.interface import Scheduler

#: Scheduler name → zero-argument factory.
SCHEDULER_FACTORIES: dict[str, Callable[[], Scheduler]] = {
    "MLFS": make_mlfs,
    "MLF-RL": make_mlf_rl,
    "MLF-H": make_mlf_h,
    "FIFO": FIFOScheduler,
    "TensorFlow": FairScheduler,
    "SLAQ": SLAQScheduler,
    "Tiresias": TiresiasScheduler,
    "Gandiva": GandivaScheduler,
    "Graphene": GrapheneScheduler,
    "HyperSched": HyperSchedScheduler,
    "RL": RLScheduler,
}


def scheduler_by_name(name: str) -> Scheduler:
    """Instantiate a scheduler by its display name."""
    try:
        return SCHEDULER_FACTORIES[name]()
    except KeyError:
        known = ", ".join(sorted(SCHEDULER_FACTORIES))
        raise SystemExit(f"unknown scheduler {name!r}; choose from: {known}")
