"""The scheduler registry: display name → zero-argument factory.

Shared by the CLI and the service daemon (which cannot import
:mod:`repro.cli` without creating a cycle).  Names match the labels the
paper's figures use.
"""

from __future__ import annotations

from typing import Callable

from repro.baselines import (
    FIFOScheduler,
    FairScheduler,
    GandivaScheduler,
    GrapheneScheduler,
    HyperSchedScheduler,
    RLScheduler,
    SLAQScheduler,
    TiresiasScheduler,
)
from repro.core import make_mlf_h, make_mlf_rl, make_mlfs
from repro.sim.interface import Scheduler

#: Scheduler name → zero-argument factory.
SCHEDULER_FACTORIES: dict[str, Callable[[], Scheduler]] = {
    "MLFS": make_mlfs,
    "MLF-RL": make_mlf_rl,
    "MLF-H": make_mlf_h,
    "FIFO": FIFOScheduler,
    "TensorFlow": FairScheduler,
    "SLAQ": SLAQScheduler,
    "Tiresias": TiresiasScheduler,
    "Gandiva": GandivaScheduler,
    "Graphene": GrapheneScheduler,
    "HyperSched": HyperSchedScheduler,
    "RL": RLScheduler,
}


#: Members of the MLF family that take an :class:`MLFSConfig`.
_MLF_FAMILY = frozenset({"MLFS", "MLF-RL", "MLF-H"})


def scheduler_by_name(
    name: str, rl_switch_decisions: int | None = None
) -> Scheduler:
    """Instantiate a scheduler by its display name.

    ``rl_switch_decisions`` overrides the MLF family's heuristic→RL
    switch threshold (ignored for the baselines); the service daemon
    exposes it so short online runs can reach the RL phase.
    """
    factory = SCHEDULER_FACTORIES.get(name)
    if factory is None:
        known = ", ".join(sorted(SCHEDULER_FACTORIES))
        raise SystemExit(f"unknown scheduler {name!r}; choose from: {known}")
    if rl_switch_decisions is not None and name in _MLF_FAMILY:
        from repro.core.config import MLFSConfig

        config = MLFSConfig(
            enable_load_control=(name == "MLFS"),
            rl_switch_decisions=rl_switch_decisions,
        )
        return factory(config=config)
    return factory()
