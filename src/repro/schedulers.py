"""The scheduler registry: display name → constructor.

Shared by the CLI, the service daemon and the experiment engine (which
cannot import :mod:`repro.cli` without creating a cycle).  Names match
the labels the paper's figures use.

:func:`build_scheduler` is the single construction path — it replaces
the per-caller wiring that used to be duplicated across ``cli.py``,
``benchmarks/harness.py`` and the examples: MLF-family entries take an
:class:`~repro.core.config.MLFSConfig` (or a JSON-style override
mapping, as carried by :class:`repro.exp.spec.SchedulerSpec`) plus an
optional pretrained scoring policy; baselines take neither and reject
stray configuration loudly instead of silently ignoring a typo.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping, Optional, Union

from repro.baselines import (
    FIFOScheduler,
    FairScheduler,
    GandivaScheduler,
    GrapheneScheduler,
    HyperSchedScheduler,
    RLScheduler,
    SLAQScheduler,
    TiresiasScheduler,
)
from repro.core import make_mlf_h, make_mlf_rl, make_mlfs
from repro.core.config import MLFSConfig, PriorityWeights, RewardWeights
from repro.rl.policy import ScoringPolicy
from repro.sim.interface import Scheduler

__all__ = [
    "SCHEDULER_FACTORIES",
    "build_scheduler",
    "mlfs_config_from_mapping",
    "scheduler_by_name",
]

#: Scheduler name → zero-argument factory (display/legend order is
#: decided by callers; this is the full roster).
SCHEDULER_FACTORIES: dict[str, Callable[[], Scheduler]] = {
    "MLFS": make_mlfs,
    "MLF-RL": make_mlf_rl,
    "MLF-H": make_mlf_h,
    "FIFO": FIFOScheduler,
    "TensorFlow": FairScheduler,
    "SLAQ": SLAQScheduler,
    "Tiresias": TiresiasScheduler,
    "Gandiva": GandivaScheduler,
    "Graphene": GrapheneScheduler,
    "HyperSched": HyperSchedScheduler,
    "RL": RLScheduler,
}


#: Members of the MLF family that take an :class:`MLFSConfig`.
_MLF_FAMILY = frozenset({"MLFS", "MLF-RL", "MLF-H"})

#: Baselines that accept a pretrained scoring policy.
_POLICY_CAPABLE = _MLF_FAMILY | {"RL"}

ConfigLike = Union[MLFSConfig, Mapping[str, Any], None]


def mlfs_config_from_mapping(config: ConfigLike) -> MLFSConfig:
    """Build an :class:`MLFSConfig` from a JSON-style override mapping.

    Scalar keys map straight onto :class:`MLFSConfig` fields; the
    nested ``priority`` / ``reward`` mappings onto
    :class:`PriorityWeights` / :class:`RewardWeights`.  Unknown keys
    raise (specs must not silently drop typos).  An existing
    :class:`MLFSConfig` passes through; ``None`` yields the defaults.
    """
    if config is None:
        return MLFSConfig()
    if isinstance(config, MLFSConfig):
        return config
    kwargs: dict[str, Any] = dict(config)
    try:
        if "priority" in kwargs:
            kwargs["priority"] = PriorityWeights(**dict(kwargs["priority"]))
        if "reward" in kwargs:
            kwargs["reward"] = RewardWeights(**dict(kwargs["reward"]))
        built = MLFSConfig(**kwargs)
    except TypeError as exc:
        raise ValueError(f"invalid MLFS config overrides: {exc}") from None
    built.validate()
    return built


def build_scheduler(
    name: str,
    config: ConfigLike = None,
    policy: Optional[ScoringPolicy] = None,
) -> Scheduler:
    """Instantiate a scheduler from the registry.

    Parameters
    ----------
    name:
        A :data:`SCHEDULER_FACTORIES` key (paper legend name).
    config:
        MLF family only: an :class:`MLFSConfig` or an override mapping
        (see :func:`mlfs_config_from_mapping`).  Baselines raise on any
        non-empty config.
    policy:
        Optional pretrained scoring policy for MLF-RL, MLFS and the RL
        baseline; rejected elsewhere.
    """
    if name not in SCHEDULER_FACTORIES:
        known = ", ".join(sorted(SCHEDULER_FACTORIES))
        raise ValueError(f"unknown scheduler {name!r}; choose from: {known}")
    if policy is not None and name not in _POLICY_CAPABLE:
        raise ValueError(f"scheduler {name!r} does not take a pretrained policy")
    if name in _MLF_FAMILY:
        mlfs_config: Optional[MLFSConfig] = None
        if config is not None:
            if not isinstance(config, MLFSConfig) and "enable_load_control" not in config:
                # Preserve each variant's factory default (only full
                # MLFS runs the MLF-C load controller) when the
                # override mapping does not say otherwise.
                config = {**dict(config), "enable_load_control": name == "MLFS"}
            mlfs_config = mlfs_config_from_mapping(config)
        if name == "MLFS":
            return make_mlfs(policy, mlfs_config)
        if name == "MLF-RL":
            return make_mlf_rl(policy, mlfs_config)
        return make_mlf_h(mlfs_config)
    if config:
        raise ValueError(f"scheduler {name!r} takes no config overrides")
    if name == "RL":
        return RLScheduler(policy=policy)
    return SCHEDULER_FACTORIES[name]()


def scheduler_by_name(
    name: str, rl_switch_decisions: int | None = None
) -> Scheduler:
    """CLI/service wrapper over :func:`build_scheduler`.

    ``rl_switch_decisions`` overrides the MLF family's heuristic→RL
    switch threshold (ignored for the baselines); the service daemon
    exposes it so short online runs can reach the RL phase.  Unknown
    names exit with a one-line message instead of a traceback.
    """
    config: ConfigLike = None
    if rl_switch_decisions is not None and name in _MLF_FAMILY:
        config = {"rl_switch_decisions": rl_switch_decisions}
    try:
        return build_scheduler(name, config)
    except ValueError as exc:
        raise SystemExit(str(exc)) from None
