"""Softmax scoring policy over variable-size candidate sets.

Scheduling actions are "pick one of these candidates" decisions — e.g.
*which server should host this task* — where the candidate count varies
per decision.  The policy scores each candidate's feature vector with a
shared MLP and normalizes with a softmax, the standard pointer-style
construction for RL schedulers (cf. DeepRM/Decima [35, 37] and the
device-placement RL of [39]).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.rl.nn import MLP, softmax
from repro.rl.optim import Adam, clip_gradients


@dataclass
class CandidateChoice:
    """Result of one policy decision."""

    index: int
    probability: float
    log_prob: float
    scores: np.ndarray


@dataclass
class ScoringPolicy:
    """An MLP that scores candidates; softmax over scores is the policy.

    Parameters
    ----------
    feature_size:
        Dimension of each candidate's feature vector.
    hidden_sizes:
        Hidden-layer widths of the scoring MLP.
    temperature:
        Softmax temperature; lower = greedier.
    seed:
        Seeds both the network init and the sampling RNG.
    """

    feature_size: int
    hidden_sizes: tuple[int, ...] = (64, 32)
    temperature: float = 1.0
    seed: int = 0
    model: MLP = field(init=False)
    _rng: random.Random = field(init=False, repr=False)

    def __post_init__(self) -> None:
        sizes = [self.feature_size, *self.hidden_sizes, 1]
        self.model = MLP(sizes, seed=self.seed)
        self._rng = random.Random(self.seed + 1)

    # -- inference ----------------------------------------------------------

    def scores(self, features: np.ndarray) -> np.ndarray:
        """Raw scores, one per candidate row."""
        features = np.atleast_2d(np.asarray(features, dtype=np.float64))
        if features.shape[1] != self.feature_size:
            raise ValueError(
                f"expected feature size {self.feature_size}, got {features.shape[1]}"
            )
        return self.model.predict(features)[:, 0]

    def probabilities(self, features: np.ndarray) -> np.ndarray:
        """Softmax distribution over candidates."""
        raw = self.scores(features) / max(self.temperature, 1e-6)
        return softmax(raw[None, :])[0]

    def choose(self, features: np.ndarray, greedy: bool = True) -> CandidateChoice:
        """Pick a candidate — argmax when ``greedy``, else sampled."""
        probs = self.probabilities(features)
        if greedy:
            index = int(np.argmax(probs))
        else:
            r = self._rng.random()
            cumulative = 0.0
            index = len(probs) - 1
            for i, p in enumerate(probs):
                cumulative += p
                if r <= cumulative:
                    index = i
                    break
        p = float(probs[index])
        return CandidateChoice(
            index=index,
            probability=p,
            log_prob=math.log(max(p, 1e-12)),
            scores=self.scores(features),
        )

    # -- training ----------------------------------------------------------

    def policy_gradient_step(
        self,
        features: np.ndarray,
        chosen_index: int,
        advantage: float,
        optimizer: Adam,
        max_grad_norm: float = 5.0,
        entropy_bonus: float = 0.0,
    ) -> float:
        """One REINFORCE update on a single decision.

        Maximizes ``advantage * log π(chosen)`` (+ optional entropy).
        Returns the log-probability of the chosen candidate before the
        update (useful for diagnostics).
        """
        features = np.atleast_2d(np.asarray(features, dtype=np.float64))
        raw = self.model.forward(features)[:, 0] / max(self.temperature, 1e-6)
        probs = softmax(raw[None, :])[0]
        log_prob = math.log(max(float(probs[chosen_index]), 1e-12))

        # d(-advantage * log p_c)/d raw_i = -advantage * (1[i==c] - p_i)
        grad_raw = probs.copy()
        grad_raw[chosen_index] -= 1.0
        grad_raw *= advantage
        if entropy_bonus > 0.0:
            # d(-H)/d raw = p * (log p + H)
            entropy = -float(np.sum(probs * np.log(np.maximum(probs, 1e-12))))
            grad_raw += entropy_bonus * probs * (
                np.log(np.maximum(probs, 1e-12)) + entropy
            )
        grad_out = (grad_raw / max(self.temperature, 1e-6))[:, None]
        grads = clip_gradients(self.model.backward(grad_out), max_grad_norm)
        optimizer.step(self.model, grads)
        return log_prob

    def imitation_step(
        self,
        features: np.ndarray,
        expert_index: int,
        optimizer: Adam,
        max_grad_norm: float = 5.0,
    ) -> float:
        """One cross-entropy update toward an expert's choice.

        Used to bootstrap MLF-RL from MLF-H decisions ("MLFS initially
        runs MLF-H ... and uses the data to train a deep RL model").
        Returns the cross-entropy loss before the update.
        """
        features = np.atleast_2d(np.asarray(features, dtype=np.float64))
        raw = self.model.forward(features)[:, 0] / max(self.temperature, 1e-6)
        probs = softmax(raw[None, :])[0]
        loss = -math.log(max(float(probs[expert_index]), 1e-12))
        grad_raw = probs.copy()
        grad_raw[expert_index] -= 1.0
        grad_out = (grad_raw / max(self.temperature, 1e-6))[:, None]
        grads = clip_gradients(self.model.backward(grad_out), max_grad_norm)
        optimizer.step(self.model, grads)
        return loss

    def expert_agreement(
        self, dataset: Sequence[tuple[np.ndarray, int]], limit: Optional[int] = None
    ) -> float:
        """Fraction of decisions where argmax matches the expert."""
        if not dataset:
            return 0.0
        rows = dataset[:limit] if limit else dataset
        hits = 0
        for features, expert_index in rows:
            if int(np.argmax(self.scores(features))) == expert_index:
                hits += 1
        return hits / len(rows)
