"""Training loops: imitation pretraining and REINFORCE fine-tuning.

Implements the paper's two-phase recipe (Section 3.4): MLFS "initially
runs MLF-H for a certain time period and uses the data to train a deep
RL model" (imitation over recorded heuristic decisions), then the policy
is refined with policy-gradient updates on the Eq. 7 reward, "utilizing
gradient-descent to update θ" per [51].
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.rl.optim import Adam
from repro.rl.policy import ScoringPolicy
from repro.rl.replay import ImitationBuffer, RewardBaseline, Trajectory


@dataclass
class ImitationTrainer:
    """Supervised pretraining from an expert-decision buffer."""

    policy: ScoringPolicy
    learning_rate: float = 1e-3
    optimizer: Adam = field(init=False)

    def __post_init__(self) -> None:
        self.optimizer = Adam(learning_rate=self.learning_rate)

    def train(
        self,
        buffer: ImitationBuffer,
        epochs: int = 3,
        batch_per_epoch: Optional[int] = None,
        target_agreement: float = 0.95,
    ) -> dict[str, float]:
        """Fit the policy to the buffer.

        Stops early once argmax agreement with the expert reaches
        ``target_agreement`` — the "well trained (i.e., converged)"
        switch condition.  Returns training statistics.
        """
        if len(buffer) == 0:
            return {"epochs": 0.0, "loss": 0.0, "agreement": 0.0}
        total_loss = 0.0
        steps = 0
        epochs_run = 0
        for _epoch in range(epochs):
            epochs_run += 1
            batch = buffer.sample(batch_per_epoch or len(buffer))
            for decision in batch:
                total_loss += self.policy.imitation_step(
                    decision.features, decision.chosen_index, self.optimizer
                )
                steps += 1
            agreement = self.policy.expert_agreement(buffer.pairs(), limit=500)
            if agreement >= target_agreement:
                break
        return {
            "epochs": float(epochs_run),
            "loss": total_loss / max(steps, 1),
            "agreement": self.policy.expert_agreement(buffer.pairs(), limit=500),
        }


@dataclass
class ReinforceTrainer:
    """Episodic REINFORCE with a moving-average baseline.

    ``discount`` is the paper's ``η`` (default 0.95, Section 4.1).
    """

    policy: ScoringPolicy
    discount: float = 0.95
    learning_rate: float = 5e-4
    entropy_bonus: float = 1e-3
    optimizer: Adam = field(init=False)
    baseline: RewardBaseline = field(init=False)

    def __post_init__(self) -> None:
        self.optimizer = Adam(learning_rate=self.learning_rate)
        self.baseline = RewardBaseline(decay=self.discount)

    def train_on_trajectory(self, trajectory: Trajectory) -> dict[str, float]:
        """Apply policy-gradient updates for one recorded episode."""
        if len(trajectory) == 0:
            return {"steps": 0.0, "mean_return": 0.0}
        returns = trajectory.discounted_returns(self.discount)
        mean_return = sum(returns) / len(returns)
        for decision, g in zip(trajectory.decisions, returns):
            advantage = self.baseline.update(g)
            self.policy.policy_gradient_step(
                decision.features,
                decision.chosen_index,
                advantage,
                self.optimizer,
                entropy_bonus=self.entropy_bonus,
            )
        return {"steps": float(len(trajectory)), "mean_return": mean_return}

    def train_episodes(
        self,
        run_episode: Callable[[ScoringPolicy], Trajectory],
        episodes: int = 10,
    ) -> list[dict[str, float]]:
        """Run ``episodes`` environment episodes, updating after each.

        ``run_episode`` executes the environment with the current policy
        (sampling actions) and returns the trajectory.
        """
        history = []
        for _ in range(episodes):
            trajectory = run_episode(self.policy)
            history.append(self.train_on_trajectory(trajectory))
        return history
