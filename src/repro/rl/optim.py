"""Optimizers for the NumPy networks: SGD and Adam."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.rl.nn import MLP


@dataclass
class SGD:
    """Plain stochastic gradient descent with optional momentum."""

    learning_rate: float = 1e-2
    momentum: float = 0.0
    _velocity: list[np.ndarray] = field(default_factory=list, repr=False)

    def step(self, model: MLP, grads: Sequence[tuple[np.ndarray, np.ndarray]]) -> None:
        """Apply one update given grads from :meth:`MLP.backward`."""
        flat_grads = _flatten(grads)
        params = model.get_parameters()
        if not self._velocity:
            self._velocity = [np.zeros_like(p) for p in params]
        for p, g, v in zip(params, flat_grads, self._velocity):
            v *= self.momentum
            v -= self.learning_rate * g
            p += v


@dataclass
class Adam:
    """Adam (Kingma & Ba) — the default policy-network optimizer."""

    learning_rate: float = 1e-3
    beta1: float = 0.9
    beta2: float = 0.999
    epsilon: float = 1e-8
    _m: list[np.ndarray] = field(default_factory=list, repr=False)
    _v: list[np.ndarray] = field(default_factory=list, repr=False)
    _t: int = 0

    def step(self, model: MLP, grads: Sequence[tuple[np.ndarray, np.ndarray]]) -> None:
        """Apply one Adam update given grads from :meth:`MLP.backward`."""
        flat_grads = _flatten(grads)
        params = model.get_parameters()
        if not self._m:
            self._m = [np.zeros_like(p) for p in params]
            self._v = [np.zeros_like(p) for p in params]
        self._t += 1
        bias1 = 1.0 - self.beta1**self._t
        bias2 = 1.0 - self.beta2**self._t
        for p, g, m, v in zip(params, flat_grads, self._m, self._v):
            m *= self.beta1
            m += (1.0 - self.beta1) * g
            v *= self.beta2
            v += (1.0 - self.beta2) * (g * g)
            m_hat = m / bias1
            v_hat = v / bias2
            p -= self.learning_rate * m_hat / (np.sqrt(v_hat) + self.epsilon)


def _flatten(
    grads: Sequence[tuple[np.ndarray, np.ndarray]]
) -> list[np.ndarray]:
    """Interleave (dW, db) pairs to match ``MLP.get_parameters`` order."""
    flat: list[np.ndarray] = []
    for dw, db in grads:
        flat.extend((dw, db))
    return flat


def clip_gradients(
    grads: Sequence[tuple[np.ndarray, np.ndarray]], max_norm: float
) -> list[tuple[np.ndarray, np.ndarray]]:
    """Scale gradients so their global L2 norm is at most ``max_norm``."""
    total = 0.0
    for dw, db in grads:
        total += float(np.sum(dw * dw)) + float(np.sum(db * db))
    norm = np.sqrt(total)
    if norm <= max_norm or norm == 0.0:
        return list(grads)
    scale = max_norm / norm
    return [(dw * scale, db * scale) for dw, db in grads]
