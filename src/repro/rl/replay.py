"""Experience storage: imitation datasets and reward trajectories."""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterator, Optional

import numpy as np


@dataclass(frozen=True)
class Decision:
    """One recorded scheduling decision.

    ``features`` is the (candidates × feature_size) matrix the policy
    saw; ``chosen_index`` the candidate taken (by the expert heuristic
    during imitation, or by the policy during RL).
    """

    features: np.ndarray
    chosen_index: int
    log_prob: float = 0.0


@dataclass
class ImitationBuffer:
    """Dataset of expert decisions for supervised pretraining.

    Bounded: once ``capacity`` is reached, new samples overwrite old
    ones uniformly at random (reservoir-style), keeping the dataset
    representative of the whole heuristic run.
    """

    capacity: int = 50_000
    seed: int = 0
    _items: list[Decision] = field(default_factory=list, repr=False)
    _seen: int = 0
    _rng: random.Random = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._rng = random.Random(self.seed)

    def add(self, decision: Decision) -> None:
        """Insert one expert decision."""
        self._seen += 1
        if len(self._items) < self.capacity:
            self._items.append(decision)
        else:
            slot = self._rng.randrange(self._seen)
            if slot < self.capacity:
                self._items[slot] = decision

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[Decision]:
        return iter(self._items)

    def sample(self, count: int) -> list[Decision]:
        """Uniform sample without replacement (up to buffer size)."""
        count = min(count, len(self._items))
        return self._rng.sample(self._items, count)

    def pairs(self) -> list[tuple[np.ndarray, int]]:
        """(features, expert_index) view for agreement metrics."""
        return [(d.features, d.chosen_index) for d in self._items]


@dataclass
class Trajectory:
    """One episode of decisions with per-step rewards."""

    decisions: list[Decision] = field(default_factory=list)
    rewards: list[float] = field(default_factory=list)

    def add_step(self, decision: Decision, reward: float) -> None:
        """Append one (decision, reward) step."""
        self.decisions.append(decision)
        self.rewards.append(reward)

    def __len__(self) -> int:
        return len(self.decisions)

    def discounted_returns(self, discount: float) -> list[float]:
        """Per-step discounted return ``G_t = Σ η^k r_{t+k}`` (Section 3.4)."""
        returns: list[float] = [0.0] * len(self.rewards)
        running = 0.0
        for t in range(len(self.rewards) - 1, -1, -1):
            running = self.rewards[t] + discount * running
            returns[t] = running
        return returns


@dataclass
class RewardBaseline:
    """Exponential-moving-average baseline for variance reduction."""

    decay: float = 0.95
    _value: Optional[float] = None

    @property
    def value(self) -> float:
        """Current baseline (0 before any update)."""
        return self._value if self._value is not None else 0.0

    def update(self, sample: float) -> float:
        """Fold in a new return; returns the advantage vs the old baseline."""
        advantage = sample - self.value
        if self._value is None:
            self._value = sample
        else:
            self._value = self.decay * self._value + (1.0 - self.decay) * sample
        return advantage
