"""NumPy RL substrate: MLP, optimizers, scoring policy, REINFORCE."""

from repro.rl.nn import MLP, relu, relu_grad, softmax
from repro.rl.optim import SGD, Adam, clip_gradients
from repro.rl.policy import CandidateChoice, ScoringPolicy
from repro.rl.reinforce import ImitationTrainer, ReinforceTrainer
from repro.rl.replay import Decision, ImitationBuffer, RewardBaseline, Trajectory

__all__ = [
    "Adam",
    "CandidateChoice",
    "Decision",
    "ImitationBuffer",
    "ImitationTrainer",
    "MLP",
    "ReinforceTrainer",
    "RewardBaseline",
    "SGD",
    "ScoringPolicy",
    "Trajectory",
    "clip_gradients",
    "relu",
    "relu_grad",
    "softmax",
]
