"""A minimal NumPy multilayer perceptron with manual backprop.

The paper's MLF-RL "uses DNN to serve as the agent" (Section 3.4); a
pure-NumPy MLP is sufficient at simulator scale and keeps the library
dependency-free.  The network maps a feature vector to a scalar score
(or a logits vector); gradients flow through :meth:`MLP.backward`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np


def relu(x: np.ndarray) -> np.ndarray:
    """Rectified linear unit."""
    return np.maximum(x, 0.0)


def relu_grad(x: np.ndarray) -> np.ndarray:
    """Derivative of ReLU w.r.t. its input."""
    return (x > 0.0).astype(x.dtype)


def softmax(logits: np.ndarray) -> np.ndarray:
    """Numerically stable softmax over the last axis."""
    shifted = logits - np.max(logits, axis=-1, keepdims=True)
    exp = np.exp(shifted)
    return exp / np.sum(exp, axis=-1, keepdims=True)


@dataclass
class MLP:
    """A fully-connected network with ReLU hidden layers.

    Parameters
    ----------
    layer_sizes:
        ``[input, hidden..., output]`` — at least two entries.
    seed:
        Seed for He-initialized weights.
    """

    layer_sizes: Sequence[int]
    seed: int = 0
    weights: list[np.ndarray] = field(default_factory=list)
    biases: list[np.ndarray] = field(default_factory=list)
    _cache: list[tuple[np.ndarray, np.ndarray]] = field(
        default_factory=list, repr=False
    )

    def __post_init__(self) -> None:
        if len(self.layer_sizes) < 2:
            raise ValueError("layer_sizes needs at least input and output sizes")
        if not self.weights:
            rng = np.random.default_rng(self.seed)
            for fan_in, fan_out in zip(self.layer_sizes, self.layer_sizes[1:]):
                scale = np.sqrt(2.0 / fan_in)
                self.weights.append(
                    rng.normal(0.0, scale, size=(fan_in, fan_out)).astype(np.float64)
                )
                self.biases.append(np.zeros(fan_out, dtype=np.float64))

    @property
    def input_size(self) -> int:
        """Expected feature dimension."""
        return int(self.layer_sizes[0])

    @property
    def output_size(self) -> int:
        """Output dimension."""
        return int(self.layer_sizes[-1])

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Forward pass; caches activations for :meth:`backward`.

        ``x`` has shape ``(batch, input_size)``; returns
        ``(batch, output_size)``.
        """
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        self._cache = []
        h = x
        last = len(self.weights) - 1
        for i, (w, b) in enumerate(zip(self.weights, self.biases)):
            z = h @ w + b
            self._cache.append((h, z))
            h = z if i == last else relu(z)
        return h

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Forward pass without touching the gradient cache."""
        h = np.atleast_2d(np.asarray(x, dtype=np.float64))
        last = len(self.weights) - 1
        for i, (w, b) in enumerate(zip(self.weights, self.biases)):
            z = h @ w + b
            h = z if i == last else relu(z)
        return h

    def backward(self, grad_out: np.ndarray) -> list[tuple[np.ndarray, np.ndarray]]:
        """Backpropagate ``d loss / d output``; returns per-layer grads.

        Must follow a :meth:`forward` call.  Returns
        ``[(dW_0, db_0), ...]`` in layer order.
        """
        if not self._cache:
            raise RuntimeError("backward() called before forward()")
        grads: list[tuple[np.ndarray, np.ndarray]] = [None] * len(self.weights)  # type: ignore[list-item]
        grad = np.atleast_2d(np.asarray(grad_out, dtype=np.float64))
        last = len(self.weights) - 1
        for i in range(last, -1, -1):
            inp, z = self._cache[i]
            if i != last:
                grad = grad * relu_grad(z)
            grads[i] = (inp.T @ grad, grad.sum(axis=0))
            if i > 0:
                grad = grad @ self.weights[i].T
        return grads

    # -- (de)serialization --------------------------------------------------

    def get_parameters(self) -> list[np.ndarray]:
        """Flat list of parameter arrays (weights then bias per layer)."""
        params: list[np.ndarray] = []
        for w, b in zip(self.weights, self.biases):
            params.extend((w, b))
        return params

    def state_dict(self) -> dict[str, np.ndarray]:
        """Serializable parameter snapshot."""
        state: dict[str, np.ndarray] = {}
        for i, (w, b) in enumerate(zip(self.weights, self.biases)):
            state[f"w{i}"] = w.copy()
            state[f"b{i}"] = b.copy()
        return state

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Restore parameters saved by :meth:`state_dict`."""
        for i in range(len(self.weights)):
            self.weights[i] = np.asarray(state[f"w{i}"], dtype=np.float64).copy()
            self.biases[i] = np.asarray(state[f"b{i}"], dtype=np.float64).copy()
