"""MLF-H: ML-feature-based heuristic task scheduling (Section 3.3).

Each scheduling round:

1. compute Eq. 6 priorities for every task of every active job;
2. if migration is enabled, pick migration tasks out of each overloaded
   server (ideal-virtual-task rule, ``p_s``-restricted when GPUs are
   hot) — these are *virtually* queued;
3. order queued tasks and migration candidates by priority (descending)
   and assign each to the underloaded server closest to the ideal
   virtual host, onto its least-loaded GPU;
4. migration candidates that find a host move directly
   (``Migration``); candidates that don't are evicted to the real queue;
   queued tasks that don't fit simply wait.

An optional :class:`DecisionRecorder` captures every host choice with
its candidate feature matrix — the training data MLF-RL imitates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Protocol

import numpy as np

from repro.core.config import MLFSConfig
from repro.core.overload import MigrationSelector
from repro.obs.observer import publish_priorities as _publish_priorities
from repro.obs.observer import span as _span
from repro.core.placement import PlacementEngine, TaskCommIndex
from repro.core.priority import PriorityCalculator
from repro.core.state import StateFeaturizer
from repro.rl.replay import Decision, ImitationBuffer
from repro.sim.interface import (
    Eviction,
    Migration,
    Placement,
    Scheduler,
    SchedulerDecision,
    SchedulingContext,
)
from repro.sim.shadow import ShadowCluster
from repro.workload.job import Job, Task


def order_pool(pool: list[Task], task_scores: dict[str, float]) -> list[Task]:
    """Order a scheduling pool job-grouped.

    Jobs are ranked by their best (boosted) task score and a job's tasks
    stay contiguous, ordered by their own scores.  Grouping matters: a
    job iterates only once *fully* placed, so interleaving tasks of many
    jobs within one round fragments the cluster into partially-placed
    jobs that hold resources without progressing.
    """
    job_best: dict[str, float] = {}
    for task in pool:
        score = task_scores.get(task.task_id, 0.0)
        if score > job_best.get(task.job_id, float("-inf")):
            job_best[task.job_id] = score
    return sorted(
        pool,
        key=lambda t: (
            -job_best[t.job_id],
            t.job_id,
            -task_scores.get(t.task_id, 0.0),
            t.task_id,
        ),
    )


def completion_boosts(jobs: list[Job]) -> dict[str, float]:
    """Priority multiplier favouring tasks of partially-placed jobs.

    A job iterates only when *all* its tasks hold resources; placing one
    more task of a 90%-placed job unlocks real progress, whereas seeding
    yet another job fragments the cluster.  The boost scales with the
    placed fraction (up to 3×), implementing the paper's rationale that
    a task's "completion enables more other tasks to start running".
    """
    boosts: dict[str, float] = {}
    for job in jobs:
        total = len(job.tasks)
        if not total:
            continue
        placed = len(job.placed_tasks())
        if 0 < placed < total:
            boosts[job.job_id] = 1.0 + 2.0 * (placed / total)
    return boosts


def _job_groups(ordered_pool: list[Task]) -> list[list[Task]]:
    """Split an ordered pool into runs of same-job tasks (order kept)."""
    groups: list[list[Task]] = []
    for task in ordered_pool:
        if groups and groups[-1][0].job_id == task.job_id:
            groups[-1].append(task)
        else:
            groups.append([task])
    return groups


class DecisionRecorder(Protocol):
    """Sink for recorded (features, chosen index) placement decisions."""

    def record(self, features: np.ndarray, chosen_index: int) -> None:
        """Store one decision."""
        ...


@dataclass
class BufferRecorder:
    """Adapts :class:`~repro.rl.replay.ImitationBuffer` to the recorder
    protocol — the standard way to capture MLF-H decisions for MLF-RL
    imitation training."""

    buffer: "ImitationBuffer"

    def record(self, features: np.ndarray, chosen_index: int) -> None:
        """Append one expert decision to the buffer."""
        self.buffer.add(Decision(features=features, chosen_index=chosen_index))


@dataclass
class MLFHScheduler(Scheduler):
    """The heuristic scheduler of Section 3.3."""

    config: MLFSConfig = field(default_factory=MLFSConfig)
    recorder: Optional[DecisionRecorder] = None
    name: str = "MLF-H"

    # MLF-H only places queued tasks, migrates out of overloaded servers
    # and preempts to admit higher-priority queued tasks — with an empty
    # queue and no overload its decision is always empty, so the
    # event-driven engine may skip those passes (un-annotated on purpose:
    # a class attribute, not a dataclass field).
    event_parkable = True

    calculator: PriorityCalculator = field(init=False)
    placement: PlacementEngine = field(init=False)
    migration: MigrationSelector = field(init=False)
    featurizer: StateFeaturizer = field(init=False)
    comm_index: TaskCommIndex = field(init=False)
    #: Number of placement decisions made so far (drives the RL switch).
    decisions_made: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        self.config.validate()
        self.comm_index = TaskCommIndex()
        self.calculator = PriorityCalculator(config=self.config)
        self.placement = PlacementEngine(config=self.config, comm_index=self.comm_index)
        self.migration = MigrationSelector(config=self.config, comm_index=self.comm_index)
        self.featurizer = StateFeaturizer(comm_index=self.comm_index)

    # -- Scheduler API ------------------------------------------------------

    def on_schedule(self, ctx: SchedulingContext) -> SchedulerDecision:
        decision = SchedulerDecision()
        with _span("priority", jobs=len(ctx.active_jobs)):
            priorities = self.calculator.priorities(ctx.active_jobs, ctx.now)
            _publish_priorities(priorities)
        shadow = ShadowCluster(ctx.cluster)
        boost = completion_boosts(ctx.active_jobs)

        def score(task: Task) -> float:
            return priorities.get(task.task_id, 0.0) * boost.get(task.job_id, 1.0)

        # Migration candidates move (or are evicted) individually.
        with _span("migration"):
            migration_candidates: list[Task] = []
            if self.config.enable_migration:
                for server in ctx.cluster.overloaded_servers(
                    self.config.overload_threshold
                ):
                    migration_candidates.extend(
                        self.migration.select(server, shadow, priorities)
                    )
            for task in order_pool(
                migration_candidates,
                {t.task_id: score(t) for t in migration_candidates},
            ):
                choice = self._select_and_record(task, shadow, ctx)
                if choice is None:
                    decision.evictions.append(Eviction(task))
                    continue
                server_id, gpu_id = choice
                # The selector already committed the removal; record the
                # destination side of the move.
                shadow.commit_placement(task, server_id, gpu_id)
                decision.migrations.append(Migration(task, server_id, gpu_id))
                self.decisions_made += 1

        # Queued tasks are admitted per job, all-or-nothing: a job only
        # iterates once fully placed, so partially seeding it would hold
        # resources without progress.
        with _span("placement", queued=len(ctx.queue)):
            queue_scores = {t.task_id: score(t) for t in ctx.queue}
            ordered = order_pool(list(ctx.queue), queue_scores)
            decision.record_dequeue(ordered, queue_scores)
            for group in _job_groups(ordered):
                snapshot = shadow.snapshot()
                placements = []
                for task in group:
                    choice = self._select_and_record(task, shadow, ctx)
                    if choice is None:
                        placements = None
                        break
                    server_id, gpu_id = choice
                    shadow.commit_placement(task, server_id, gpu_id)
                    placements.append(Placement(task, server_id, gpu_id))
                if placements is None:
                    shadow.restore(snapshot)
                else:
                    decision.placements.extend(placements)
                    self.decisions_made += len(placements)
        return decision

    def on_job_complete(self, job: Job, now: float) -> None:
        self.calculator.forget(job)
        self.comm_index.forget(job)

    # -- internals -------------------------------------------------------------

    def _select_and_record(
        self, task: Task, shadow: ShadowCluster, ctx: SchedulingContext
    ) -> Optional[tuple[int, int]]:
        """Pick a host via the RIAL rule, recording the decision if asked."""
        candidates = self.placement.candidate_servers(task, shadow)
        if not candidates:
            return None
        choice = self.placement.select_host(task, shadow, candidates=candidates)
        if choice is None:
            return None
        if self.recorder is not None and len(candidates) > 1:
            features = self.featurizer.candidate_matrix(
                task, candidates, shadow, ctx.now
            )
            chosen_index = next(
                i for i, s in enumerate(candidates) if s.server_id == choice.server_id
            )
            self.recorder.record(features, chosen_index)
        return choice.server_id, choice.gpu_id
