"""MLFS configuration — the paper's tunable parameters.

Defaults are the values of Section 4.1 ("Experimental setting"):
``α=0.3, γ=0.8, γ_d=0.3, γ_r=0.3, γ_w=0.35, β=(0.5, 0.55, 0.25, 0.15,
0.15), η=0.95, h_r=h_s=90%, p_s=10%``.  "In practice, these tunable
parameters of a cluster are determined by the administrator."
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class PriorityWeights:
    """Weights of the MLF-H priority formulas (Eqs. 2–6).

    Attributes
    ----------
    alpha:
        Blend between ML-feature and computation-feature priorities
        (Eq. 6); larger values weight the ML features more.
    gamma:
        Dependency discount for child-priority propagation (Eq. 3/5).
    gamma_d / gamma_r / gamma_w:
        Computation-feature weights (Eq. 4): deadline closeness,
        remaining running time, queue waiting time.
    """

    alpha: float = 0.3
    gamma: float = 0.8
    gamma_d: float = 0.3
    gamma_r: float = 0.3
    gamma_w: float = 0.35

    def validate(self) -> None:
        """Raise ``ValueError`` on out-of-domain weights."""
        if not 0.0 <= self.alpha <= 1.0:
            raise ValueError(f"alpha must be in [0, 1], got {self.alpha}")
        if not 0.0 < self.gamma < 1.0:
            raise ValueError(f"gamma must be in (0, 1), got {self.gamma}")
        for name in ("gamma_d", "gamma_r", "gamma_w"):
            if getattr(self, name) < 0.0:
                raise ValueError(f"{name} must be non-negative")


@dataclass(frozen=True)
class RewardWeights:
    """Reward weights ``β_1..β_5`` of Eq. 7, one per Eq. 1 objective.

    ``β_2`` (deadline guarantee) carries the largest default weight, as
    in the paper ("larger β_2 means more weights on deadline guarantee").
    """

    beta_jct: float = 0.5
    beta_deadline: float = 0.55
    beta_bandwidth: float = 0.25
    beta_accuracy_met: float = 0.15
    beta_accuracy: float = 0.15

    def as_tuple(self) -> tuple[float, float, float, float, float]:
        """``(β_1, ..., β_5)`` in objective order."""
        return (
            self.beta_jct,
            self.beta_deadline,
            self.beta_bandwidth,
            self.beta_accuracy_met,
            self.beta_accuracy,
        )


@dataclass(frozen=True)
class MLFSConfig:
    """Full MLFS parameterization.

    Attributes
    ----------
    priority:
        Eq. 2–6 weights.
    reward:
        Eq. 7 weights.
    eta:
        RL future-reward discount ``η``.
    overload_threshold:
        Per-resource / per-GPU threshold ``h_r``.
    system_overload_threshold:
        Cluster threshold ``h_s`` for MLF-C.
    migration_candidate_fraction:
        ``p_s`` — when GPUs are overloaded, migration candidates come
        from the lowest-priority ``p_s`` fraction of their tasks.
    urgency_levels:
        ``m`` — urgency coefficients live in ``[0, m]``.
    use_ml_features / use_urgency / use_deadline / use_bandwidth:
        Ablation switches for the Figure 6/7 experiments.
    enable_migration:
        Ablation switch for the Figure 8 experiment (MLF-H overload
        handling).
    enable_load_control:
        Ablation switch for the Figure 9 experiment (MLF-C).
    rl_switch_decisions:
        MLF-RL takes over from MLF-H once this many heuristic decisions
        have been recorded and imitation has converged.
    """

    priority: PriorityWeights = field(default_factory=PriorityWeights)
    reward: RewardWeights = field(default_factory=RewardWeights)
    eta: float = 0.95
    overload_threshold: float = 0.90
    system_overload_threshold: float = 0.90
    migration_candidate_fraction: float = 0.10
    urgency_levels: int = 10
    use_ml_features: bool = True
    use_urgency: bool = True
    use_deadline: bool = True
    use_bandwidth: bool = True
    enable_migration: bool = True
    enable_load_control: bool = True
    rl_switch_decisions: int = 2000

    def validate(self) -> None:
        """Raise ``ValueError`` on out-of-domain parameters."""
        self.priority.validate()
        if not 0.0 < self.eta <= 1.0:
            raise ValueError(f"eta must be in (0, 1], got {self.eta}")
        for name in ("overload_threshold", "system_overload_threshold"):
            value = getattr(self, name)
            if not 0.0 < value <= 1.0:
                raise ValueError(f"{name} must be in (0, 1], got {value}")
        if not 0.0 < self.migration_candidate_fraction <= 1.0:
            raise ValueError(
                "migration_candidate_fraction must be in (0, 1], got "
                f"{self.migration_candidate_fraction}"
            )
        if self.urgency_levels < 1:
            raise ValueError("urgency_levels must be >= 1")


#: The paper's default configuration.
DEFAULT_CONFIG = MLFSConfig()
