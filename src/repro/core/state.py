"""RL state featurization (Section 3.4).

The paper's RL state covers "the information of tasks … of each task's
job … and of servers and nodes (GPUs)".  We encode each (task,
candidate-server) pair into a fixed-size vector combining:

* task features — resource demand, PS flag, partition-size share;
* job features — urgency, temporal iteration importance, loss-reduction
  ratio, progress, deadline slack, waiting time, parallelism shape;
* server features — per-resource utilization, overload degree,
  least-loaded-GPU utilization;
* interaction features — task↔server communication volume and the
  fraction of the job already co-located on the server.

Times are squashed with ``tanh`` over hour scales so features stay in
``[-1, 1]``-ish ranges suitable for the MLP policy.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.cluster.server import Server
from repro.core.placement import TaskCommIndex
from repro.core.priority import job_temporal_factor
from repro.sim.shadow import ShadowCluster
from repro.workload.job import Task

#: Dimension of the per-candidate feature vector.
FEATURE_SIZE = 20


@dataclass
class StateFeaturizer:
    """Builds policy features for (task, candidate server) decisions."""

    comm_index: TaskCommIndex = field(default_factory=TaskCommIndex)

    def task_features(self, task: Task, now: float) -> list[float]:
        """The candidate-independent part of the feature vector."""
        job = task.job
        slack_h = (job.deadline - now) / 3600.0
        waiting_h = task.waiting_time(now) / 3600.0
        progress = (
            job.iterations_completed / job.max_iterations if job.max_iterations else 0.0
        )
        total_params = job.total_params_m
        return [
            task.demand.gpu,
            task.demand.cpu / 32.0,
            task.demand.mem / 244.0,
            task.demand.bw / 1250.0,
            1.0 if task.is_parameter_server else 0.0,
            task.partition_params_m / total_params if total_params else 1.0,
            job.urgency / 10.0,
            job_temporal_factor(job),
            progress,
            math.tanh(slack_h / 12.0),
            math.tanh(waiting_h),
            math.tanh(job.gpus_requested / 32.0),
        ]

    def candidate_features(
        self,
        task: Task,
        server: Server,
        shadow: ShadowCluster,
        now: float,
        task_part: list[float] | None = None,
    ) -> np.ndarray:
        """Feature vector for one (task, server) pair."""
        base = task_part if task_part is not None else self.task_features(task, now)
        util = shadow.utilization(server)
        least_gpu = shadow.gpu_utilization(server, shadow.least_loaded_gpu(server))
        volume = self.comm_index.volume_to_server(task, server.server_id, shadow)
        colocated = self._colocated_fraction(task, server.server_id, shadow)
        server_part = [
            util.gpu,
            util.cpu,
            util.mem,
            util.bw,
            util.norm() / 2.0,
            least_gpu,
            math.tanh(volume / 500.0),
            colocated,
        ]
        features = np.asarray(base + server_part, dtype=np.float64)
        if features.shape[0] != FEATURE_SIZE:
            raise AssertionError(
                f"feature size drifted: {features.shape[0]} != {FEATURE_SIZE}"
            )
        return features

    def candidate_matrix(
        self,
        task: Task,
        servers: list[Server],
        shadow: ShadowCluster,
        now: float,
    ) -> np.ndarray:
        """Stacked features for every candidate server (rows)."""
        task_part = self.task_features(task, now)
        rows = [
            self.candidate_features(task, server, shadow, now, task_part)
            for server in servers
        ]
        return np.vstack(rows)

    def _colocated_fraction(
        self, task: Task, server_id: int, shadow: ShadowCluster
    ) -> float:
        peers = [t for t in task.job.tasks if t.task_id != task.task_id]
        if not peers:
            return 0.0
        on_server = sum(1 for t in peers if shadow.task_location(t) == server_id)
        return on_server / len(peers)
