"""MLFS: the full system — MLF-H → MLF-RL switch plus MLF-C.

"MLFS initially runs MLF-H for a certain time period and uses the data
to train a deep RL model, and it then switches to MLF-RL when the model
is well trained" (Section 3.4); "when the system is overloaded, MLF-C …
stops running or generating tasks once the desired accuracy is reached"
(Section 3.5).

Each round MLFS first applies MLF-C (collecting early stops), excludes
the stopped jobs' tasks from the round's pool, then delegates to the
active phase's scheduler.  The phase switches automatically once enough
heuristic decisions have been recorded and imitation training has
converged; callers that already hold a pretrained policy (the usual
benchmark path) pass it in and MLFS starts directly in the RL phase.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.core.config import MLFSConfig
from repro.core.mlf_c import MLFCController
from repro.core.mlf_h import BufferRecorder, MLFHScheduler
from repro.core.mlf_rl import MLFRLScheduler
from repro.core.state import FEATURE_SIZE
from repro.obs.observer import span as _span
from repro.rl.policy import ScoringPolicy
from repro.rl.reinforce import ImitationTrainer
from repro.rl.replay import ImitationBuffer
from repro.sim.interface import (
    Scheduler,
    SchedulerDecision,
    SchedulingContext,
)
from repro.workload.job import Job


class Phase(enum.Enum):
    """Which scheduling engine is active."""

    HEURISTIC = "heuristic"
    RL = "rl"


@dataclass
class MLFSScheduler(Scheduler):
    """The complete MLFS system.

    Parameters
    ----------
    config:
        Shared MLFS parameterization.
    pretrained_policy:
        Optional policy; when given MLFS starts in the RL phase.
    auto_switch:
        When true (and no pretrained policy), MLFS records MLF-H
        decisions and switches to MLF-RL after
        ``config.rl_switch_decisions`` decisions by training the policy
        via imitation in-line.
    """

    config: MLFSConfig = field(default_factory=MLFSConfig)
    pretrained_policy: Optional[ScoringPolicy] = None
    auto_switch: bool = True
    name: str = "MLFS"

    phase: Phase = field(init=False)
    heuristic: MLFHScheduler = field(init=False)
    rl: MLFRLScheduler = field(init=False)
    load_control: MLFCController = field(init=False)
    imitation_buffer: ImitationBuffer = field(init=False)

    def __post_init__(self) -> None:
        self.config.validate()
        self.imitation_buffer = ImitationBuffer(capacity=20_000)
        self.heuristic = MLFHScheduler(
            config=self.config, recorder=BufferRecorder(self.imitation_buffer)
        )
        self.rl = MLFRLScheduler(config=self.config, policy=self.pretrained_policy)
        self.load_control = MLFCController(config=self.config)
        self.phase = Phase.RL if self.pretrained_policy is not None else Phase.HEURISTIC

    # -- Scheduler API ------------------------------------------------------

    def on_schedule(self, ctx: SchedulingContext) -> SchedulerDecision:
        with _span("load_control", active_jobs=len(ctx.active_jobs)):
            stops = self.load_control.apply(ctx)
        stopped_jobs = {stop.job.job_id for stop in stops}
        if stopped_jobs:
            ctx = SchedulingContext(
                now=ctx.now,
                cluster=ctx.cluster,
                queue=[t for t in ctx.queue if t.job_id not in stopped_jobs],
                active_jobs=[
                    j for j in ctx.active_jobs if j.job_id not in stopped_jobs
                ],
                overload_threshold=ctx.overload_threshold,
                system_overload_threshold=ctx.system_overload_threshold,
                accuracy_predictor=ctx.accuracy_predictor,
                runtime_predictor=ctx.runtime_predictor,
            )
        self._maybe_switch()
        engine = self.heuristic if self.phase is Phase.HEURISTIC else self.rl
        decision = engine.on_schedule(ctx)
        decision.stops.extend(stops)
        return decision

    def on_job_complete(self, job: Job, now: float) -> None:
        self.heuristic.on_job_complete(job, now)
        self.rl.on_job_complete(job, now)

    # -- phase switch ---------------------------------------------------------

    def _maybe_switch(self) -> None:
        if (
            self.phase is Phase.HEURISTIC
            and self.auto_switch
            and self.pretrained_policy is None
            and len(self.imitation_buffer) >= self.config.rl_switch_decisions
        ):
            policy = ScoringPolicy(feature_size=FEATURE_SIZE, seed=7)
            trainer = ImitationTrainer(policy=policy)
            stats = trainer.train(self.imitation_buffer, epochs=2)
            if stats["agreement"] >= 0.5:
                self.rl.policy = policy
                self.phase = Phase.RL


def make_mlf_h(config: Optional[MLFSConfig] = None) -> MLFHScheduler:
    """MLF-H alone (the paper's "MLF-H" curves)."""
    cfg = config or MLFSConfig(enable_load_control=False)
    return MLFHScheduler(config=cfg, name="MLF-H")


def make_mlf_rl(
    policy: Optional[ScoringPolicy] = None, config: Optional[MLFSConfig] = None
) -> MLFRLScheduler:
    """MLF-RL alone, without load control (the paper's "MLF-RL" curves)."""
    cfg = config or MLFSConfig(enable_load_control=False)
    return MLFRLScheduler(config=cfg, policy=policy, name="MLF-RL")


def make_mlfs(
    policy: Optional[ScoringPolicy] = None, config: Optional[MLFSConfig] = None
) -> MLFSScheduler:
    """Full MLFS: RL scheduling plus MLF-C load control."""
    cfg = config or MLFSConfig(enable_load_control=True)
    return MLFSScheduler(config=cfg, pretrained_policy=policy, name="MLFS")
