"""MLF-C: ML-feature-based system load control (Section 3.5).

Users pick a stop option at submission — (i) fixed iterations,
(ii) OptStop, (iii) stop at required accuracy — and indicate whether the
system may downgrade it.  "When the system is not overloaded, MLF-C
follows the user choices …, and when the system is overloaded, MLF-C
changes the choices based on the users' indications to reduce system
workload."  The overload predicate is the cluster degree
``O_c > h_s`` or a non-empty queue.

Each round the controller refreshes every job's *effective* option and
evaluates the OptStop rule, emitting :class:`JobStop` actions for jobs
whose target is met (or provably unreachable).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import MLFSConfig
from repro.learncurve.optstop import OptStopPolicy, StopDecision
from repro.sim.interface import JobStop, SchedulingContext
from repro.workload.job import Job, StopOption

#: One-step downgrade ladder: i → ii → iii (Section 3.5).
_DOWNGRADE: dict[StopOption, StopOption] = {
    StopOption.FIXED_ITERATIONS: StopOption.OPT_STOP,
    StopOption.OPT_STOP: StopOption.ACCURACY_ONLY,
    StopOption.ACCURACY_ONLY: StopOption.ACCURACY_ONLY,
}


@dataclass
class MLFCController:
    """The load-control component composed into MLFS.

    Parameters
    ----------
    queue_wait_threshold:
        A queued task only signals overload once it has waited this
        long — a task that arrived seconds ago and simply has not been
        scheduled yet is not backlog.
    """

    config: MLFSConfig = field(default_factory=MLFSConfig)
    optstop: OptStopPolicy = field(default_factory=OptStopPolicy)
    queue_wait_threshold: float = 300.0

    def effective_option(self, job: Job, overloaded: bool) -> StopOption:
        """The stop option in force given the current overload state."""
        if not overloaded or not job.allow_downgrade:
            return job.stop_option
        return _DOWNGRADE[job.stop_option]

    def system_overloaded(self, ctx: SchedulingContext) -> bool:
        """Section 3.5's predicate with a genuine-backlog refinement."""
        backlog = any(
            t.waiting_time(ctx.now) > self.queue_wait_threshold for t in ctx.queue
        )
        return ctx.cluster.is_overloaded(
            ctx.system_overload_threshold, queue_nonempty=backlog
        )

    def apply(self, ctx: SchedulingContext) -> list[JobStop]:
        """Refresh effective options and collect early-stop actions."""
        if not self.config.enable_load_control:
            return []
        overloaded = self.system_overloaded(ctx)
        stops: list[JobStop] = []
        for job in ctx.active_jobs:
            job.effective_stop_option = self.effective_option(job, overloaded)
            if job.iterations_completed < 1 or job.is_complete:
                continue
            decision = self.optstop.evaluate(
                job, ctx.accuracy_predictor, job.current_accuracy
            )
            if decision is not StopDecision.CONTINUE:
                stops.append(JobStop(job=job, reason=decision.value))
        return stops
