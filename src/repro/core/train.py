"""Training pipelines for MLF-RL.

Implements the paper's training recipe end-to-end:

1. **Collect** — run MLF-H over a workload with a decision recorder
   attached ("MLFS initially runs MLF-H … and uses the data to train a
   deep RL model").
2. **Imitate** — supervised pretraining of the scoring policy on the
   recorded decisions.
3. **Fine-tune** — episodic REINFORCE on the Eq. 7 reward with discount
   ``η`` ("we utilize the gradient-descent to update θ").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from repro.cluster.cluster import Cluster
from repro.core.config import MLFSConfig
from repro.core.mlf_h import BufferRecorder, MLFHScheduler
from repro.core.mlf_rl import MLFRLScheduler
from repro.core.state import FEATURE_SIZE
from repro.rl.policy import ScoringPolicy
from repro.rl.reinforce import ImitationTrainer, ReinforceTrainer
from repro.rl.replay import ImitationBuffer
from repro.sim.engine import EngineConfig, SimulationEngine
from repro.workload.generator import WorkloadConfig, build_jobs
from repro.workload.trace import TraceRecord


@dataclass
class TrainingSetup:
    """Workload + cluster recipe used for RL training episodes."""

    records: Sequence[TraceRecord]
    cluster_factory: Callable[[], Cluster]
    config: MLFSConfig
    engine_config: EngineConfig
    workload_config: Optional[WorkloadConfig] = None
    workload_seed: int = 0


def collect_imitation_data(
    setup: TrainingSetup, capacity: int = 20_000
) -> ImitationBuffer:
    """Run MLF-H over the setup's workload, recording every host choice."""
    buffer = ImitationBuffer(capacity=capacity)
    scheduler = MLFHScheduler(config=setup.config, recorder=BufferRecorder(buffer))
    jobs = build_jobs(
        setup.records, seed=setup.workload_seed, config=setup.workload_config
    )
    engine = SimulationEngine(
        scheduler=scheduler,
        jobs=jobs,
        cluster=setup.cluster_factory(),
        config=setup.engine_config,
    )
    engine.run()
    return buffer


def pretrain_policy(
    buffer: ImitationBuffer,
    epochs: int = 3,
    hidden_sizes: tuple[int, ...] = (64, 32),
    seed: int = 7,
) -> tuple[ScoringPolicy, dict[str, float]]:
    """Imitation-pretrain a scoring policy from recorded decisions."""
    policy = ScoringPolicy(
        feature_size=FEATURE_SIZE, hidden_sizes=hidden_sizes, seed=seed
    )
    trainer = ImitationTrainer(policy=policy)
    stats = trainer.train(buffer, epochs=epochs)
    return policy, stats


def episode_reward(engine: SimulationEngine, config: MLFSConfig) -> float:
    """Eq. 7 reward of a finished simulation episode."""
    records = engine.metrics.job_records
    # Rebuild lightweight objective inputs from the records.
    jcts_h = [r.jct / 3600.0 for r in records]
    if not jcts_h:
        return 0.0
    avg_jct = sum(jcts_h) / len(jcts_h)
    values_tuple = (
        1.0 / avg_jct if avg_jct > 0 else 0.0,
        sum(1 for r in records if r.met_deadline) / len(records),
        1.0 / max(engine.metrics.total_bandwidth_mb() / 1024.0, 1e-6),
        sum(1 for r in records if r.met_accuracy) / len(records),
        sum(r.accuracy_at_deadline for r in records) / len(records),
    )
    betas = config.reward.as_tuple()
    return sum(b * g for b, g in zip(betas, values_tuple))


def reinforce_finetune(
    policy: ScoringPolicy,
    setup: TrainingSetup,
    episodes: int = 5,
    learning_rate: float = 5e-4,
) -> list[dict[str, float]]:
    """Fine-tune a policy with episodic REINFORCE on Eq. 7.

    Each episode replays the workload with sampled (exploring) actions;
    the episode's Eq. 7 reward is credited to the final step and
    discounted backwards with ``η``, the REINFORCE-with-baseline form
    used by the RL schedulers the paper builds on.
    """
    trainer = ReinforceTrainer(
        policy=policy, discount=setup.config.eta, learning_rate=learning_rate
    )
    history = []
    for episode in range(episodes):
        scheduler = MLFRLScheduler(config=setup.config, policy=policy, explore=True)
        jobs = build_jobs(
            setup.records, seed=setup.workload_seed, config=setup.workload_config
        )
        engine = SimulationEngine(
            scheduler=scheduler,
            jobs=jobs,
            cluster=setup.cluster_factory(),
            config=setup.engine_config,
        )
        engine.run()
        trajectory = scheduler.reset_trajectory()
        if len(trajectory) == 0:
            history.append({"steps": 0.0, "mean_return": 0.0})
            continue
        trajectory.rewards[-1] = episode_reward(engine, setup.config)
        history.append(trainer.train_on_trajectory(trajectory))
    return history


def train_mlf_rl_policy(
    setup: TrainingSetup,
    imitation_epochs: int = 3,
    reinforce_episodes: int = 0,
) -> ScoringPolicy:
    """The full pipeline: collect → imitate → (optionally) fine-tune."""
    buffer = collect_imitation_data(setup)
    policy, _stats = pretrain_policy(buffer, epochs=imitation_epochs)
    if reinforce_episodes > 0:
        reinforce_finetune(policy, setup, episodes=reinforce_episodes)
    return policy


# Avoid re-training identical policies across benchmark invocations.
_POLICY_CACHE: dict[tuple, ScoringPolicy] = {}


def cached_policy(setup: TrainingSetup, cache_key: tuple) -> ScoringPolicy:
    """Memoized :func:`train_mlf_rl_policy` for benchmark harnesses."""
    if cache_key not in _POLICY_CACHE:
        _POLICY_CACHE[cache_key] = train_mlf_rl_policy(setup)
    return _POLICY_CACHE[cache_key]
