"""Exact multi-objective placement reference (toy scale).

Section 3.2 notes that the Eq. 1 multi-objective problem "could use the
adaptive epsilon constraint algorithm [28] to solve … however, due to
its high computation overhead" MLFS uses heuristics instead.  This
module provides that expensive reference at toy scale so the heuristics
can be judged against the true Pareto frontier:

* enumerate every feasible assignment of a task set onto a cluster
  (exponential — only viable for a handful of tasks/servers);
* score each assignment on one round's proxies of the Eq. 1 objectives:
  load imbalance (a JCT proxy), cross-server communication volume (the
  bandwidth objective) and peak overload degree (the deadline proxy);
* run the epsilon-constraint method: optimize the primary objective
  subject to progressively tightened bounds on the others, tracing the
  Pareto frontier.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterator, Optional, Sequence

from repro.cluster.cluster import Cluster
from repro.sim.network import job_links
from repro.workload.job import Task

#: Refuse to enumerate more than this many assignments.
MAX_ASSIGNMENTS = 2_000_000


@dataclass(frozen=True, slots=True)
class PlacementScore:
    """One round's objective proxies for a complete assignment.

    All three components are costs (lower is better): ``imbalance`` is
    the standard deviation proxy of server overload degrees (balanced
    load → faster iterations → lower JCT), ``cross_volume_mb`` the
    bandwidth objective, ``peak_degree`` the worst server's overload
    degree (the deadline-risk proxy).
    """

    imbalance: float
    cross_volume_mb: float
    peak_degree: float

    def as_tuple(self) -> tuple[float, float, float]:
        return (self.imbalance, self.cross_volume_mb, self.peak_degree)


def enumerate_assignments(
    tasks: Sequence[Task], cluster: Cluster, capacity_threshold: float = 1.0
) -> Iterator[dict[str, int]]:
    """Yield every feasible task→server assignment.

    Feasible = no server exceeds ``capacity_threshold`` utilization on
    any resource under the tasks' *estimated* demands.

    Raises
    ------
    ValueError
        If the search space exceeds :data:`MAX_ASSIGNMENTS`.
    """
    n = len(cluster.servers)
    space = n ** len(tasks)
    if space > MAX_ASSIGNMENTS:
        raise ValueError(
            f"{space} assignments exceed the toy-scale cap {MAX_ASSIGNMENTS}"
        )
    for combo in itertools.product(range(n), repeat=len(tasks)):
        loads = {i: cluster.server(i).load for i in set(combo)}
        feasible = True
        for task, server_id in zip(tasks, combo):
            loads[server_id] = loads[server_id] + task.demand
        for server_id, load in loads.items():
            util = load.divide_by(cluster.server(server_id).capacity)
            if util.exceeds_any(capacity_threshold):
                feasible = False
                break
        if feasible:
            yield {t.task_id: s for t, s in zip(tasks, combo)}


def score_assignment(
    tasks: Sequence[Task], assignment: dict[str, int], cluster: Cluster
) -> PlacementScore:
    """Evaluate the three objective proxies for one assignment."""
    degrees = []
    for server in cluster.servers:
        load = server.load
        for task in tasks:
            if assignment[task.task_id] == server.server_id:
                load = load + task.demand
        degrees.append(load.divide_by(server.capacity).norm())
    mean = sum(degrees) / len(degrees)
    imbalance = (sum((d - mean) ** 2 for d in degrees) / len(degrees)) ** 0.5

    location = dict(assignment)
    for job in {t.job for t in tasks}:
        for task in job.tasks:
            if task.task_id not in location and task.server_id is not None:
                location[task.task_id] = task.server_id
    cross = 0.0
    for job in {t.job for t in tasks}:
        for link in job_links(job):
            src = location.get(link.src.task_id)
            dst = location.get(link.dst.task_id)
            if src is not None and dst is not None and src != dst:
                cross += link.volume_mb
    return PlacementScore(
        imbalance=imbalance, cross_volume_mb=cross, peak_degree=max(degrees)
    )


def pareto_frontier(
    scored: Sequence[tuple[dict[str, int], PlacementScore]]
) -> list[tuple[dict[str, int], PlacementScore]]:
    """Non-dominated assignments (all objectives are costs)."""
    frontier = []
    for assignment, score in scored:
        dominated = False
        for _other, other_score in scored:
            if other_score is score:
                continue
            if all(
                o <= s for o, s in zip(other_score.as_tuple(), score.as_tuple())
            ) and any(
                o < s for o, s in zip(other_score.as_tuple(), score.as_tuple())
            ):
                dominated = True
                break
        if not dominated:
            frontier.append((assignment, score))
    return frontier


def epsilon_constraint_solve(
    tasks: Sequence[Task],
    cluster: Cluster,
    levels: int = 4,
    capacity_threshold: float = 1.0,
) -> Optional[tuple[dict[str, int], PlacementScore]]:
    """Adaptive epsilon-constraint optimization over the toy instance.

    Minimizes the imbalance (JCT proxy) subject to epsilon bounds on
    bandwidth and peak degree; the bounds sweep from loose to tight in
    ``levels`` steps and the best feasible solution under the tightest
    satisfiable bounds is returned.  ``None`` when no assignment is
    feasible at all.
    """
    scored = [
        (assignment, score_assignment(tasks, assignment, cluster))
        for assignment in enumerate_assignments(tasks, cluster, capacity_threshold)
    ]
    if not scored:
        return None
    volumes = [s.cross_volume_mb for _a, s in scored]
    peaks = [s.peak_degree for _a, s in scored]
    best: Optional[tuple[dict[str, int], PlacementScore]] = None
    for level in range(levels, 0, -1):
        frac = level / levels
        eps_volume = min(volumes) + (max(volumes) - min(volumes)) * frac
        eps_peak = min(peaks) + (max(peaks) - min(peaks)) * frac
        feasible = [
            (a, s)
            for a, s in scored
            if s.cross_volume_mb <= eps_volume + 1e-9 and s.peak_degree <= eps_peak + 1e-9
        ]
        if not feasible:
            break
        best = min(feasible, key=lambda item: item[1].imbalance)
    return best
