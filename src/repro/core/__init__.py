"""MLFS core: priorities, MLF-H, MLF-RL, MLF-C and the composed system."""

from repro.core.config import (
    DEFAULT_CONFIG,
    MLFSConfig,
    PriorityWeights,
    RewardWeights,
)
from repro.core.exact import (
    PlacementScore,
    enumerate_assignments,
    epsilon_constraint_solve,
    pareto_frontier,
    score_assignment,
)
from repro.core.mlf_c import MLFCController
from repro.core.mlf_h import BufferRecorder, MLFHScheduler
from repro.core.mlf_rl import MLFRLScheduler
from repro.core.mlfs import MLFSScheduler, Phase, make_mlf_h, make_mlf_rl, make_mlfs
from repro.core.overload import MigrationSelector
from repro.core.placement import HostChoice, PlacementEngine, TaskCommIndex
from repro.core.priority import (
    PriorityCalculator,
    job_temporal_factor,
    make_calculator,
)
from repro.core.reward import (
    ObjectiveValues,
    RewardTracker,
    objective_values,
    reward,
    tune_reward_weights,
)
from repro.core.state import FEATURE_SIZE, StateFeaturizer
from repro.core.train import (
    TrainingSetup,
    collect_imitation_data,
    pretrain_policy,
    reinforce_finetune,
    train_mlf_rl_policy,
)

__all__ = [
    "BufferRecorder",
    "DEFAULT_CONFIG",
    "FEATURE_SIZE",
    "HostChoice",
    "MLFCController",
    "MLFHScheduler",
    "MLFRLScheduler",
    "MLFSConfig",
    "MLFSScheduler",
    "MigrationSelector",
    "ObjectiveValues",
    "Phase",
    "PlacementEngine",
    "PlacementScore",
    "enumerate_assignments",
    "epsilon_constraint_solve",
    "pareto_frontier",
    "score_assignment",
    "PriorityCalculator",
    "PriorityWeights",
    "RewardTracker",
    "RewardWeights",
    "StateFeaturizer",
    "TaskCommIndex",
    "TrainingSetup",
    "collect_imitation_data",
    "job_temporal_factor",
    "make_calculator",
    "make_mlf_h",
    "make_mlf_rl",
    "make_mlfs",
    "objective_values",
    "pretrain_policy",
    "reinforce_finetune",
    "reward",
    "train_mlf_rl_policy",
    "tune_reward_weights",
]
