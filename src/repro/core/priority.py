"""Task priority determination — Equations 2 through 6 (Section 3.3.1).

The priority of task ``k`` of job ``J`` at its ``I``-th iteration blends

* the **ML-feature priority** (Eq. 2–3): urgency coefficient ``L_J``,
  temporal iteration importance ``1/I`` and normalized loss reduction
  ``δl_{I-1} / Σ δl_j``, spatial partition size ``S_k / S_J``, and the
  dependency propagation ``P_k = P'_k + γ Σ_{i ∈ child(k)} P_i``;
* the **computation-feature priority** (Eq. 4–5): deadline closeness,
  remaining running time and queue waiting time, with the same
  dependency propagation;

combined as ``P = α P^ML + (1-α) P^C`` (Eq. 6).

Time-valued quantities are normalized to hours so the three Eq. 4 terms
live on comparable scales.  Parameter-server tasks receive the highest
priority of their job ("only after the parameter server is determined,
the tasks in the workers know where to send their results").
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

import networkx as nx

from repro.core.config import MLFSConfig, PriorityWeights
from repro.workload.job import Job, Task

#: Floor on deadline slack (seconds) so 1/slack stays bounded.
MIN_SLACK_SECONDS = 60.0
#: Floor on remaining time (seconds) so 1/remaining stays bounded.
MIN_REMAINING_SECONDS = 30.0
#: Multiplier placing PS tasks above every worker of their job.
PS_PRIORITY_BOOST = 1.5


def job_temporal_factor(job: Job) -> float:
    """``(1/I) * (δl_{I-1} / Σ_{j<I} δl_j)`` — Eq. 2's temporal terms.

    ``I`` is the job's *current* iteration (1-based).  Before any
    iteration completes there is no loss history; the factor is 1 (the
    first iteration is maximally important).
    """
    current = job.iterations_completed + 1
    if job.iterations_completed < 1:
        return 1.0
    total = job.cumulative_delta_loss(job.iterations_completed)
    if total <= 0.0:
        ratio = 0.0
    else:
        ratio = job.delta_loss(job.iterations_completed) / total
    return (1.0 / current) * ratio


@dataclass
class PriorityCalculator:
    """Computes Eq. 6 priorities for every task of a set of jobs.

    Caches per-job DAG structure (reverse topological order, direct
    children) since the graph never changes after job construction.
    """

    config: MLFSConfig
    _reverse_topo: dict[str, list[str]] = field(default_factory=dict, repr=False)
    _children: dict[str, dict[str, list[str]]] = field(default_factory=dict, repr=False)
    #: Incremental recomputation (the event-engine's per-pass hot path):
    #: the propagated ML-priority vector of a job is a pure function of
    #: its iteration count — urgency and partition sizes are static and
    #: the Eq. 2 temporal factor reads the frozen loss curve at
    #: ``iterations_completed`` — so it is memoized per job and
    #: self-invalidates when the count moves (including *backwards*
    #: after a fault-rollback).  The computation priority (Eq. 4)
    #: depends on ``now`` and is recomputed every pass.
    _ml_cache: dict[str, tuple[int, dict[str, float]]] = field(
        default_factory=dict, repr=False
    )

    # -- per-task base priorities ------------------------------------------

    def base_ml_priority(self, task: Task) -> float:
        """Eq. 2: ``P'_ML = L_J * (1/I) * (δl/Σδl) * S_k/S_J``."""
        job = task.job
        weights = self.config.priority
        urgency = float(job.urgency) if self.config.use_urgency else 1.0
        temporal = job_temporal_factor(job)
        total = job.total_params_m
        size = task.partition_params_m / total if total > 0 else 1.0
        del weights  # Eq. 2 has no tunable weight; kept for symmetry
        return urgency * temporal * size

    def base_computation_priority(self, task: Task, now: float) -> float:
        """Eq. 4: ``P'_C = γ_d/(d_k - t) + γ_r/r_k + γ_w w_k`` (hours).

        Task deadline approximated by the job deadline; remaining time
        is remaining iterations times the task's per-iteration compute.
        """
        job = task.job
        w = self.config.priority
        slack_h = max(job.deadline - now, MIN_SLACK_SECONDS) / 3600.0
        remaining_s = max(
            job.remaining_iterations * max(task.compute_seconds, 1e-3),
            MIN_REMAINING_SECONDS,
        )
        remaining_h = remaining_s / 3600.0
        # Waiting time saturates (tanh over a 4 h scale): it provides
        # starvation resistance without drowning the deadline and
        # remaining-time terms under a deep backlog.  Eq. 4 leaves the
        # units of w_k unspecified; this is our normalization choice.
        waiting = math.tanh(task.waiting_time(now) / (4.0 * 3600.0))
        # Deadline urgency applies only while the deadline is still
        # achievable (slack >= remaining work): boosting a job that can
        # no longer finish in time would waste capacity other jobs need
        # to meet *their* deadlines.
        deadline_term = 0.0
        if self.config.use_deadline and (job.deadline - now) >= remaining_s:
            deadline_term = w.gamma_d / slack_h
        return deadline_term + w.gamma_r / remaining_h + w.gamma_w * waiting

    # -- DAG propagation (Eqs. 3 and 5) --------------------------------------

    def _structure(self, job: Job) -> tuple[list[str], dict[str, list[str]]]:
        order = self._reverse_topo.get(job.job_id)
        children = self._children.get(job.job_id)
        if order is None or children is None:
            topo = list(nx.topological_sort(job.dag))
            order = list(reversed(topo))
            children = {node: list(job.dag.successors(node)) for node in topo}
            self._reverse_topo[job.job_id] = order
            self._children[job.job_id] = children
        return order, children

    def _propagate(self, job: Job, base: dict[str, float]) -> dict[str, float]:
        """``P_k = P'_k + γ Σ_{i ∈ child(k)} P_i`` in reverse topo order."""
        gamma = self.config.priority.gamma
        order, children = self._structure(job)
        out: dict[str, float] = {}
        for node in order:
            total = base.get(node, 0.0)
            for child in children[node]:
                total += gamma * out[child]
            out[node] = total
        return out

    # -- public API --------------------------------------------------------

    def job_priorities(self, job: Job, now: float) -> dict[str, float]:
        """Eq. 6 priorities for every task of one job.

        The propagated ML half is served from ``_ml_cache`` whenever the
        job's iteration count is unchanged since the last pass — the
        values are bit-identical to a fresh computation, so cached and
        uncached passes produce the same schedule.
        """
        alpha = self.config.priority.alpha if self.config.use_ml_features else 0.0
        cached = self._ml_cache.get(job.job_id)
        if cached is not None and cached[0] == job.iterations_completed:
            ml = cached[1]
        else:
            ml_base = {t.task_id: self.base_ml_priority(t) for t in job.tasks}
            ml = self._propagate(job, ml_base)
            self._ml_cache[job.job_id] = (job.iterations_completed, ml)
        comp_base = {
            t.task_id: self.base_computation_priority(t, now) for t in job.tasks
        }
        comp = self._propagate(job, comp_base)
        combined = {
            tid: alpha * ml[tid] + (1.0 - alpha) * comp[tid] for tid in ml
        }
        self._boost_parameter_server(job, combined)
        return combined

    def priorities(self, jobs: list[Job], now: float) -> dict[str, float]:
        """Eq. 6 priorities for every task of every job."""
        out: dict[str, float] = {}
        for job in jobs:
            out.update(self.job_priorities(job, now))
        return out

    def forget(self, job: Job) -> None:
        """Drop the cached structure and priorities of a finished job."""
        self._reverse_topo.pop(job.job_id, None)
        self._children.pop(job.job_id, None)
        self._ml_cache.pop(job.job_id, None)

    def _boost_parameter_server(self, job: Job, priorities: dict[str, float]) -> None:
        ps_ids = [t.task_id for t in job.tasks if t.is_parameter_server]
        if not ps_ids:
            return
        worker_max = max(
            (p for tid, p in priorities.items() if tid not in set(ps_ids)),
            default=0.0,
        )
        for tid in ps_ids:
            priorities[tid] = max(priorities[tid], worker_max * PS_PRIORITY_BOOST)


def make_calculator(
    config: Optional[MLFSConfig] = None,
    weights: Optional[PriorityWeights] = None,
) -> PriorityCalculator:
    """Build a calculator, optionally overriding just the Eq. 2–6 weights."""
    if config is None:
        config = MLFSConfig() if weights is None else MLFSConfig(priority=weights)
    config.validate()
    return PriorityCalculator(config=config)
