"""MLF-RL: ML-feature-based RL task scheduling (Section 3.4).

The RL scheduler keeps MLF-H's skeleton — priority-ordered task pool,
ideal-virtual-task migration selection — but delegates the *destination*
decision to a learned policy: for each task the candidate servers are
featurized (:mod:`repro.core.state`) and a softmax scoring network picks
one.  The policy is bootstrapped by imitating MLF-H's recorded decisions
and can be fine-tuned with REINFORCE on the Eq. 7 reward
(:mod:`repro.core.train`).

Beyond the imitated placement rule, MLF-RL orders tasks with a
*completion-lookahead* term the heuristic does not have (jobs whose
predicted remaining time fits within the next scheduling epoch are
boosted) — this is the mechanism by which "MLF-RL can better extract ML
job features … whereas MLF-H may not be able to set optimal parameter
values" shows up as lower JCT.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.config import MLFSConfig
from repro.core.mlf_h import _job_groups, completion_boosts, order_pool
from repro.core.overload import MigrationSelector
from repro.core.placement import PlacementEngine, TaskCommIndex
from repro.core.priority import PriorityCalculator
from repro.core.state import FEATURE_SIZE, StateFeaturizer
from repro.obs.observer import publish_priorities as _publish_priorities
from repro.obs.observer import span as _span
from repro.rl.policy import ScoringPolicy
from repro.rl.replay import Decision, Trajectory
from repro.sim.interface import (
    Eviction,
    Migration,
    Placement,
    Scheduler,
    SchedulerDecision,
    SchedulingContext,
)
from repro.sim.shadow import ShadowCluster
from repro.workload.job import Job, Task


@dataclass
class MLFRLScheduler(Scheduler):
    """The RL scheduler of Section 3.4.

    Parameters
    ----------
    config:
        The MLFS parameterization (``η``, thresholds, ablations).
    policy:
        A trained :class:`ScoringPolicy`; when ``None`` the scheduler
        falls back to the heuristic placement rule (the pre-switch
        behaviour).
    explore:
        When true, actions are sampled from the softmax (training mode)
        and recorded into :attr:`trajectory`.
    completion_boost:
        Weight of the lookahead ordering bonus for jobs predicted to
        finish within the next epoch.
    epoch_seconds:
        The lookahead horizon (one scheduling epoch).
    """

    config: MLFSConfig = field(default_factory=MLFSConfig)
    policy: Optional[ScoringPolicy] = None
    explore: bool = False
    completion_boost: float = 0.5
    epoch_seconds: float = 1800.0
    name: str = "MLF-RL"

    # Same action space as MLF-H (placements/migrations/evictions, no
    # stops, no time-slicing): an empty queue with no overload yields an
    # empty decision, so event-driven passes may park (class attribute,
    # not a dataclass field — deliberately un-annotated).
    event_parkable = True

    calculator: PriorityCalculator = field(init=False)
    placement: PlacementEngine = field(init=False)
    migration: MigrationSelector = field(init=False)
    featurizer: StateFeaturizer = field(init=False)
    comm_index: TaskCommIndex = field(init=False)
    #: Exploration trajectory of the current episode (training mode).
    trajectory: Trajectory = field(default_factory=Trajectory, init=False)
    _finish_cache: dict[str, bool] = field(default_factory=dict, init=False, repr=False)

    def __post_init__(self) -> None:
        self.config.validate()
        self.comm_index = TaskCommIndex()
        self.calculator = PriorityCalculator(config=self.config)
        self.placement = PlacementEngine(config=self.config, comm_index=self.comm_index)
        self.migration = MigrationSelector(config=self.config, comm_index=self.comm_index)
        self.featurizer = StateFeaturizer(comm_index=self.comm_index)
        if self.policy is not None and self.policy.feature_size != FEATURE_SIZE:
            raise ValueError(
                f"policy feature size {self.policy.feature_size} != {FEATURE_SIZE}"
            )

    # -- Scheduler API ------------------------------------------------------

    def on_schedule(self, ctx: SchedulingContext) -> SchedulerDecision:
        decision = SchedulerDecision()
        self._finish_cache.clear()
        with _span("priority", jobs=len(ctx.active_jobs)):
            priorities = self.calculator.priorities(ctx.active_jobs, ctx.now)
            _publish_priorities(priorities)
        shadow = ShadowCluster(ctx.cluster)
        boost = completion_boosts(ctx.active_jobs)

        def score(task: Task) -> float:
            return self._order_score(task, priorities, ctx) * boost.get(
                task.job_id, 1.0
            )

        with _span("migration"):
            migration_candidates: list[Task] = []
            if self.config.enable_migration:
                for server in ctx.cluster.overloaded_servers(
                    self.config.overload_threshold
                ):
                    migration_candidates.extend(
                        self.migration.select(server, shadow, priorities)
                    )
            for task in order_pool(
                migration_candidates,
                {t.task_id: score(t) for t in migration_candidates},
            ):
                choice = self._choose_host(task, shadow, ctx)
                if choice is None:
                    decision.evictions.append(Eviction(task))
                    continue
                server_id, gpu_id = choice
                # The selector already committed the removal; record the
                # destination side of the move.
                shadow.commit_placement(task, server_id, gpu_id)
                decision.migrations.append(Migration(task, server_id, gpu_id))

        with _span("placement", queued=len(ctx.queue)):
            queue_scores = {t.task_id: score(t) for t in ctx.queue}
            ordered = order_pool(list(ctx.queue), queue_scores)
            decision.record_dequeue(ordered, queue_scores)
            for group in _job_groups(ordered):
                snapshot = shadow.snapshot()
                placements = []
                for task in group:
                    choice = self._choose_host(task, shadow, ctx)
                    if choice is None:
                        placements = None
                        break
                    server_id, gpu_id = choice
                    shadow.commit_placement(task, server_id, gpu_id)
                    placements.append(Placement(task, server_id, gpu_id))
                if placements is None:
                    shadow.restore(snapshot)
                else:
                    decision.placements.extend(placements)
        return decision

    def on_job_complete(self, job: Job, now: float) -> None:
        self.calculator.forget(job)
        self.comm_index.forget(job)

    def reset_trajectory(self) -> Trajectory:
        """Detach and return the recorded episode; start a fresh one."""
        finished = self.trajectory
        self.trajectory = Trajectory()
        return finished

    # -- internals -------------------------------------------------------------

    def _order_score(
        self, task: Task, priorities: dict[str, float], ctx: SchedulingContext
    ) -> float:
        score = priorities.get(task.task_id, 0.0)
        if self.completion_boost > 0.0 and self._finishes_within_epoch(task.job, ctx):
            score *= 1.0 + self.completion_boost
        return score

    def _finishes_within_epoch(self, job: Job, ctx: SchedulingContext) -> bool:
        cached = self._finish_cache.get(job.job_id)
        if cached is None:
            remaining = ctx.runtime_predictor.remaining_time(job)
            cached = 0.0 < remaining <= self.epoch_seconds
            self._finish_cache[job.job_id] = cached
        return cached

    def _choose_host(
        self, task: Task, shadow: ShadowCluster, ctx: SchedulingContext
    ) -> Optional[tuple[int, int]]:
        candidates = self.placement.candidate_servers(task, shadow)
        if not candidates:
            return None
        if self.policy is None or len(candidates) == 1:
            with _span("rl_inference", mode="fallback", candidates=len(candidates)):
                choice = self.placement.select_host(task, shadow, candidates=candidates)
            if choice is None:
                return None
            return choice.server_id, choice.gpu_id

        with _span("rl_inference", mode="policy", candidates=len(candidates)):
            features = self.featurizer.candidate_matrix(
                task, candidates, shadow, ctx.now
            )
            picked = self.policy.choose(features, greedy=not self.explore)
            server = candidates[picked.index]
            gpu_id = shadow.least_loaded_gpu(server)
        if self.explore:
            self.trajectory.add_step(
                Decision(
                    features=features,
                    chosen_index=picked.index,
                    log_prob=picked.log_prob,
                ),
                reward=0.0,  # per-step rewards are credited at episode end
            )
        return server.server_id, gpu_id
