"""Scheduling objectives (Eq. 1) and the RL reward (Eq. 7).

Equation 1 defines five objectives over a task-allocation plan ``A``:

* ``g1 = 1 / avg JCT``
* ``g2 = Σ 1(deadline met)``
* ``g3 = 1 / Σ bandwidth``
* ``g4 = Σ 1(accuracy met)``
* ``g5 = avg accuracy``

Equation 7 turns them into a scalar reward ``r_t = Σ β_i g_i(A)``.
Counts are normalized to ratios and JCT/bandwidth measured in hours/GB
so that the five terms live on comparable scales — otherwise a single
weight vector cannot trade them off (the same practical concern that
leads the paper to tune the β's).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.core.config import RewardWeights
from repro.workload.job import Job


@dataclass(frozen=True, slots=True)
class ObjectiveValues:
    """The five Eq. 1 objectives evaluated on a set of completed jobs."""

    inverse_avg_jct: float
    deadline_ratio: float
    inverse_bandwidth: float
    accuracy_met_ratio: float
    average_accuracy: float

    def as_tuple(self) -> tuple[float, float, float, float, float]:
        """``(g1, ..., g5)``."""
        return (
            self.inverse_avg_jct,
            self.deadline_ratio,
            self.inverse_bandwidth,
            self.accuracy_met_ratio,
            self.average_accuracy,
        )


def objective_values(
    completed_jobs: Sequence[Job], bandwidth_mb: float
) -> ObjectiveValues:
    """Evaluate ``g1..g5`` over completed jobs and consumed bandwidth."""
    jobs = [j for j in completed_jobs if j.completion_time is not None]
    if not jobs:
        return ObjectiveValues(0.0, 0.0, 0.0, 0.0, 0.0)
    jcts_h = [(j.completion_time - j.arrival_time) / 3600.0 for j in jobs]
    avg_jct = sum(jcts_h) / len(jcts_h)
    deadline_ratio = sum(1 for j in jobs if j.met_deadline()) / len(jobs)
    accuracy_ratio = sum(1 for j in jobs if j.met_accuracy()) / len(jobs)
    accuracies = [
        j.accuracy_at_deadline if j.accuracy_at_deadline is not None else j.final_accuracy
        for j in jobs
    ]
    bandwidth_gb = bandwidth_mb / 1024.0
    return ObjectiveValues(
        inverse_avg_jct=1.0 / avg_jct if avg_jct > 0 else 0.0,
        deadline_ratio=deadline_ratio,
        inverse_bandwidth=1.0 / bandwidth_gb if bandwidth_gb > 0 else 1.0,
        accuracy_met_ratio=accuracy_ratio,
        average_accuracy=sum(accuracies) / len(accuracies),
    )


def reward(values: ObjectiveValues, weights: RewardWeights) -> float:
    """Eq. 7: ``r_t = Σ β_i g_i``."""
    betas = weights.as_tuple()
    return sum(b * g for b, g in zip(betas, values.as_tuple()))


@dataclass
class RewardTracker:
    """Computes per-round rewards during online RL.

    "We compute the cumulative reward from t to t0 + tm as the reward
    of scheduling decision at time t0" (Section 3.4): the tracker is fed
    completed jobs and bandwidth increments as the simulation advances,
    and :meth:`reward_between` evaluates Eq. 7 over a window.
    """

    weights: RewardWeights = field(default_factory=RewardWeights)
    _completions: list[tuple[float, Job]] = field(default_factory=list)
    _bandwidth_events: list[tuple[float, float]] = field(default_factory=list)

    def note_completion(self, job: Job, now: float) -> None:
        """Record a job completion."""
        self._completions.append((now, job))

    def note_bandwidth(self, mb: float, now: float) -> None:
        """Record consumed cross-server bandwidth."""
        if mb > 0:
            self._bandwidth_events.append((now, mb))

    def reward_between(self, start: float, end: float) -> float:
        """Eq. 7 over the completions/bandwidth in ``[start, end]``."""
        jobs = [j for (t, j) in self._completions if start <= t <= end]
        bandwidth = sum(mb for (t, mb) in self._bandwidth_events if start <= t <= end)
        return reward(objective_values(jobs, bandwidth), self.weights)

    def prune(self, before: float) -> None:
        """Drop events older than ``before`` to bound memory."""
        self._completions = [(t, j) for (t, j) in self._completions if t >= before]
        self._bandwidth_events = [
            (t, mb) for (t, mb) in self._bandwidth_events if t >= before
        ]


def tune_reward_weights(
    evaluate: "callable[[RewardWeights], float]",
    base: Optional[RewardWeights] = None,
    coarse_rounds: int = 10,
    refine_fraction: float = 0.2,
    seed: int = 0,
) -> tuple[RewardWeights, float]:
    """Search for a good ``β`` combination (Section 3.4's tuning recipe).

    The paper first runs "a limited number of rounds (e.g., 10)" of
    global search, then "empirically tr[ies] different combinations by
    slightly varying each value".  We mirror that: ``coarse_rounds``
    random draws around the default, followed by one coordinate sweep
    perturbing each β by ``±refine_fraction``.

    ``evaluate`` maps a weight vector to the achieved Eq. 7 reward
    (higher is better) — typically a short simulation run.
    """
    import random as _random

    rng = _random.Random(seed)
    base = base or RewardWeights()
    best = base
    best_score = evaluate(base)

    def jitter(w: RewardWeights) -> RewardWeights:
        return RewardWeights(
            *(max(0.01, v * rng.uniform(0.5, 1.5)) for v in w.as_tuple())
        )

    for _ in range(coarse_rounds):
        candidate = jitter(base)
        score = evaluate(candidate)
        if score > best_score:
            best, best_score = candidate, score

    fields_ = list(best.as_tuple())
    for i in range(len(fields_)):
        for direction in (-1.0, 1.0):
            trial = list(fields_)
            trial[i] = max(0.01, trial[i] * (1.0 + direction * refine_fraction))
            candidate = RewardWeights(*trial)
            score = evaluate(candidate)
            if score > best_score:
                best, best_score = candidate, score
                fields_ = trial
    return best, best_score
