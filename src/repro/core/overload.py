"""Overloaded-server relief: migration-task selection (Section 3.3.3).

For an overloaded server MLF-H builds an *ideal virtual task to move
out* ``U_v``: for each overloaded resource the component is the maximum
utilization among the server's tasks (move out a heavy consumer of the
hot resource); for each underloaded resource the minimum (disturb the
cold resources least); the bandwidth component is 0 (moving the task
should sever no co-located communication).  The task closest to the
ideal migrates; the process repeats until the server is no longer
overloaded.

Two ML-feature refinements from the paper:

* high-priority tasks must not be selected — when GPUs are overloaded,
  candidates come only from the lowest-priority ``p_s`` fraction of the
  tasks on the overloaded GPUs;
* per-GPU overload is relieved first, then server-level overload.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.cluster.resources import ResourceKind
from repro.cluster.server import Server
from repro.core.config import MLFSConfig
from repro.core.placement import TaskCommIndex
from repro.sim.shadow import ShadowCluster
from repro.workload.job import Task


@dataclass
class OverloadTracker:
    """EWMA-smoothed cluster overload degree ``O_c`` (Section 3.5).

    The instantaneous ``O_c = (1/|N|) * Σ_s ||U_s||`` is noisy round to
    round (placements land, iterations finish).  Admission control in the
    service layer compares a smoothed value against ``h_s`` so that a
    single hot round does not flap the admission gate: accept/reject
    decisions follow the sustained overload level, not one sample.
    """

    #: EWMA weight of the newest sample; 1.0 disables smoothing.
    alpha: float = 0.5
    value: float = 0.0
    _primed: bool = field(default=False, repr=False)

    def observe(self, degree: float) -> float:
        """Fold in one ``O_c`` sample; returns the smoothed value."""
        if not self._primed:
            self.value = degree
            self._primed = True
        else:
            self.value = self.alpha * degree + (1.0 - self.alpha) * self.value
        return self.value

    def exceeds(self, threshold: float) -> bool:
        """Whether the smoothed overload degree is above ``h_s``."""
        return self._primed and self.value > threshold


@dataclass
class MigrationSelector:
    """Chooses which tasks leave an overloaded server."""

    config: MLFSConfig
    comm_index: TaskCommIndex = field(default_factory=TaskCommIndex)

    def select(
        self,
        server: Server,
        shadow: ShadowCluster,
        priorities: dict[str, float],
        max_tasks: int = 64,
    ) -> list[Task]:
        """Pick migration tasks until the server is not overloaded.

        The selections are committed to ``shadow`` as removals (they are
        "virtually moved to the queue"); the caller decides where each
        selected task actually goes.
        """
        selected: list[Task] = []
        threshold = self.config.overload_threshold
        while len(selected) < max_tasks and shadow.is_overloaded(server, threshold):
            remaining = [
                t
                for t in server.tasks()
                if shadow.task_location(t) == server.server_id
            ]
            if not remaining:
                break
            pool = self._candidate_pool(server, shadow, remaining, priorities)
            victim = self._closest_to_ideal_task(server, shadow, pool)
            shadow.commit_removal(victim)
            selected.append(victim)
        return selected

    # -- candidate pools ------------------------------------------------------

    def _candidate_pool(
        self,
        server: Server,
        shadow: ShadowCluster,
        remaining: list[Task],
        priorities: dict[str, float],
    ) -> list[Task]:
        """The paper's ``p_s`` rule.

        While some GPU is overloaded: order that GPU's tasks by ascending
        priority and keep the bottom ``p_s`` fraction.  Otherwise all of
        the server's tasks are candidates.
        """
        threshold = self.config.overload_threshold
        hot_gpus = [
            g.gpu_id
            for g in server.gpus
            if shadow.gpu_utilization(server, g.gpu_id) > threshold
        ]
        if hot_gpus:
            hot_set = set(hot_gpus)
            on_hot = [t for t in remaining if t.gpu_id in hot_set]
            if on_hot:
                on_hot.sort(key=lambda t: (priorities.get(t.task_id, 0.0), t.task_id))
                count = max(
                    1,
                    int(math.ceil(len(on_hot) * self.config.migration_candidate_fraction)),
                )
                return on_hot[:count]
        return remaining

    # -- ideal virtual task ------------------------------------------------------

    def _closest_to_ideal_task(
        self, server: Server, shadow: ShadowCluster, pool: list[Task]
    ) -> Task:
        threshold = self.config.overload_threshold
        server_util = shadow.utilization(server)
        capacity = server.capacity

        def task_util(task: Task) -> list[float]:
            return [
                task.demand[kind] / capacity[kind] if capacity[kind] else 0.0
                for kind in ResourceKind
            ]

        utils = {t.task_id: task_util(t) for t in pool}
        ideal = []
        for kind in ResourceKind:
            values = [utils[t.task_id][int(kind)] for t in pool]
            if server_util[kind] > threshold:
                ideal.append(max(values))
            else:
                ideal.append(min(values))

        use_bw = self.config.use_bandwidth
        volumes = {}
        max_volume = 0.0
        if use_bw:
            for task in pool:
                volume = self.comm_index.volume_to_server(
                    task, server.server_id, shadow
                )
                volumes[task.task_id] = volume
                max_volume = max(max_volume, volume)

        best = pool[0]
        best_distance = math.inf
        for task in pool:
            distance_sq = sum(
                (u - i) ** 2 for u, i in zip(utils[task.task_id], ideal)
            )
            if use_bw and max_volume > 0:
                # Ideal communication-to-server volume is 0: migrating a
                # chatty task away creates new cross-server traffic.
                distance_sq += (volumes[task.task_id] / max_volume) ** 2
            distance = math.sqrt(distance_sq)
            if distance < best_distance - 1e-12:
                best_distance = distance
                best = task
        return best
