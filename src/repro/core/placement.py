"""RIAL-style host selection for tasks (Section 3.3.2).

To place a task, MLF-H builds an *ideal virtual host server*

``U_V = (u_1,V, ..., u_M,V, u_BW,V, q_k,V)``

whose resource components are the minimum utilizations among the
underloaded servers, whose bandwidth component is the *maximum*
task↔server communication volume (so that high-volume communicating
tasks co-locate), and whose movement-degradation component ``q`` is 0.
The candidate closest to the ideal by Euclidean distance — and that
would not be overloaded by hosting the task — wins; the task then goes
to the server's least-loaded GPU.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.cluster.cluster import Cluster
from repro.cluster.server import Server
from repro.core.config import MLFSConfig
from repro.sim.network import job_links
from repro.sim.shadow import ShadowCluster
from repro.workload.job import Job, Task


@dataclass(frozen=True, slots=True)
class HostChoice:
    """Outcome of host selection for one task."""

    server_id: int
    gpu_id: int
    distance: float


@dataclass
class TaskCommIndex:
    """Per-task communication peers, cached per job.

    For task ``k`` the index stores ``[(peer_task, volume_mb), ...]``
    across dependency edges and sync links, enabling O(peers) queries of
    the task↔server communication volume.

    The cache is built lazily per job and must be **invalidated on job
    completion** via :meth:`forget` (every scheduler holding an index
    calls it from ``on_job_complete``) — otherwise long sweeps and the
    service daemon's unbounded job stream grow it without bound.
    """

    _peers: dict[str, list[tuple[Task, float]]] = field(default_factory=dict)
    _indexed_jobs: set[str] = field(default_factory=set)

    def _index_job(self, job: Job) -> None:
        if job.job_id in self._indexed_jobs:
            return
        for link in job_links(job):
            self._peers.setdefault(link.src.task_id, []).append(
                (link.dst, link.volume_mb)
            )
            self._peers.setdefault(link.dst.task_id, []).append(
                (link.src, link.volume_mb)
            )
        self._indexed_jobs.add(job.job_id)

    def volume_to_server(
        self, task: Task, server_id: int, shadow: ShadowCluster
    ) -> float:
        """Communication volume between ``task`` and tasks on ``server_id``."""
        self._index_job(task.job)
        total = 0.0
        for peer, volume in self._peers.get(task.task_id, []):
            if shadow.task_location(peer) == server_id:
                total += volume
        return total

    def forget(self, job: Job) -> None:
        """Drop the index of a finished job."""
        if job.job_id in self._indexed_jobs:
            for task in job.tasks:
                self._peers.pop(task.task_id, None)
            self._indexed_jobs.discard(job.job_id)

    def __len__(self) -> int:
        """Number of jobs currently indexed (leak checks in tests)."""
        return len(self._indexed_jobs)


@dataclass
class PlacementIndex:
    """Servers partitioned by free GPU capacity, maintained incrementally.

    The candidate scan used to visit every server per task — O(servers)
    ``would_overload`` evaluations, the dominant cost of a dense pass at
    Philly scale, where most servers are GPU-full and reject every
    probe.  This index buckets servers by free GPU capacity under the
    overload threshold in :data:`GRANULARITY`-ths of a GPU — task
    demands are fractional (a parameter-server task asks ~0.05 GPU, a
    worker ~0.4–0.85), so whole-GPU buckets would put every loaded
    server in bucket 0 and prune nothing.  Heterogeneous capacity
    classes fall out naturally: each server buckets by its *own*
    ``threshold * capacity.gpu - load.gpu``.  A task demanding ``d``
    GPUs only examines buckets ``>= floor(d * GRANULARITY - 1e-6)`` —
    GPU-full servers are never touched.

    Exactness contract — the bucket prefilter may **over**-include
    (every survivor is re-checked with the full multi-resource
    ``would_overload``) but must never wrongly exclude:

    * live loads: a server that can host ``d`` has free GPU ``>= d`` up
      to division-vs-subtraction rounding (~1e-13), hence sits in a
      bucket the query visits (the ``1e-6`` cushion in the lower bound
      concedes far more margin than any float noise);
    * tentative state: any server touched by this round's shadow
      commits (an eviction can *free* capacity the live view lacks) is
      unioned into the result via
      :meth:`~repro.sim.shadow.ShadowCluster.delta_server_ids`;
    * failures: a crashed server keeps its stale bucket (failure does
      not bump ``load_version``) — harmless, ``would_overload`` rejects
      it.

    Candidates are returned in ``server_id`` order — identical to the
    ``cluster.servers`` scan order — so downstream tie-breaks
    (:meth:`PlacementEngine._closest_to_ideal` keeps the first minimum;
    the RL recorder stores positional ``chosen_index``) are unchanged.

    Maintenance rides :attr:`repro.cluster.server.Server.load_version`:
    :meth:`refresh` is an O(servers) integer sweep that re-buckets only
    servers whose version moved — called once per scheduling pass (live
    loads are frozen while a pass runs), not once per task.
    """

    #: Buckets per whole GPU of free capacity (1/20 GPU resolution —
    #: finer than the smallest task demand, coarse enough that the
    #: per-query bucket walk stays trivial).
    GRANULARITY = 20

    cluster: Cluster
    threshold: float
    _buckets: list[set[int]] = field(init=False, repr=False)
    _bucket_of: list[int] = field(init=False, repr=False)
    _versions: list[int] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        servers = self.cluster.servers
        top = 0
        for server in servers:
            top = max(
                top, int(self.threshold * server.capacity.gpu * self.GRANULARITY) + 1
            )
        self._buckets = [set() for _ in range(top + 1)]
        self._bucket_of = [-1] * len(servers)
        self._versions = [-1] * len(servers)
        for server in servers:
            self._rebucket(server)

    def _bucket_index(self, server: Server) -> int:
        free = self.threshold * server.capacity.gpu - server.load.gpu
        if free < 0.0:
            free = 0.0
        bucket = int(free * self.GRANULARITY)
        last = len(self._buckets) - 1
        return bucket if bucket < last else last

    def _rebucket(self, server: Server) -> None:
        sid = server.server_id
        bucket = self._bucket_index(server)
        old = self._bucket_of[sid]
        if old != bucket:
            if old >= 0:
                self._buckets[old].discard(sid)
            self._buckets[bucket].add(sid)
            self._bucket_of[sid] = bucket
        self._versions[sid] = server.load_version

    def refresh(self) -> None:
        """Re-bucket every server whose ``load_version`` moved."""
        versions = self._versions
        for server in self.cluster.servers:
            if versions[server.server_id] != server.load_version:
                self._rebucket(server)

    def candidate_ids(
        self, demand_gpu: float, shadow: Optional[ShadowCluster] = None
    ) -> list[int]:
        """Server ids that *may* host ``demand_gpu``, in id order.

        A superset of the true candidate set (see the exactness
        contract above); callers re-check each id with the full
        predicate.
        """
        low = int(demand_gpu * self.GRANULARITY - 1e-6)
        if low < 0:
            low = 0
        last = len(self._buckets) - 1
        if low > last:
            low = last
        # Buckets partition the servers, so plain extension is dedup-free;
        # only the shadow-delta union needs a membership check.
        ids: list[int] = []
        for bucket in self._buckets[low:]:
            ids.extend(bucket)
        if shadow is not None:
            delta = shadow.delta_server_ids()
            if delta:
                known = set(ids)
                ids.extend(sid for sid in delta if sid not in known)
        ids.sort()
        return ids


@dataclass
class PlacementEngine:
    """Selects host servers per the ideal-virtual-server rule."""

    config: MLFSConfig
    comm_index: TaskCommIndex = field(default_factory=TaskCommIndex)
    #: Pass-scoped candidate index (see :class:`PlacementIndex`).  Cache
    #: state only — dropped on pickle (shadow tokens are process-local).
    _index: Optional[PlacementIndex] = field(default=None, init=False, repr=False)
    _index_pass_token: int = field(default=-1, init=False, repr=False)

    def candidate_servers(
        self, task: Task, shadow: ShadowCluster
    ) -> list[Server]:
        """Underloaded servers that can host the task without overload.

        One ``would_overload`` check per *plausible* server: the
        free-GPU-bucketed :class:`PlacementIndex` prunes servers that
        cannot possibly fit the task's GPU demand, and the survivors
        get the exact multi-resource predicate (which subsumes the
        separate ``underloaded_servers`` pre-filter, since task demand
        is non-negative).  Bit-identical to the full
        :meth:`candidate_servers_scan` — the hypothesis suite pins the
        equivalence under arbitrary place/evict/fail sequences.

        The index refreshes once per scheduling pass (a new shadow
        means a new pass; live loads never move while a pass runs).
        Callers that mutate *live* server loads mid-shadow must build a
        fresh :class:`~repro.sim.shadow.ShadowCluster` afterwards.
        """
        threshold = self.config.overload_threshold
        cluster = shadow.cluster
        index = self._index
        if (
            index is None
            or index.cluster is not cluster
            or index.threshold != threshold
        ):
            index = PlacementIndex(cluster, threshold)
            self._index = index
            self._index_pass_token = shadow.token
        elif shadow.token != self._index_pass_token:
            index.refresh()
            self._index_pass_token = shadow.token
        server_of = cluster.server
        demand = task.demand
        would_overload = shadow.would_overload
        return [
            server
            for server in map(server_of, index.candidate_ids(demand.gpu, shadow))
            if not would_overload(server, demand, threshold)
        ]

    def candidate_servers_scan(
        self, task: Task, shadow: ShadowCluster
    ) -> list[Server]:
        """Brute-force candidate scan — the index's correctness oracle.

        Visits every server with the exact predicate; kept as the
        reference the property suite diffs :meth:`candidate_servers`
        against.
        """
        threshold = self.config.overload_threshold
        return [
            server
            for server in shadow.cluster.servers
            if not shadow.would_overload(server, task.demand, threshold)
        ]

    def __getstate__(self) -> dict[str, Any]:
        # Shadow tokens (the index freshness key) are process-local
        # counters; a restored engine rebuilds the index lazily.
        state = self.__dict__.copy()
        state["_index"] = None
        state["_index_pass_token"] = -1
        return state

    def __setstate__(self, state: dict[str, Any]) -> None:
        self.__dict__.update(state)

    def select_host(
        self,
        task: Task,
        shadow: ShadowCluster,
        movement_penalty: float = 0.0,
        candidates: Optional[list[Server]] = None,
    ) -> Optional[HostChoice]:
        """Pick the host closest to the ideal virtual server.

        ``movement_penalty`` is the normalized performance degradation
        ``q`` of moving this task (0 for fresh placements from the
        queue, positive for migrations).  ``candidates`` lets a caller
        that already computed :meth:`candidate_servers` for this task
        and shadow state skip the second scan.  Returns ``None`` when
        no underloaded server can host the task.
        """
        if candidates is None:
            candidates = self.candidate_servers(task, shadow)
        if not candidates:
            return None
        choice_id, distance = self._closest_to_ideal(
            task, candidates, shadow, movement_penalty
        )
        server = shadow.cluster.server(choice_id)
        gpu_id = shadow.least_loaded_gpu(server)
        return HostChoice(server_id=choice_id, gpu_id=gpu_id, distance=distance)

    def _closest_to_ideal(
        self,
        task: Task,
        candidates: list[Server],
        shadow: ShadowCluster,
        movement_penalty: float,
    ) -> tuple[int, float]:
        # Plain tuples and an unrolled distance loop: this runs for every
        # candidate of every task placement and is the RIAL hot path at
        # Philly scale, so it avoids genexpr/sum overhead per server.
        utils = {s.server_id: shadow.utilization_tuple(s) for s in candidates}
        first = utils[candidates[0].server_id]
        ideal_0, ideal_1, ideal_2, ideal_3 = first
        for util in utils.values():
            if util[0] < ideal_0:
                ideal_0 = util[0]
            if util[1] < ideal_1:
                ideal_1 = util[1]
            if util[2] < ideal_2:
                ideal_2 = util[2]
            if util[3] < ideal_3:
                ideal_3 = util[3]
        use_bw = self.config.use_bandwidth
        volumes = {}
        max_volume = 0.0
        if use_bw:
            for server in candidates:
                volume = self.comm_index.volume_to_server(
                    task, server.server_id, shadow
                )
                volumes[server.server_id] = volume
                max_volume = max(max_volume, volume)

        penalty_sq = movement_penalty**2
        best_id = candidates[0].server_id
        best_distance = math.inf
        for server in candidates:
            u0, u1, u2, u3 = utils[server.server_id]
            d0 = u0 - ideal_0
            d1 = u1 - ideal_1
            d2 = u2 - ideal_2
            d3 = u3 - ideal_3
            distance_sq = d0 * d0 + d1 * d1 + d2 * d2 + d3 * d3
            if use_bw and max_volume > 0:
                # Ideal = the maximum volume (normalized to 1): servers
                # hosting more of the task's communication peers are
                # closer to the ideal.
                normalized = volumes[server.server_id] / max_volume
                distance_sq += (normalized - 1.0) ** 2
            distance = math.sqrt(distance_sq + penalty_sq)
            if distance < best_distance - 1e-12:
                best_distance = distance
                best_id = server.server_id
        return best_id, best_distance
