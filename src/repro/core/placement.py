"""RIAL-style host selection for tasks (Section 3.3.2).

To place a task, MLF-H builds an *ideal virtual host server*

``U_V = (u_1,V, ..., u_M,V, u_BW,V, q_k,V)``

whose resource components are the minimum utilizations among the
underloaded servers, whose bandwidth component is the *maximum*
task↔server communication volume (so that high-volume communicating
tasks co-locate), and whose movement-degradation component ``q`` is 0.
The candidate closest to the ideal by Euclidean distance — and that
would not be overloaded by hosting the task — wins; the task then goes
to the server's least-loaded GPU.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

from repro.cluster.server import Server
from repro.core.config import MLFSConfig
from repro.sim.network import job_links
from repro.sim.shadow import ShadowCluster
from repro.workload.job import Job, Task


@dataclass(frozen=True, slots=True)
class HostChoice:
    """Outcome of host selection for one task."""

    server_id: int
    gpu_id: int
    distance: float


@dataclass
class TaskCommIndex:
    """Per-task communication peers, cached per job.

    For task ``k`` the index stores ``[(peer_task, volume_mb), ...]``
    across dependency edges and sync links, enabling O(peers) queries of
    the task↔server communication volume.

    The cache is built lazily per job and must be **invalidated on job
    completion** via :meth:`forget` (every scheduler holding an index
    calls it from ``on_job_complete``) — otherwise long sweeps and the
    service daemon's unbounded job stream grow it without bound.
    """

    _peers: dict[str, list[tuple[Task, float]]] = field(default_factory=dict)
    _indexed_jobs: set[str] = field(default_factory=set)

    def _index_job(self, job: Job) -> None:
        if job.job_id in self._indexed_jobs:
            return
        for link in job_links(job):
            self._peers.setdefault(link.src.task_id, []).append(
                (link.dst, link.volume_mb)
            )
            self._peers.setdefault(link.dst.task_id, []).append(
                (link.src, link.volume_mb)
            )
        self._indexed_jobs.add(job.job_id)

    def volume_to_server(
        self, task: Task, server_id: int, shadow: ShadowCluster
    ) -> float:
        """Communication volume between ``task`` and tasks on ``server_id``."""
        self._index_job(task.job)
        total = 0.0
        for peer, volume in self._peers.get(task.task_id, []):
            if shadow.task_location(peer) == server_id:
                total += volume
        return total

    def forget(self, job: Job) -> None:
        """Drop the index of a finished job."""
        if job.job_id in self._indexed_jobs:
            for task in job.tasks:
                self._peers.pop(task.task_id, None)
            self._indexed_jobs.discard(job.job_id)

    def __len__(self) -> int:
        """Number of jobs currently indexed (leak checks in tests)."""
        return len(self._indexed_jobs)


@dataclass
class PlacementEngine:
    """Selects host servers per the ideal-virtual-server rule."""

    config: MLFSConfig
    comm_index: TaskCommIndex = field(default_factory=TaskCommIndex)

    def candidate_servers(
        self, task: Task, shadow: ShadowCluster
    ) -> list[Server]:
        """Underloaded servers that can host the task without overload.

        One shadow scan suffices: task demand is non-negative, so a
        server that stays under the threshold *with* the task hosted is
        necessarily underloaded without it — ``would_overload`` subsumes
        the separate ``underloaded_servers`` pre-filter the hot path
        used to pay for.
        """
        threshold = self.config.overload_threshold
        return [
            server
            for server in shadow.cluster.servers
            if not shadow.would_overload(server, task.demand, threshold)
        ]

    def select_host(
        self,
        task: Task,
        shadow: ShadowCluster,
        movement_penalty: float = 0.0,
        candidates: Optional[list[Server]] = None,
    ) -> Optional[HostChoice]:
        """Pick the host closest to the ideal virtual server.

        ``movement_penalty`` is the normalized performance degradation
        ``q`` of moving this task (0 for fresh placements from the
        queue, positive for migrations).  ``candidates`` lets a caller
        that already computed :meth:`candidate_servers` for this task
        and shadow state skip the second scan.  Returns ``None`` when
        no underloaded server can host the task.
        """
        if candidates is None:
            candidates = self.candidate_servers(task, shadow)
        if not candidates:
            return None
        choice_id, distance = self._closest_to_ideal(
            task, candidates, shadow, movement_penalty
        )
        server = shadow.cluster.server(choice_id)
        gpu_id = shadow.least_loaded_gpu(server)
        return HostChoice(server_id=choice_id, gpu_id=gpu_id, distance=distance)

    def _closest_to_ideal(
        self,
        task: Task,
        candidates: list[Server],
        shadow: ShadowCluster,
        movement_penalty: float,
    ) -> tuple[int, float]:
        # Plain tuples and an unrolled distance loop: this runs for every
        # candidate of every task placement and is the RIAL hot path at
        # Philly scale, so it avoids genexpr/sum overhead per server.
        utils = {s.server_id: shadow.utilization_tuple(s) for s in candidates}
        first = utils[candidates[0].server_id]
        ideal_0, ideal_1, ideal_2, ideal_3 = first
        for util in utils.values():
            if util[0] < ideal_0:
                ideal_0 = util[0]
            if util[1] < ideal_1:
                ideal_1 = util[1]
            if util[2] < ideal_2:
                ideal_2 = util[2]
            if util[3] < ideal_3:
                ideal_3 = util[3]
        use_bw = self.config.use_bandwidth
        volumes = {}
        max_volume = 0.0
        if use_bw:
            for server in candidates:
                volume = self.comm_index.volume_to_server(
                    task, server.server_id, shadow
                )
                volumes[server.server_id] = volume
                max_volume = max(max_volume, volume)

        penalty_sq = movement_penalty**2
        best_id = candidates[0].server_id
        best_distance = math.inf
        for server in candidates:
            u0, u1, u2, u3 = utils[server.server_id]
            d0 = u0 - ideal_0
            d1 = u1 - ideal_1
            d2 = u2 - ideal_2
            d3 = u3 - ideal_3
            distance_sq = d0 * d0 + d1 * d1 + d2 * d2 + d3 * d3
            if use_bw and max_volume > 0:
                # Ideal = the maximum volume (normalized to 1): servers
                # hosting more of the task's communication peers are
                # closer to the ideal.
                normalized = volumes[server.server_id] / max_volume
                distance_sq += (normalized - 1.0) ** 2
            distance = math.sqrt(distance_sq + penalty_sq)
            if distance < best_distance - 1e-12:
                best_distance = distance
                best_id = server.server_id
        return best_id, best_distance
