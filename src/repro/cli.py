"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``trace``    Generate a synthetic Philly-like trace CSV; subcommands
             ``dump`` (collect a cluster-wide Chrome trace over the
             ``trace_dump`` verb) and ``analyze`` (critical-path
             latency breakdown of a merged trace).
``run``      Run one scheduler over a trace and print its summary.
``compare``  Run several schedulers over the same trace and emit a
             Markdown report.
``serve``    Run the online scheduler daemon on a local socket.
``submit``   Submit one job to a running daemon.
``ctl``      Control a running daemon (status/metrics/drain/cancel/...).
``top``      Live terminal view over a gateway's aggregated metrics.
``report``   Render a telemetry JSONL file (or a gateway telemetry
             directory) as summary tables.
``sweep``    Run a (possibly parallel) experiment sweep via ``repro.api``.
``lint``     Run the repo-specific determinism/hygiene lint.
``analyze``  Run the whole-program analyzer (async-safety, protocol
             drift, snapshot picklability, determinism taint).
``typecheck`` Run the strict-typing gate (mypy or the AST fallback).

Examples
--------
::

    python -m repro trace --jobs 200 --hours 2 --out trace.csv
    python -m repro run --trace trace.csv --scheduler MLFS --servers 8
    python -m repro compare --trace trace.csv --servers 8 \
        --schedulers MLFS,Tiresias,Graphene --out report.md
    python -m repro serve --socket /tmp/repro.sock --servers 8 \
        --telemetry telemetry.jsonl --trace trace.chrome.json
    python -m repro submit --socket /tmp/repro.sock --model resnet --gpus 4
    python -m repro ctl --socket /tmp/repro.sock metrics --format prom
    python -m repro ctl --socket /tmp/repro.sock history job-0001
    python -m repro run --trace trace.csv --scheduler MLF-H --faults plan.json
    python -m repro ctl --socket /tmp/repro.sock faultctl server_crash --server 2
    python -m repro report telemetry.jsonl
    python -m repro report gateway-run            # per-worker directory
    python -m repro trace dump --target 127.0.0.1:7463 --out cluster.json
    python -m repro trace analyze cluster.json
    python -m repro top --target 127.0.0.1:7463 --once
    python -m repro sweep --schedulers MLF-H,Tiresias --seeds 0,1 \
        --jobs 60 --workers 2 --out sweep.json
    python -m repro sweep --grid grid.json --workers 4 --cache-dir .sweep-cache
    python -m repro lint src --format json
    python -m repro lint tests --select REP003,REP004,REP006 \
        --exclude tests/fixtures
    python -m repro lint --explain REP006
    python -m repro analyze src --format sarif --out analyze.sarif
    python -m repro analyze --explain REP100
    python -m repro typecheck
"""

from __future__ import annotations

import argparse
import asyncio
import functools
import json
import sys
from typing import Optional, Sequence

from repro.analysis.report import render_report
from repro.cluster import Cluster
from repro.schedulers import SCHEDULER_FACTORIES, scheduler_by_name
from repro.sim import EngineConfig, SimulationSetup, run_comparison, run_simulation
from repro.workload import generate_trace, read_trace, write_trace

__all__ = ["SCHEDULER_FACTORIES", "scheduler_by_name", "build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro", description="MLFS (CoNEXT'20) reproduction toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_trace = sub.add_parser(
        "trace",
        help="generate a synthetic trace CSV, or dump/analyze cluster traces",
    )
    p_trace.add_argument("--jobs", type=int, default=100)
    p_trace.add_argument("--hours", type=float, default=2.0)
    p_trace.add_argument("--seed", type=int, default=0)
    p_trace.add_argument("--out", default="trace.csv")
    # ``repro trace`` with no subcommand keeps its original meaning
    # (generate a workload CSV); the subcommands below are the
    # distributed-tracing surface.
    trace_sub = p_trace.add_subparsers(dest="trace_command")
    p_tdump = trace_sub.add_parser(
        "dump", help="collect a merged Chrome trace from a gateway or daemon"
    )
    p_tdump.add_argument(
        "--target",
        default="127.0.0.1:7463",
        help="gateway/daemon target (host:port, tcp://, unix:// or a path)",
    )
    p_tdump.add_argument(
        "--deterministic",
        action="store_true",
        help="canonical span order + ordinal timestamps (bit-reproducible)",
    )
    p_tdump.add_argument(
        "--reset", action="store_true", help="clear stored spans after dumping"
    )
    p_tdump.add_argument("--out", default=None, help="write the JSON here (default stdout)")
    p_tana = trace_sub.add_parser(
        "analyze", help="critical-path latency breakdown of a merged trace"
    )
    p_tana.add_argument(
        "source",
        nargs="?",
        default=None,
        help="merged Chrome-trace JSON path (or use --target for a live dump)",
    )
    p_tana.add_argument(
        "--target",
        default=None,
        help="fetch a live trace_dump from this gateway/daemon instead",
    )
    p_tana.add_argument("--precision", type=int, default=3)
    p_tana.add_argument(
        "--json", action="store_true", help="emit the analysis as JSON"
    )

    common = argparse.ArgumentParser(add_help=False)
    common.add_argument("--trace", required=True, help="trace CSV path")
    common.add_argument("--servers", type=int, default=8)
    common.add_argument("--gpus-per-server", type=int, default=4)
    common.add_argument("--seed", type=int, default=0)
    common.add_argument("--tick-seconds", type=float, default=60.0)
    common.add_argument(
        "--faults", default=None, help="fault-injection plan JSON (repro.faults)"
    )

    p_run = sub.add_parser("run", parents=[common], help="run one scheduler")
    p_run.add_argument("--scheduler", default="MLFS")

    p_cmp = sub.add_parser("compare", parents=[common], help="compare schedulers")
    p_cmp.add_argument(
        "--schedulers",
        default="MLFS,MLF-H,Tiresias,Graphene,TensorFlow",
        help="comma-separated scheduler names",
    )
    p_cmp.add_argument("--out", default=None, help="write the Markdown report here")

    p_serve = sub.add_parser("serve", help="run the online scheduler daemon")
    p_serve.add_argument("--socket", default="repro-service.sock")
    p_serve.add_argument("--scheduler", default="MLF-H")
    p_serve.add_argument("--servers", type=int, default=8)
    p_serve.add_argument("--gpus-per-server", type=int, default=4)
    p_serve.add_argument("--tick-seconds", type=float, default=60.0)
    p_serve.add_argument("--seed", type=int, default=0)
    p_serve.add_argument(
        "--round-interval",
        type=float,
        default=1.0,
        help="real seconds between scheduler rounds (0 = only on drain)",
    )
    p_serve.add_argument("--admission-policy", choices=["queue", "reject"], default="queue")
    p_serve.add_argument("--admission-threshold", type=float, default=0.90)
    p_serve.add_argument("--snapshot-dir", default=None)
    p_serve.add_argument("--snapshot-every", type=int, default=10, help="rounds")
    p_serve.add_argument("--telemetry", default=None, help="telemetry JSONL path")
    p_serve.add_argument(
        "--telemetry-obs",
        choices=["full", "deterministic", "none"],
        default="full",
        help="obs snapshot embedded per telemetry record"
        " (deterministic = drop wall-clock families)",
    )
    p_serve.add_argument(
        "--trace",
        default=None,
        help="write a Chrome-trace JSON of scheduler-phase spans here on shutdown",
    )
    p_serve.add_argument(
        "--rl-switch-decisions",
        type=int,
        default=None,
        help="override the MLF family's heuristic-to-RL switch threshold",
    )
    p_serve.add_argument(
        "--restore",
        action="store_true",
        help="resume from the newest snapshot in --snapshot-dir",
    )
    p_serve.add_argument(
        "--sanitize",
        action="store_true",
        help="audit runtime invariants after every round (repro.check.sanitize)",
    )
    p_serve.add_argument(
        "--faults",
        default=None,
        help="fault-injection plan JSON applied by round index (repro.faults)",
    )
    p_serve.add_argument(
        "--pass-policy",
        choices=["fixed", "event"],
        default="fixed",
        help="scheduling-pass cadence: fixed tick or event-driven"
        " (park passes that are provably no-ops)",
    )

    p_sub = sub.add_parser("submit", help="submit one job to a running daemon")
    p_sub.add_argument("--socket", default="repro-service.sock")
    p_sub.add_argument("--model", default="alexnet")
    p_sub.add_argument("--gpus", type=int, default=4)
    p_sub.add_argument("--iterations", type=int, default=20)
    p_sub.add_argument("--accuracy", type=float, default=0.8)
    p_sub.add_argument("--urgency", type=int, default=5)
    p_sub.add_argument("--data-mb", type=float, default=500.0)
    p_sub.add_argument("--job-id", default=None)
    p_sub.add_argument(
        "--wait", action="store_true", help="block until the job is terminal"
    )
    p_sub.add_argument("--timeout", type=float, default=300.0)

    p_ctl = sub.add_parser("ctl", help="control a running daemon or gateway")
    p_ctl.add_argument(
        "--socket",
        default="repro-service.sock",
        help="Unix socket path, or a host:port / tcp:// gateway target",
    )
    p_ctl.add_argument(
        "--format",
        choices=["json", "prom"],
        default="json",
        help="metrics output format (prom = Prometheus text exposition)",
    )
    p_ctl.add_argument(
        "verb",
        choices=[
            "status",
            "metrics",
            "history",
            "drain",
            "step",
            "cancel",
            "snapshot",
            "ping",
            "workers",
            "gossip",
            "shutdown",
            "faultctl",
        ],
    )
    p_ctl.add_argument(
        "job_id",
        nargs="?",
        default=None,
        help="for status/cancel/history; the action for faultctl",
    )
    p_ctl.add_argument(
        "--server", type=int, default=None, help="faultctl target server id"
    )
    p_ctl.add_argument(
        "--gpu", type=int, default=None, help="faultctl target GPU id"
    )
    p_ctl.add_argument(
        "--slowdown",
        type=float,
        default=None,
        help="faultctl straggler_start iteration-time multiplier",
    )
    p_ctl.add_argument(
        "--rounds", type=int, default=None, help="step: scheduling passes to run"
    )
    p_ctl.add_argument(
        "--until",
        type=float,
        default=None,
        help="step: advance until the sim clock reaches this time (seconds)",
    )
    p_ctl.add_argument(
        "--events",
        type=int,
        default=None,
        help="step: advance until this many simulator events were processed",
    )

    p_gw = sub.add_parser(
        "gateway", help="run the sharded front tier over N scheduler daemons"
    )
    p_gw.add_argument("--workers", type=int, default=2)
    p_gw.add_argument(
        "--listen",
        default="127.0.0.1:7463",
        help="TCP host:port for client ingress ('' disables TCP)",
    )
    p_gw.add_argument(
        "--socket", default=None, help="also listen on this Unix socket"
    )
    p_gw.add_argument("--workdir", default="gateway-run")
    p_gw.add_argument(
        "--spawn", choices=["process", "thread"], default="process"
    )
    p_gw.add_argument("--ring-replicas", type=int, default=64)
    p_gw.add_argument("--ring-seed", type=int, default=0)
    p_gw.add_argument("--scheduler", default="MLF-H")
    p_gw.add_argument("--servers-per-worker", type=int, default=4)
    p_gw.add_argument("--gpus-per-server", type=int, default=4)
    p_gw.add_argument("--tick-seconds", type=float, default=60.0)
    p_gw.add_argument("--seed", type=int, default=0)
    p_gw.add_argument(
        "--round-interval",
        type=float,
        default=1.0,
        help="per-worker real seconds between rounds (0 = only on step/drain)",
    )
    p_gw.add_argument(
        "--admission-policy", choices=["queue", "reject"], default="queue"
    )
    p_gw.add_argument("--admission-threshold", type=float, default=0.90)
    p_gw.add_argument(
        "--global-threshold",
        type=float,
        default=None,
        help="cluster-wide h_s enforced at the gateway door (default: off)",
    )
    p_gw.add_argument("--global-alpha", type=float, default=0.5)
    p_gw.add_argument(
        "--gossip-interval",
        type=float,
        default=1.0,
        help="seconds between occupancy/health polls (0 disables)",
    )
    p_gw.add_argument(
        "--no-telemetry",
        action="store_true",
        help="do not write per-worker telemetry JSONL files",
    )
    p_gw.add_argument(
        "--telemetry-obs",
        choices=["full", "deterministic", "none"],
        default="deterministic",
    )
    p_gw.add_argument("--restart-limit", type=int, default=3)
    p_gw.add_argument(
        "--trace",
        action="store_true",
        help="record gateway + worker spans (collect with 'repro trace dump')",
    )

    p_lg = sub.add_parser(
        "loadgen", help="replay a seeded submission stream against a gateway"
    )
    p_lg.add_argument(
        "--target",
        default="127.0.0.1:7463",
        help="gateway/daemon target (host:port, tcp://, unix:// or a path)",
    )
    p_lg.add_argument("--count", type=int, default=10_000)
    p_lg.add_argument("--batch", type=int, default=200)
    p_lg.add_argument("--tenants", type=int, default=16)
    p_lg.add_argument("--seed", type=int, default=0)
    p_lg.add_argument("--timeout", type=float, default=120.0)
    p_lg.add_argument("--out", default=None, help="write the result JSON here")
    p_lg.add_argument(
        "--quiet", action="store_true", help="suppress progress lines on stderr"
    )
    p_lg.add_argument(
        "--trace",
        action="store_true",
        help="stamp payloads with deterministic client-side trace ids",
    )

    p_top = sub.add_parser(
        "top", help="live terminal view over a gateway's aggregated metrics"
    )
    p_top.add_argument(
        "--target",
        default="127.0.0.1:7463",
        help="gateway target (host:port, tcp://, unix:// or a path)",
    )
    p_top.add_argument(
        "--interval", type=float, default=2.0, help="seconds between refreshes"
    )
    p_top.add_argument(
        "--once", action="store_true", help="print one frame and exit"
    )

    p_report = sub.add_parser(
        "report",
        help="render telemetry (a JSONL file, or a gateway telemetry"
        " directory of worker-*/telemetry.jsonl files) as summary tables",
    )
    p_report.add_argument(
        "telemetry", help="telemetry JSONL path or gateway workdir"
    )
    p_report.add_argument(
        "--every", type=int, default=1, help="keep one per-round row in EVERY"
    )
    p_report.add_argument(
        "--no-rounds", action="store_true", help="only print the summary table"
    )

    p_sweep = sub.add_parser(
        "sweep", help="run an experiment sweep (repro.api.sweep)"
    )
    p_sweep.add_argument(
        "--grid", default=None, help="JSON grid file (repro.exp.Grid.to_json)"
    )
    p_sweep.add_argument(
        "--schedulers",
        default="MLF-H",
        help="comma-separated scheduler names (ignored with --grid)",
    )
    p_sweep.add_argument(
        "--seeds", default="0", help="comma-separated engine seeds (ignored with --grid)"
    )
    p_sweep.add_argument(
        "--jobs",
        default="100",
        help="comma-separated workload sizes (ignored with --grid)",
    )
    p_sweep.add_argument("--servers", type=int, default=8)
    p_sweep.add_argument("--gpus-per-server", type=int, default=4)
    p_sweep.add_argument("--hours", type=float, default=2.0)
    p_sweep.add_argument("--trace-seed", type=int, default=0)
    p_sweep.add_argument(
        "--deadline-hours", default=None, help="LO,HI uniform deadline range"
    )
    p_sweep.add_argument(
        "--workers",
        type=int,
        default=None,
        help="0 = serial; default = cpu_count() - 1",
    )
    p_sweep.add_argument(
        "--faults",
        default=None,
        help="fault-injection plan JSON applied to every spec (ignored with --grid)",
    )
    p_sweep.add_argument("--cache-dir", default=None, help="per-shard result cache")
    p_sweep.add_argument("--out", default=None, help="write merged results JSON here")
    p_sweep.add_argument(
        "--quiet", action="store_true", help="suppress progress lines on stderr"
    )

    p_lint = sub.add_parser(
        "lint", help="repo-specific determinism/hygiene lint (repro.check.lint)"
    )
    p_lint.add_argument("paths", nargs="*", default=["src"])
    p_lint.add_argument("--format", choices=["text", "json"], default="text")
    p_lint.add_argument(
        "--select",
        default=None,
        metavar="REPxxx,...",
        help="comma-separated rule ids to enforce (default: all)",
    )
    p_lint.add_argument(
        "--exclude",
        action="append",
        default=[],
        metavar="FRAGMENT",
        help="skip files whose path contains FRAGMENT (repeatable)",
    )
    p_lint.add_argument(
        "--explain",
        metavar="REPxxx",
        default=None,
        help="print one rule's rationale/scope/disable syntax and exit",
    )

    p_analyze = sub.add_parser(
        "analyze",
        help="whole-program analyzer: async-safety, protocol drift,"
        " snapshot picklability, determinism taint (repro.check.graph)",
    )
    p_analyze.add_argument("paths", nargs="*", default=["src"])
    p_analyze.add_argument(
        "--format", choices=["text", "json", "sarif"], default="text"
    )
    p_analyze.add_argument("--baseline", default=None)
    p_analyze.add_argument("--no-baseline", action="store_true")
    p_analyze.add_argument("--write-baseline", action="store_true")
    p_analyze.add_argument("--out", default=None)
    p_analyze.add_argument(
        "--explain",
        metavar="REPxxx",
        default=None,
        help="print one rule's rationale/scope/disable syntax and exit",
    )

    p_type = sub.add_parser(
        "typecheck", help="strict-typing gate (mypy, or the AST annotation fallback)"
    )
    p_type.add_argument("--src", default="src")
    p_type.add_argument("--no-mypy", action="store_true")
    return parser


def _setup_from_args(args) -> SimulationSetup:
    records = read_trace(args.trace)
    faults = None
    if getattr(args, "faults", None):
        from repro.faults import load_plan

        faults = load_plan(args.faults)
    return SimulationSetup(
        records=records,
        cluster_factory=lambda: Cluster.build(args.servers, args.gpus_per_server),
        workload_seed=args.seed,
        engine_config=EngineConfig(tick_seconds=args.tick_seconds),
        faults=faults,
    )


def cmd_trace(args) -> int:
    """Generate a synthetic trace CSV, or dump/analyze cluster traces."""
    command = getattr(args, "trace_command", None)
    if command == "dump":
        return _cmd_trace_dump(args)
    if command == "analyze":
        return _cmd_trace_analyze(args)
    records = generate_trace(
        args.jobs, duration_seconds=args.hours * 3600.0, seed=args.seed
    )
    count = write_trace(records, args.out)
    print(f"wrote {count} jobs to {args.out}")
    return 0


def cmd_run(args) -> int:
    """Run a single scheduler over a trace."""
    setup = _setup_from_args(args)
    result = run_simulation(scheduler_by_name(args.scheduler), setup)
    for key, value in result.summary().items():
        print(f"{key:24} {value:.3f}")
    return 0


def cmd_compare(args) -> int:
    """Compare schedulers over the same trace; emit a Markdown report."""
    setup = _setup_from_args(args)
    names = [n.strip() for n in args.schedulers.split(",") if n.strip()]
    schedulers = [scheduler_by_name(n) for n in names]
    results = run_comparison(schedulers, setup)
    report = render_report(results, title=f"Comparison on {args.trace}")
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(report)
        print(f"wrote {args.out}")
    else:
        print(report)
    return 0


def cmd_serve(args) -> int:
    """Run the scheduler daemon until shutdown (Ctrl-C or ``ctl shutdown``)."""
    from repro.service import ServiceConfig
    from repro.service.daemon import serve

    config = ServiceConfig(
        socket_path=args.socket,
        scheduler=args.scheduler,
        servers=args.servers,
        gpus_per_server=args.gpus_per_server,
        tick_seconds=args.tick_seconds,
        seed=args.seed,
        round_interval=args.round_interval,
        admission_policy=args.admission_policy,
        admission_threshold=args.admission_threshold,
        snapshot_dir=args.snapshot_dir,
        snapshot_every=args.snapshot_every,
        telemetry_path=args.telemetry,
        trace_path=args.trace,
        rl_switch_decisions=args.rl_switch_decisions,
        sanitize=True if args.sanitize else None,
        faults_path=args.faults,
        telemetry_obs=args.telemetry_obs,
        pass_policy=args.pass_policy,
    )
    print(f"repro daemon listening on {args.socket} (scheduler={args.scheduler})")
    try:
        asyncio.run(serve(config, restore=args.restore))
    except KeyboardInterrupt:
        pass
    return 0


def _client_errors(fn):
    """Turn daemon/socket errors into one-line messages, not tracebacks."""

    @functools.wraps(fn)
    def wrapper(args) -> int:
        from repro.service import ServiceError

        try:
            return fn(args)
        except ServiceError as exc:
            print(f"error: {exc}", file=sys.stderr)
        except (ConnectionRefusedError, FileNotFoundError):
            target = getattr(args, "socket", None) or getattr(args, "target", "?")
            print(f"error: no daemon listening on {target}", file=sys.stderr)
        return 1

    return wrapper


def _merged_trace_doc(result: dict, deterministic: bool = False) -> dict:
    """The Chrome-trace document inside a ``trace_dump`` result.

    Gateways answer with the already-merged document; bare daemons
    answer with their raw span dump, which we merge into a one-lane
    document here so both targets feed the same analysis.
    """
    from repro.obs.distributed import ProcessTrace, merge_chrome_traces

    if "trace" in result:
        return result["trace"]
    return merge_chrome_traces(
        [ProcessTrace.from_dump(result.get("role", "daemon"), result)],
        deterministic=deterministic,
    )


@_client_errors
def _cmd_trace_dump(args) -> int:
    """Collect a merged Chrome trace over the ``trace_dump`` verb."""
    from repro.service import ServiceClient

    with ServiceClient(args.target) as client:
        result = client.trace_dump(
            deterministic=args.deterministic, reset=args.reset
        )
    if not result.get("enabled", True):
        print(
            "warning: tracing is not enabled on the target", file=sys.stderr
        )
    for partition, error in sorted(result.get("errors", {}).items()):
        print(f"warning: worker {partition}: {error}", file=sys.stderr)
    doc = _merged_trace_doc(result, deterministic=args.deterministic)
    text = json.dumps(doc, sort_keys=True, indent=None if args.out else 2)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(text)
            handle.write("\n")
        lanes = (doc.get("otherData") or {}).get("processes", [])
        print(f"wrote {args.out} ({len(lanes)} process lanes)")
    else:
        print(text)
    return 0


@_client_errors
def _cmd_trace_analyze(args) -> int:
    """Critical-path latency breakdown of a merged trace."""
    from repro.obs.distributed import analyze_trace, render_trace_analysis

    if args.target:
        from repro.service import ServiceClient

        with ServiceClient(args.target) as client:
            doc = _merged_trace_doc(client.trace_dump())
    elif args.source:
        try:
            with open(args.source) as handle:
                loaded = json.load(handle)
        except FileNotFoundError:
            print(f"error: no trace file at {args.source}", file=sys.stderr)
            return 1
        doc = loaded.get("trace", loaded) if isinstance(loaded, dict) else loaded
    else:
        print(
            "error: trace analyze needs a trace file or --target",
            file=sys.stderr,
        )
        return 1
    analysis = analyze_trace(doc)
    if args.json:
        print(json.dumps(analysis, indent=2, sort_keys=True))
    else:
        print(render_trace_analysis(analysis, precision=args.precision))
    return 0


@_client_errors
def cmd_top(args) -> int:
    """Live terminal view over a gateway's aggregated metrics."""
    import time as _time

    from repro.obs.distributed import render_top
    from repro.service import ServiceClient

    with ServiceClient(args.target) as client:
        while True:
            metrics = client.metrics()
            workers = None
            try:
                workers = client.workers().get("workers")
            except Exception:
                pass  # bare daemons have no ``workers`` verb
            frame = render_top(metrics, workers)
            if args.once:
                print(frame)
                return 0
            # Clear + home, like watch(1); one frame per interval.
            print(f"\x1b[2J\x1b[H{frame}", flush=True)
            try:
                _time.sleep(args.interval)
            except KeyboardInterrupt:
                return 0


@_client_errors
def cmd_submit(args) -> int:
    """Submit one job to a running daemon; optionally wait for it."""
    from repro.service import JobSpec, ServiceClient

    spec = JobSpec(
        model_name=args.model,
        gpus_requested=args.gpus,
        max_iterations=args.iterations,
        accuracy_requirement=args.accuracy,
        urgency=args.urgency,
        training_data_mb=args.data_mb,
        job_id=args.job_id,
    )
    with ServiceClient(args.socket) as client:
        out = client.submit(spec)
        print(json.dumps(out, indent=2))
        if args.wait and out.get("status") in {"admitted", "queued"}:
            status = client.wait(out["job_id"], timeout=args.timeout)
            print(json.dumps(status, indent=2))
    return 0


@_client_errors
def cmd_ctl(args) -> int:
    """One control verb against a running daemon."""
    from repro.service import ServiceClient

    with ServiceClient(args.socket) as client:
        if args.verb == "status":
            out = client.status(args.job_id)
        elif args.verb == "metrics":
            if args.format == "prom":
                print(client.metrics_text(), end="")
                return 0
            out = client.metrics()
        elif args.verb == "history":
            if not args.job_id:
                raise SystemExit("ctl history requires a job_id")
            out = client.history(args.job_id)
        elif args.verb == "drain":
            out = client.drain()
        elif args.verb == "step":
            if args.until is not None and args.events is not None:
                raise SystemExit("ctl step takes at most one of --until/--events")
            out = client.step(
                rounds=args.rounds if args.rounds is not None else 1,
                until=args.until,
                events=args.events,
            )
        elif args.verb == "cancel":
            if not args.job_id:
                raise SystemExit("ctl cancel requires a job_id")
            out = client.cancel(args.job_id)
        elif args.verb == "faultctl":
            if not args.job_id:
                raise SystemExit(
                    "ctl faultctl requires an action"
                    " (status/server_crash/server_revive/gpu_fail/"
                    "gpu_revive/straggler_start/straggler_end)"
                )
            out = client.faultctl(
                args.job_id,
                server_id=args.server,
                gpu_id=args.gpu,
                slowdown=args.slowdown,
            )
        elif args.verb == "snapshot":
            out = {"path": client.snapshot()}
        elif args.verb == "ping":
            out = client.ping_info()
        elif args.verb == "workers":
            out = client.workers()
        elif args.verb == "gossip":
            out = client.gossip()
        else:  # shutdown
            client.shutdown()
            out = {"stopping": True}
    print(json.dumps(out, indent=2))
    return 0


def cmd_gateway(args) -> int:
    """Run the gateway (plus its workers) until shutdown."""
    from repro.gateway import GatewayConfig, run_gateway

    config = GatewayConfig(
        listen=args.listen or None,
        socket_path=args.socket,
        workers=args.workers,
        ring_replicas=args.ring_replicas,
        ring_seed=args.ring_seed,
        scheduler=args.scheduler,
        servers_per_worker=args.servers_per_worker,
        gpus_per_server=args.gpus_per_server,
        tick_seconds=args.tick_seconds,
        seed=args.seed,
        round_interval=args.round_interval,
        admission_policy=args.admission_policy,
        admission_threshold=args.admission_threshold,
        global_threshold=args.global_threshold,
        global_alpha=args.global_alpha,
        gossip_interval=args.gossip_interval,
        workdir=args.workdir,
        spawn=args.spawn,
        telemetry=not args.no_telemetry,
        telemetry_obs=args.telemetry_obs,
        restart_limit=args.restart_limit,
        trace=args.trace,
    )
    where = " and ".join(
        part
        for part in (
            config.listen and f"tcp {config.listen}",
            config.socket_path and f"unix {config.socket_path}",
        )
        if part
    )
    print(
        f"repro gateway: {config.workers} workers ({config.spawn})"
        f" on {where or 'nothing?'}"
    )
    try:
        asyncio.run(run_gateway(config))
    except KeyboardInterrupt:
        pass
    return 0


@_client_errors
def cmd_loadgen(args) -> int:
    """Replay a seeded submission stream; print the measured result."""
    from repro.gateway import run_loadgen

    def progress(done: int, total: int) -> None:
        print(f"[loadgen] {done}/{total}", file=sys.stderr)

    result = run_loadgen(
        args.target,
        count=args.count,
        batch=args.batch,
        tenants=args.tenants,
        seed=args.seed,
        timeout=args.timeout,
        progress_every=None if args.quiet else max(args.count // 10, 1),
        progress=None if args.quiet else progress,
        trace=args.trace,
    )
    print(json.dumps(result, indent=2))
    if args.out:
        with open(args.out, "w") as handle:
            json.dump(result, handle, indent=2)
            handle.write("\n")
        print(f"wrote {args.out}", file=sys.stderr)
    return 1 if result["lost"] or result["duplicated"] else 0


def cmd_report(args) -> int:
    """Render telemetry (one JSONL file, or a gateway workdir) as tables."""
    import os

    from repro.analysis.telemetry import (
        render_gateway_report,
        render_telemetry_report,
    )

    try:
        if os.path.isdir(args.telemetry):
            print(
                render_gateway_report(
                    args.telemetry, every=args.every, rounds=not args.no_rounds
                )
            )
        else:
            print(
                render_telemetry_report(
                    args.telemetry, every=args.every, rounds=not args.no_rounds
                )
            )
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0


def _sweep_grid_from_args(args):
    """Build the sweep grid: from a JSON file or the inline flags."""
    from repro import api
    from repro.exp.grid import Grid

    if args.grid:
        with open(args.grid) as handle:
            return Grid.from_json(json.load(handle))
    schedulers = [n.strip() for n in args.schedulers.split(",") if n.strip()]
    seeds = [int(s) for s in args.seeds.split(",") if s.strip()]
    jobs = [int(j) for j in args.jobs.split(",") if j.strip()]
    if not (schedulers and seeds and jobs):
        raise SystemExit("sweep needs at least one scheduler, seed and job count")
    workload_kwargs = {
        "duration_hours": args.hours,
        "trace_seed": args.trace_seed,
    }
    if args.deadline_hours:
        low, high = (float(v) for v in args.deadline_hours.split(","))
        workload_kwargs["deadline_hours"] = (low, high)
    base = api.RunSpec(
        scheduler=api.SchedulerSpec(schedulers[0]),
        workload=api.WorkloadSpec(num_jobs=jobs[0], **workload_kwargs),
        cluster=api.ClusterSpec(
            num_servers=args.servers, gpus_per_server=args.gpus_per_server
        ),
        faults=api.load_plan(args.faults) if args.faults else None,
    )
    axes = {
        "scheduler": [api.SchedulerSpec(name) for name in schedulers],
        "workload.num_jobs": jobs,
        "seed": seeds,
    }
    return Grid(base, axes={k: v for k, v in axes.items() if len(v) > 0})


def cmd_sweep(args) -> int:
    """Run an experiment sweep; exit 2 when any shard failed."""
    from repro import api

    grid = _sweep_grid_from_args(args)

    def progress(update) -> None:
        eta = f", eta {update.eta_seconds:.0f}s" if update.eta_seconds else ""
        print(
            f"[{update.done}/{update.total}] {update.label}"
            f" (cached {update.cached}, failed {update.failed}{eta})",
            file=sys.stderr,
        )

    try:
        result = api.sweep(
            grid,
            workers=args.workers,
            cache_dir=args.cache_dir,
            on_progress=None if args.quiet else progress,
        )
    except ValueError as exc:
        raise SystemExit(str(exc)) from None
    if args.out:
        api.save_results(result, args.out)
        print(f"wrote {args.out}")
    else:
        print(json.dumps(result.merged(), indent=2))
    stats = result.stats
    print(
        f"shards={stats['shards']} executed={stats['executed']}"
        f" cached={stats['cached']} failed={stats['failed']}",
        file=sys.stderr,
    )
    return 2 if stats["failed"] else 0


def cmd_lint(args) -> int:
    """Run the repo-specific lint over the given paths."""
    from repro.check import lint

    argv = [*args.paths, "--format", args.format]
    if args.select:
        argv += ["--select", args.select]
    for fragment in args.exclude:
        argv += ["--exclude", fragment]
    if args.explain:
        argv += ["--explain", args.explain]
    return lint.main(argv)


def cmd_analyze(args) -> int:
    """Run the whole-program analyzer over the given paths."""
    from repro.check import graph

    argv = [*args.paths, "--format", args.format]
    if args.baseline:
        argv += ["--baseline", args.baseline]
    if args.no_baseline:
        argv.append("--no-baseline")
    if args.write_baseline:
        argv.append("--write-baseline")
    if args.out:
        argv += ["--out", args.out]
    if args.explain:
        argv += ["--explain", args.explain]
    return graph.main(argv)


def cmd_typecheck(args) -> int:
    """Run the strict-typing gate."""
    from repro.check import typing_gate

    argv = ["--src", args.src]
    if args.no_mypy:
        argv.append("--no-mypy")
    return typing_gate.main(argv)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    handlers = {
        "trace": cmd_trace,
        "run": cmd_run,
        "compare": cmd_compare,
        "serve": cmd_serve,
        "submit": cmd_submit,
        "ctl": cmd_ctl,
        "gateway": cmd_gateway,
        "loadgen": cmd_loadgen,
        "top": cmd_top,
        "report": cmd_report,
        "sweep": cmd_sweep,
        "lint": cmd_lint,
        "analyze": cmd_analyze,
        "typecheck": cmd_typecheck,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
