"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``trace``    Generate a synthetic Philly-like trace CSV.
``run``      Run one scheduler over a trace and print its summary.
``compare``  Run several schedulers over the same trace and emit a
             Markdown report.

Examples
--------
::

    python -m repro trace --jobs 200 --hours 2 --out trace.csv
    python -m repro run --trace trace.csv --scheduler MLFS --servers 8
    python -m repro compare --trace trace.csv --servers 8 \
        --schedulers MLFS,Tiresias,Graphene --out report.md
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Optional, Sequence

from repro.analysis.report import render_report
from repro.baselines import (
    FIFOScheduler,
    FairScheduler,
    GandivaScheduler,
    GrapheneScheduler,
    HyperSchedScheduler,
    RLScheduler,
    SLAQScheduler,
    TiresiasScheduler,
)
from repro.cluster import Cluster
from repro.core import make_mlf_h, make_mlf_rl, make_mlfs
from repro.sim import EngineConfig, SimulationSetup, run_comparison, run_simulation
from repro.workload import generate_trace, read_trace, write_trace

#: Scheduler name → zero-argument factory.
SCHEDULER_FACTORIES: dict[str, Callable[[], object]] = {
    "MLFS": make_mlfs,
    "MLF-RL": make_mlf_rl,
    "MLF-H": make_mlf_h,
    "FIFO": FIFOScheduler,
    "TensorFlow": FairScheduler,
    "SLAQ": SLAQScheduler,
    "Tiresias": TiresiasScheduler,
    "Gandiva": GandivaScheduler,
    "Graphene": GrapheneScheduler,
    "HyperSched": HyperSchedScheduler,
    "RL": RLScheduler,
}


def scheduler_by_name(name: str):
    """Instantiate a scheduler by its display name."""
    try:
        return SCHEDULER_FACTORIES[name]()
    except KeyError:
        known = ", ".join(sorted(SCHEDULER_FACTORIES))
        raise SystemExit(f"unknown scheduler {name!r}; choose from: {known}")


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro", description="MLFS (CoNEXT'20) reproduction toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_trace = sub.add_parser("trace", help="generate a synthetic trace CSV")
    p_trace.add_argument("--jobs", type=int, default=100)
    p_trace.add_argument("--hours", type=float, default=2.0)
    p_trace.add_argument("--seed", type=int, default=0)
    p_trace.add_argument("--out", default="trace.csv")

    common = argparse.ArgumentParser(add_help=False)
    common.add_argument("--trace", required=True, help="trace CSV path")
    common.add_argument("--servers", type=int, default=8)
    common.add_argument("--gpus-per-server", type=int, default=4)
    common.add_argument("--seed", type=int, default=0)
    common.add_argument("--tick-seconds", type=float, default=60.0)

    p_run = sub.add_parser("run", parents=[common], help="run one scheduler")
    p_run.add_argument("--scheduler", default="MLFS")

    p_cmp = sub.add_parser("compare", parents=[common], help="compare schedulers")
    p_cmp.add_argument(
        "--schedulers",
        default="MLFS,MLF-H,Tiresias,Graphene,TensorFlow",
        help="comma-separated scheduler names",
    )
    p_cmp.add_argument("--out", default=None, help="write the Markdown report here")
    return parser


def _setup_from_args(args) -> SimulationSetup:
    records = read_trace(args.trace)
    return SimulationSetup(
        records=records,
        cluster_factory=lambda: Cluster.build(args.servers, args.gpus_per_server),
        workload_seed=args.seed,
        engine_config=EngineConfig(tick_seconds=args.tick_seconds),
    )


def cmd_trace(args) -> int:
    """Generate and write a synthetic trace."""
    records = generate_trace(
        args.jobs, duration_seconds=args.hours * 3600.0, seed=args.seed
    )
    count = write_trace(records, args.out)
    print(f"wrote {count} jobs to {args.out}")
    return 0


def cmd_run(args) -> int:
    """Run a single scheduler over a trace."""
    setup = _setup_from_args(args)
    result = run_simulation(scheduler_by_name(args.scheduler), setup)
    for key, value in result.summary().items():
        print(f"{key:24} {value:.3f}")
    return 0


def cmd_compare(args) -> int:
    """Compare schedulers over the same trace; emit a Markdown report."""
    setup = _setup_from_args(args)
    names = [n.strip() for n in args.schedulers.split(",") if n.strip()]
    schedulers = [scheduler_by_name(n) for n in names]
    results = run_comparison(schedulers, setup)
    report = render_report(results, title=f"Comparison on {args.trace}")
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(report)
        print(f"wrote {args.out}")
    else:
        print(report)
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    handlers = {"trace": cmd_trace, "run": cmd_run, "compare": cmd_compare}
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
