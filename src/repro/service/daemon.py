"""The scheduler daemon: a long-running online MLFS service.

Two layers:

* :class:`SchedulerService` — the synchronous core.  Owns the stepping
  :class:`~repro.sim.engine.SimulationEngine`, the admission controller,
  the telemetry exporter and the snapshot manager.  Every verb of the
  wire protocol maps to one method; it is fully deterministic given the
  same sequence of (submission, round) operations, which is what the
  snapshot/restore test leans on.
* :class:`SchedulerDaemon` — the asyncio shell.  Listens on a Unix
  domain socket, speaks newline-delimited JSON
  (:mod:`repro.service.protocol`), and drives one scheduler round every
  ``round_interval`` wall-clock seconds (the paper's "scheduler runs
  every minute" with the wall clock decoupled from the simulated one).

The daemon advances *simulated* time ``tick_seconds`` per round; real
time only paces how often rounds fire, so tests and demos can run with a
millisecond ``round_interval`` while preserving the paper's 60-second
scheduling quantum.
"""

from __future__ import annotations

import asyncio
import contextlib
import random
import signal
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator, Optional

from repro.cluster.cluster import Cluster
from repro.faults.injector import FaultInjector
from repro.faults.plan import FAULT_KINDS, FaultEvent, load_plan
from repro.schedulers import scheduler_by_name
from repro.service.admission import (
    AdmissionController,
    AdmissionDecision,
    AdmissionPolicy,
)
from repro.service.protocol import (
    STREAM_LIMIT,
    JobSpec,
    ProtocolError,
    Request,
    Response,
    parse_request,
)
from repro.obs.observer import Observer
from repro.obs.tracectx import TraceContext, derive_span_id, trace_context
from repro.obs.tracing import NullTracer, Tracer
from repro.service.snapshot import SnapshotManager
from repro.service.telemetry import (
    RunningJctStats,
    TelemetryExporter,
    pass_record,
    round_record,
)
from repro.sim.engine import EngineConfig, PassResult, SimulationEngine
from repro.sim.interface import Scheduler
from repro.workload.generator import WorkloadConfig, build_job
from repro.workload.job import Job
from repro.workload.trace import TraceRecord

#: Metric families whose values derive from the wall clock; dropped
#: from telemetry records under ``telemetry_obs="deterministic"``.
WALL_CLOCK_FAMILIES = ("mlfs_scheduler_phase_seconds",)


@dataclass(frozen=True)
class ServiceConfig:
    """Daemon parameterization (CLI flags map 1:1 onto these)."""

    socket_path: str = "repro-service.sock"
    scheduler: str = "MLF-H"
    servers: int = 8
    gpus_per_server: int = 4
    tick_seconds: float = 60.0
    seed: int = 0
    admission_policy: str = "queue"
    admission_threshold: float = 0.90
    admission_alpha: float = 0.5
    admission_queue_limit: int = 1024
    snapshot_dir: Optional[str] = None
    snapshot_every: int = 10
    snapshot_keep: int = 5
    telemetry_path: Optional[str] = None
    #: Chrome-trace output for the scheduler-phase spans; ``None``
    #: keeps tracing off (metrics and timelines stay on regardless).
    trace_path: Optional[str] = None
    #: Override of the MLF family's heuristic→RL switch threshold.
    rl_switch_decisions: Optional[int] = None
    #: Real seconds between automatic rounds; 0 disables the round loop
    #: (rounds then advance only through ``drain``).
    round_interval: float = 1.0
    #: Run the invariant sanitizer (:mod:`repro.check.sanitize`) after
    #: every round.  ``None`` defers to the ``REPRO_SANITIZE`` switch.
    sanitize: Optional[bool] = None
    #: JSON :class:`~repro.faults.plan.FaultPlan` to execute
    #: (``serve --faults``).  ``None`` starts with an empty plan; the
    #: ``faultctl`` verb can still inject faults at runtime.
    faults_path: Optional[str] = None
    #: What of the metrics registry each telemetry record embeds:
    #: ``"full"`` (everything), ``"deterministic"`` (drop wall-clock
    #: families so same-seed runs emit bit-identical JSONL — the
    #: gateway's per-partition determinism contract), or ``"none"``.
    telemetry_obs: str = "full"
    #: Scheduling-pass cadence of the embedded engine: ``"fixed"``
    #: (legacy, a pass every ``tick_seconds``) or ``"event"`` (passes
    #: park while provably no-op; event mode also switches telemetry to
    #: the v2 ``pass_record`` schema keyed by sim time).
    pass_policy: str = "fixed"


class SchedulerService:
    """Synchronous service core: engine + admission + telemetry + snapshots."""

    def __init__(
        self,
        config: Optional[ServiceConfig] = None,
        scheduler: Optional[Scheduler] = None,
    ) -> None:
        self.config = config or ServiceConfig()
        cluster = Cluster.build(self.config.servers, self.config.gpus_per_server)
        if scheduler is None:
            scheduler = scheduler_by_name(
                self.config.scheduler,
                rl_switch_decisions=self.config.rl_switch_decisions,
            )
        self.observer = Observer(
            tracer=Tracer() if self.config.trace_path else NullTracer()
        )
        # Always carry an injector: an idle one is bit-identical to no
        # fault layer, and faultctl needs somewhere to queue runtime
        # events.  It snapshots (pickles) with the service core.
        self.fault_injector = FaultInjector(
            load_plan(self.config.faults_path) if self.config.faults_path else None
        )
        self.engine = SimulationEngine(
            scheduler=scheduler,
            jobs=[],
            cluster=cluster,
            config=EngineConfig(
                tick_seconds=self.config.tick_seconds,
                seed=self.config.seed,
                max_time=float("inf"),
                pass_policy=self.config.pass_policy,
            ),
            observer=self.observer,
            sanitize=self.config.sanitize,
            faults=self.fault_injector,
        )
        self.admission = AdmissionController(
            threshold=self.config.admission_threshold,
            policy=AdmissionPolicy(self.config.admission_policy),
            queue_limit=self.config.admission_queue_limit,
            alpha=self.config.admission_alpha,
        )
        self.telemetry = TelemetryExporter(
            path=Path(self.config.telemetry_path)
            if self.config.telemetry_path
            else None
        )
        self.snapshots = (
            SnapshotManager(Path(self.config.snapshot_dir), keep=self.config.snapshot_keep)
            if self.config.snapshot_dir
            else None
        )
        self._workload_rng = random.Random(self.config.seed)
        self._workload_config = WorkloadConfig()
        #: job_id -> {"spec": JobSpec, "job": Job|None, "state": str}
        self._registry: dict[str, dict[str, Any]] = {}
        self._submissions = 0
        self._jct_stats = RunningJctStats()
        self._register_service_metrics()
        self.draining = False

    def _register_service_metrics(self) -> None:
        registry = self.observer.registry
        self._submissions_total = registry.counter(
            "mlfs_service_submissions_total",
            "Job submissions received, by admission outcome.",
            labels=("outcome",),
        )
        self._admission_queue_gauge = registry.gauge(
            "mlfs_admission_queue_depth",
            "Jobs parked by the admission controller.",
        )
        self._overload_smoothed_gauge = registry.gauge(
            "mlfs_overload_smoothed",
            "EWMA-smoothed overload degree the admission controller sees.",
        )

    # -- construction / restore -------------------------------------------

    @classmethod
    def restore(
        cls, snapshot_dir: str | Path, path: Optional[Path] = None
    ) -> "SchedulerService":
        """Rebuild a service core from the newest (or given) snapshot."""
        manager = SnapshotManager(Path(snapshot_dir))
        core = manager.load(path)
        if not isinstance(core, cls):
            raise TypeError(f"snapshot does not contain a {cls.__name__}")
        # The restored core keeps writing snapshots to the same ring.
        core.snapshots = manager
        # A restart reopens admissions: a drain that preceded the
        # snapshot must not leave the revived daemon refusing work.
        core.draining = False
        # Snapshots predating the fault layer carry no injector.
        if not hasattr(core, "fault_injector"):
            core.fault_injector = core.engine.faults or FaultInjector()
            core.engine.faults = core.fault_injector
        return core

    # -- verbs -------------------------------------------------------------

    def submit(self, spec: JobSpec) -> dict[str, Any]:
        """Admit, queue, or reject one submission.

        Traced submissions (``spec.trace_id`` set, tracing on) record a
        ``worker.admission`` span parented under the sender's span and
        echo ``trace_id`` in the result.
        """
        if spec.trace_id is None or not self.observer.tracer.enabled:
            return self._submit(spec)
        ctx = TraceContext(
            trace_id=spec.trace_id,
            span_id=derive_span_id(spec.trace_id, "worker.admission"),
            parent_id=spec.parent_span_id,
        )
        with trace_context(ctx):
            with self.observer.span("worker.admission", job_id=spec.job_id):
                result = self._submit(spec)
        result["trace_id"] = spec.trace_id
        return result

    def _submit(self, spec: JobSpec) -> dict[str, Any]:
        if self.draining:
            self._submissions_total.labels("rejected").inc()
            return {"job_id": spec.job_id, "status": "rejected", "reason": "draining"}
        job_id = spec.job_id or f"svc-{self._submissions:05d}"
        if job_id in self._registry:
            raise ProtocolError(f"duplicate job_id {job_id!r}")
        self._submissions += 1
        job = self._build_job(job_id, spec)
        decision = self.admission.check(self.engine.cluster)
        entry = {"spec": spec, "job": job, "state": decision.value}
        self._registry[job_id] = entry
        self._submissions_total.labels(decision.value).inc()
        self.observer.job_event(
            job_id,
            "admission",
            self.engine.now,
            round_index=self.engine.round_index,
            detail=decision.value,
            model=spec.model_name,
            **({"trace_id": spec.trace_id} if spec.trace_id else {}),
        )
        if decision is AdmissionDecision.ADMIT:
            self.engine.inject_job(job)
            entry["state"] = "active"
        elif decision is AdmissionDecision.QUEUE:
            self.admission.park(job_id)
        return {
            "job_id": job_id,
            "status": decision.value,
            "overload_degree": self.admission.tracker.value,
        }

    def submit_batch(self, payloads: list[dict[str, Any]]) -> dict[str, Any]:
        """Admit/queue/reject a batch; one bad spec fails only its slot."""
        results: list[dict[str, Any]] = []
        for payload in payloads:
            try:
                spec = JobSpec.from_payload(dict(payload))
                results.append(self.submit(spec))
            except ProtocolError as exc:
                results.append(
                    {
                        "job_id": payload.get("job_id"),
                        "status": "error",
                        "error": str(exc),
                    }
                )
        return {"results": results, "count": len(results)}

    def advance_round(self, until: Optional[float] = None) -> PassResult:
        """Run one scheduler pass; release parked work; emit telemetry.

        ``until`` bounds the pass to events at or before that sim time
        (the ``step until=`` path); ``None`` keeps the legacy
        one-pass-per-call behaviour.
        """
        result = self.engine.advance(until=until)
        released = self.admission.release(self.engine.cluster)
        for job_id in released:
            entry = self._registry[job_id]
            self.engine.inject_job(entry["job"])
            entry["state"] = "active"
        self._admission_queue_gauge.set(self.admission.queue_depth)
        self._overload_smoothed_gauge.set(self.admission.tracker.value)
        if result.ticked or result.events_processed:
            # Event mode emits the v2 schema (keyed by sim time);
            # fixed mode keeps the v1 records the golden traces and
            # the gateway determinism contract pin.
            builder = (
                pass_record
                if self.engine.config.pass_policy == "event"
                else round_record
            )
            record = builder(
                result,
                self.engine.metrics,
                admission_queue_depth=self.admission.queue_depth,
                overload_smoothed=self.admission.tracker.value,
                jct_stats=self._jct_stats,
            )
            obs_mode = getattr(self.config, "telemetry_obs", "full")
            if obs_mode != "none":
                snapshot = self.observer.registry.scalar_snapshot()
                if obs_mode == "deterministic":
                    snapshot = {
                        key: value
                        for key, value in snapshot.items()
                        if not key.startswith(WALL_CLOCK_FAMILIES)
                    }
                record["obs"] = snapshot
            self.telemetry.emit(record)
        if (
            self.snapshots is not None
            and self.config.snapshot_every > 0
            and result.ticked
            and self.engine.round_index % self.config.snapshot_every == 0
        ):
            self.snapshot_now()
        return result

    def drain(self, max_rounds: int = 100_000) -> dict[str, Any]:
        """Stop admitting; run rounds until all work completes."""
        self.draining = True
        rounds = 0
        while rounds < max_rounds and not self.idle:
            result = self.advance_round()
            rounds += 1
            if result.events_processed == 0 and self.admission.queue_depth == 0:
                break
        self.engine.finalize()
        return {"rounds": rounds, "idle": self.idle, **self.metrics()}

    def passes_until(
        self, until: float, max_passes: int = 100_000
    ) -> Iterator[PassResult]:
        """Yield scheduling passes until the sim clock reaches ``until``.

        Each yield is one :meth:`advance_round` bounded to ``until``
        (telemetry and admission release run per pass as usual).  When
        the generator is exhausted the clock stands exactly at
        ``until`` even if no event lay that far out
        (:meth:`SimulationEngine.fast_forward`).  The loop stops early
        once a pass makes no progress — no events under the bound and
        nothing released from the admission queue.
        """
        passes = 0
        while self.engine.now < until and passes < max_passes:
            depth_before = self.admission.queue_depth
            result = self.advance_round(until=until)
            passes += 1
            yield result
            if (
                result.events_processed == 0
                and self.admission.queue_depth >= depth_before
            ):
                break
        self.engine.fast_forward(until)

    def passes_for_events(
        self, events: int, max_passes: int = 100_000
    ) -> Iterator[PassResult]:
        """Yield scheduling passes until ``events`` events processed.

        The cumulative ``events_processed`` across yielded passes
        reaches at least ``events`` unless the engine runs dry first
        (same no-progress stop rule as :meth:`passes_until`).
        """
        target = max(1, events)
        processed = 0
        passes = 0
        while processed < target and passes < max_passes:
            depth_before = self.admission.queue_depth
            result = self.advance_round()
            passes += 1
            processed += result.events_processed
            yield result
            if (
                result.events_processed == 0
                and self.admission.queue_depth >= depth_before
            ):
                break

    def status(self, job_id: Optional[str] = None) -> dict[str, Any]:
        """Status of one job or of every known job."""
        if job_id is not None:
            entry = self._registry.get(job_id)
            if entry is None:
                raise ProtocolError(f"unknown job {job_id!r}")
            return self._job_status(job_id, entry)
        return {
            "jobs": [self._job_status(jid, e) for jid, e in self._registry.items()],
            "round": self.engine.round_index,
            "sim_time": self.engine.now,
            "pass_policy": self.engine.config.pass_policy,
            "parked": self.engine.parked,
        }

    def cancel(self, job_id: str) -> dict[str, Any]:
        """Cancel a parked or active job."""
        entry = self._registry.get(job_id)
        if entry is None:
            raise ProtocolError(f"unknown job {job_id!r}")
        if entry["state"] == "queued" and self.admission.withdraw(job_id):
            entry["state"] = "cancelled"
        elif entry["state"] == "active" and self.engine.cancel_job(job_id):
            entry["state"] = "cancelled"
        else:
            raise ProtocolError(f"job {job_id!r} is {entry['state']}; cannot cancel")
        return {"job_id": job_id, "status": "cancelled"}

    def metrics_text(self) -> str:
        """The metrics registry in Prometheus text exposition format."""
        return self.observer.registry.render_text()

    def history(self, job_id: str) -> dict[str, Any]:
        """A job's event timeline (admission → … → completed)."""
        if job_id not in self._registry and job_id not in self.observer.timeline:
            raise ProtocolError(f"unknown job {job_id!r}")
        return {
            "job_id": job_id,
            "events": self.observer.timeline.history(job_id),
        }

    def metrics(self) -> dict[str, Any]:
        """Engine/cluster metrics snapshot."""
        return {
            "round": self.engine.round_index,
            "sim_time": self.engine.now,
            "queue_depth": len(self.engine.queue),
            "admission_queue_depth": self.admission.queue_depth,
            "active_jobs": len(self.engine.active_jobs),
            "overload_degree": self.engine.cluster.overload_degree(),
            "overload_smoothed": self.admission.tracker.value,
            "failed_servers": len(self.engine.cluster.failed_servers()),
            "draining": self.draining,
            "summary": self.engine.metrics.summary(),
        }

    def faultctl(
        self,
        action: str,
        server_id: Optional[int] = None,
        gpu_id: Optional[int] = None,
        slowdown: float = 3.0,
    ) -> dict[str, Any]:
        """Inspect or drive fault injection on the live daemon.

        ``action="status"`` reports the current fault state; any
        :data:`~repro.faults.plan.FAULT_KINDS` action queues a runtime
        :class:`~repro.faults.plan.FaultEvent` that the engine applies
        at its next tick's fault phase (never mid-verb, so snapshots
        and replays stay deterministic).
        """
        cluster = self.engine.cluster
        if action == "status":
            return {
                "failed_servers": [s.server_id for s in cluster.failed_servers()],
                "failed_gpus": [
                    [server.server_id, gpu.gpu_id]
                    for server in cluster.servers
                    for gpu in server.gpus
                    if gpu.failed
                ],
                **self.fault_injector.state(),
            }
        if action not in FAULT_KINDS:
            known = ", ".join(sorted(FAULT_KINDS))
            raise ProtocolError(
                f"unknown faultctl action {action!r}; choose status or one of: {known}"
            )
        if server_id is None:
            raise ProtocolError(f"faultctl {action} requires server_id")
        if not 0 <= server_id < len(cluster.servers):
            raise ProtocolError(f"no server {server_id}")
        try:
            event = FaultEvent(
                round_index=self.engine.round_index + 1,
                kind=action,
                server_id=server_id,
                gpu_id=gpu_id,
                slowdown=slowdown,
            )
        except ValueError as exc:
            raise ProtocolError(str(exc)) from None
        self.fault_injector.inject(event)
        return {
            "queued": event.to_json(),
            "applies_at_round": self.engine.round_index + 1,
        }

    def trace_dump(self, reset: bool = False) -> dict[str, Any]:
        """The tracer's spans in collector wire form (``trace_dump``).

        ``reset`` clears the stored spans after dumping (the ``seq``
        counter keeps counting) so repeated dumps stream increments.
        """
        dump = self.observer.tracer.dump(role="daemon", reset=reset)
        dump["seed"] = self.config.seed
        dump["enabled"] = self.observer.tracer.enabled
        return dump

    def snapshot_now(self) -> Optional[str]:
        """Persist a snapshot immediately; returns its path."""
        if self.snapshots is None:
            return None
        path = self.snapshots.save(
            self, round_index=self.engine.round_index, sim_time=self.engine.now
        )
        return str(path)

    @property
    def idle(self) -> bool:
        """Nothing active, nothing pending anywhere."""
        return self.engine.is_drained and self.admission.queue_depth == 0

    def close(self) -> None:
        """Release file handles (telemetry) and flush the trace."""
        self.telemetry.close()
        if self.config.trace_path and self.observer.tracer.enabled:
            self.observer.tracer.write(Path(self.config.trace_path))

    # -- internals ---------------------------------------------------------

    def _build_job(self, job_id: str, spec: JobSpec) -> Job:
        """Job construction mirrors the batch path (trace record → job).

        Deadlines anchor at submission time; a stint in the admission
        queue eats into the job's slack, exactly as in a real cluster.
        """
        record = TraceRecord(
            job_id=job_id,
            arrival_time=self.engine.now,
            gpus_requested=spec.gpus_requested,
            model_name=spec.model_name,
            max_iterations=spec.max_iterations,
            accuracy_requirement=spec.accuracy_requirement,
            urgency=spec.urgency,
            training_data_mb=spec.training_data_mb,
        )
        return build_job(record, self._workload_rng, self._workload_config)

    def _job_status(self, job_id: str, entry: dict[str, Any]) -> dict[str, Any]:
        job: Optional[Job] = entry["job"]
        status: dict[str, Any] = {
            "job_id": job_id,
            "state": entry["state"],
            "model": entry["spec"].model_name,
            "gpus_requested": entry["spec"].gpus_requested,
        }
        if job is None:
            return status
        if entry["state"] == "active":
            if job.is_complete:
                entry["state"] = "completed"
                status["state"] = "completed"
            else:
                status["state"] = "running" if job.placed_tasks() else "waiting"
        status.update(
            arrival_time=job.arrival_time,
            iterations_completed=job.iterations_completed,
            max_iterations=job.max_iterations,
            placed_tasks=len(job.placed_tasks()),
            completion_time=job.completion_time,
            jct=job.jct(),
            met_deadline=job.met_deadline(),
            final_accuracy=job.final_accuracy,
            num_migrations=sum(t.num_migrations for t in job.tasks),
        )
        return status

    # The asyncio shell and file handles never travel into snapshots.
    def __getstate__(self) -> dict[str, Any]:
        return dict(self.__dict__)


class SchedulerDaemon:
    """Asyncio shell: socket server + periodic round loop."""

    def __init__(self, core: SchedulerService) -> None:
        self.core = core
        self._server: Optional[asyncio.AbstractServer] = None
        self._round_task: Optional[asyncio.Task] = None
        self._client_tasks: set[asyncio.Task] = set()
        self._stop = asyncio.Event()

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        """Bind the socket and start the round loop."""
        socket_path = Path(self.core.config.socket_path)
        with contextlib.suppress(FileNotFoundError):
            socket_path.unlink()
        socket_path.parent.mkdir(parents=True, exist_ok=True)
        self._server = await asyncio.start_unix_server(
            self._handle_client, path=str(socket_path), limit=STREAM_LIMIT
        )
        if self.core.config.round_interval > 0:
            self._round_task = asyncio.create_task(self._round_loop())

    async def serve_forever(self) -> None:
        """Run until a ``shutdown`` request (or task cancellation)."""
        await self.start()
        try:
            await self._stop.wait()
        finally:
            await self.stop()

    async def stop(self) -> None:
        """Tear down the socket, the round loop, and the core's handles."""
        self._stop.set()
        if self._round_task is not None:
            self._round_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._round_task
            self._round_task = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._client_tasks):
            task.cancel()
        if self._client_tasks:
            await asyncio.gather(*self._client_tasks, return_exceptions=True)
            self._client_tasks.clear()
        # The final snapshot pickles the whole core and close() flushes
        # telemetry/trace files — seconds of disk I/O on a large run.
        # Off-loop so a supervising gateway's health polls (and any
        # sibling daemons sharing the loop in thread mode) never stall
        # behind this daemon's shutdown.
        await asyncio.to_thread(self._flush_core)
        with contextlib.suppress(FileNotFoundError):
            Path(self.core.config.socket_path).unlink()

    def _flush_core(self) -> None:
        """Final snapshot + handle teardown (runs off the event loop)."""
        if self.core.snapshots is not None:
            self.core.snapshot_now()
        self.core.close()

    async def _round_loop(self) -> None:
        while not self._stop.is_set():
            await asyncio.sleep(self.core.config.round_interval)
            # Pending faultctl events must tick even on a drained
            # cluster, so e.g. a crash injected while idle marks the
            # server failed before the next job arrives.
            if (
                not self.core.engine.is_drained
                or self.core.admission.queue_depth
                or self.core.fault_injector.pending
            ):
                self.core.advance_round()

    # -- request handling --------------------------------------------------

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._client_tasks.add(task)
            task.add_done_callback(self._client_tasks.discard)
        try:
            while not reader.at_eof():
                line = await reader.readline()
                if not line:
                    break
                response = await self._dispatch_line(line)
                writer.write(response.encode())
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
            pass
        finally:
            writer.close()

    async def _dispatch_line(self, line: bytes) -> Response:
        try:
            request = parse_request(line)
        except ProtocolError as exc:
            return Response.failure(str(exc))
        try:
            return await self._dispatch(request)
        except ProtocolError as exc:
            return Response.failure(str(exc), id=request.id)
        except Exception as exc:  # daemon must survive any verb failure
            return Response.failure(f"internal error: {exc}", id=request.id)

    async def _dispatch(self, request: Request) -> Response:
        core = self.core
        params = request.params
        if request.op == "ping":
            return Response.success(
                {"pong": True, "role": "daemon", "round": core.engine.round_index},
                id=request.id,
            )
        if request.op == "submit":
            spec = JobSpec.from_payload(params)
            return Response.success(core.submit(spec), id=request.id)
        if request.op == "submit_batch":
            jobs = params.get("jobs")
            if not isinstance(jobs, list):
                raise ProtocolError("submit_batch requires jobs (a list)")
            ctx = self._request_trace(request, "worker.submit_batch")
            if ctx is None:
                return Response.success(core.submit_batch(jobs), id=request.id)
            with trace_context(ctx):
                with core.observer.span("worker.submit_batch", jobs=len(jobs)):
                    result = core.submit_batch(jobs)
            return Response.success(result, id=request.id)
        if request.op == "status":
            return Response.success(core.status(params.get("job_id")), id=request.id)
        if request.op == "cancel":
            job_id = params.get("job_id")
            if not job_id:
                raise ProtocolError("cancel requires job_id")
            return Response.success(core.cancel(job_id), id=request.id)
        if request.op == "metrics":
            return Response.success(core.metrics(), id=request.id)
        if request.op == "metrics_text":
            return Response.success({"text": core.metrics_text()}, id=request.id)
        if request.op == "history":
            job_id = params.get("job_id")
            if not job_id:
                raise ProtocolError("history requires job_id")
            return Response.success(core.history(job_id), id=request.id)
        if request.op == "drain":
            result = await self._drain(int(params.get("max_rounds", 100_000)))
            return Response.success(result, id=request.id)
        if request.op == "step":
            until = params.get("until")
            events = params.get("events")
            if until is not None and events is not None:
                raise ProtocolError(
                    "step accepts at most one of 'until' and 'events'"
                )
            if until is not None or events is not None:
                if until is not None:
                    passes_iter = core.passes_until(float(until))
                else:
                    passes_iter = core.passes_for_events(int(events))
                passes = 0
                events_processed = 0
                last = None
                for result in passes_iter:
                    last = result
                    passes += 1
                    events_processed += result.events_processed
                    await asyncio.sleep(0)
                return Response.success(
                    {
                        "round": core.engine.round_index,
                        "pass_index": core.engine.pass_index,
                        "sim_time": core.engine.now,
                        "passes": passes,
                        "events_processed": events_processed,
                        "ticked": bool(last.ticked) if last else False,
                        "queue_depth": len(core.engine.queue),
                        "active_jobs": len(core.engine.active_jobs),
                    },
                    id=request.id,
                )
            rounds = max(1, int(params.get("rounds", 1)))
            last = None
            for _ in range(rounds):
                last = core.advance_round()
                await asyncio.sleep(0)
            assert last is not None
            return Response.success(
                {
                    "round": last.round_index,
                    "sim_time": last.now,
                    "ticked": last.ticked,
                    "queue_depth": last.queue_depth,
                    "active_jobs": last.active_jobs,
                },
                id=request.id,
            )
        if request.op == "faultctl":
            action = params.get("action")
            if not action:
                raise ProtocolError("faultctl requires action")
            server_id = params.get("server_id")
            gpu_id = params.get("gpu_id")
            return Response.success(
                core.faultctl(
                    str(action),
                    server_id=int(server_id) if server_id is not None else None,
                    gpu_id=int(gpu_id) if gpu_id is not None else None,
                    slowdown=float(params.get("slowdown", 3.0)),
                ),
                id=request.id,
            )
        if request.op == "trace_dump":
            return Response.success(
                core.trace_dump(reset=bool(params.get("reset", False))),
                id=request.id,
            )
        if request.op == "snapshot":
            path = core.snapshot_now()
            if path is None:
                raise ProtocolError("snapshots are not configured")
            return Response.success({"path": path}, id=request.id)
        if request.op == "shutdown":
            self._stop.set()
            return Response.success({"stopping": True}, id=request.id)
        raise ProtocolError(f"unhandled op {request.op!r}")

    def _request_trace(
        self, request: Request, site: str
    ) -> Optional[TraceContext]:
        """The local span context for a traced request (``None`` off)."""
        if request.trace is None or not self.core.observer.tracer.enabled:
            return None
        remote = TraceContext.from_wire(request.trace)
        if remote is None:
            return None
        return TraceContext(
            trace_id=remote.trace_id,
            span_id=derive_span_id(remote.trace_id, site),
            parent_id=remote.span_id,
        )

    async def _drain(self, max_rounds: int) -> dict[str, Any]:
        """Cooperative drain: yields to the loop between rounds."""
        core = self.core
        core.draining = True
        rounds = 0
        while rounds < max_rounds and not core.idle:
            result = core.advance_round()
            rounds += 1
            if result.events_processed == 0 and core.admission.queue_depth == 0:
                break
            await asyncio.sleep(0)
        core.engine.finalize()
        return {"rounds": rounds, "idle": core.idle, **core.metrics()}


async def serve(config: Optional[ServiceConfig] = None, restore: bool = False) -> None:
    """Run the daemon until shutdown (the ``repro serve`` entry point).

    SIGTERM/SIGINT trigger the same orderly stop as a ``shutdown``
    request: the round loop halts, a final snapshot is written (when
    configured), telemetry is flushed and the socket is removed — a
    supervised worker never loses the tail of a run on shutdown.
    """
    config = config or ServiceConfig()
    if restore:
        if not config.snapshot_dir:
            raise SystemExit("--restore requires --snapshot-dir")
        # Unpickling a large snapshot blocks for seconds; keep it off
        # the loop so signal handlers and the event loop stay live.
        core = await asyncio.to_thread(
            SchedulerService.restore, config.snapshot_dir
        )
        # Runtime knobs (socket, pacing) come from the new invocation.
        core.config = config
    else:
        core = SchedulerService(config)
    daemon = SchedulerDaemon(core)
    loop = asyncio.get_running_loop()
    installed: list[signal.Signals] = []
    for sig in (signal.SIGTERM, signal.SIGINT):
        # Non-main threads and non-POSIX loops cannot install handlers;
        # the daemon still stops cleanly via the shutdown verb there.
        with contextlib.suppress(NotImplementedError, RuntimeError, ValueError):
            loop.add_signal_handler(sig, daemon._stop.set)
            installed.append(sig)
    try:
        await daemon.serve_forever()
    finally:
        for sig in installed:
            with contextlib.suppress(NotImplementedError, RuntimeError, ValueError):
                loop.remove_signal_handler(sig)


class ThreadedDaemon:
    """Runs a daemon on a private event loop thread (tests, demos).

    Usage::

        with ThreadedDaemon(ServiceConfig(socket_path=...)) as daemon:
            client = ServiceClient(daemon.socket_path)
            ...
    """

    def __init__(self, config: ServiceConfig, core: Optional[SchedulerService] = None):
        self.config = config
        self._core = core
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._started = threading.Event()
        self.daemon: Optional[SchedulerDaemon] = None

    @property
    def socket_path(self) -> str:
        """Where the daemon is listening."""
        return self.config.socket_path

    def __enter__(self) -> "ThreadedDaemon":
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        if not self._started.wait(timeout=10.0):
            raise RuntimeError("daemon failed to start within 10s")
        return self

    def __exit__(self, *exc_info) -> None:
        if self._loop is not None and self.daemon is not None:
            # The loop may already be gone if someone sent the
            # ``shutdown`` verb (e.g. a supervisor's graceful stop).
            with contextlib.suppress(RuntimeError):
                self._loop.call_soon_threadsafe(self.daemon._stop.set)
        if self._thread is not None:
            self._thread.join(timeout=10.0)

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        core = self._core or SchedulerService(self.config)
        self.daemon = SchedulerDaemon(core)
        self._loop = asyncio.get_running_loop()
        await self.daemon.start()
        self._started.set()
        try:
            await self.daemon._stop.wait()
        finally:
            await self.daemon.stop()
