"""Blocking client for the scheduler daemon.

Speaks the newline-delimited JSON protocol over a Unix domain socket.
One request ↔ one response, in order, on one connection; the client is
safe to reuse sequentially but is not thread-safe.

Usage::

    with ServiceClient("/tmp/repro.sock") as client:
        out = client.submit(JobSpec(model_name="resnet", gpus_requested=4))
        client.wait(out["job_id"])
        print(client.metrics())
"""

from __future__ import annotations

import socket
import time
from typing import Any, Optional

from repro.service.protocol import (
    JobSpec,
    ProtocolError,
    Request,
    parse_response,
)


class ServiceError(RuntimeError):
    """The daemon answered with an error response."""


class ServiceClient:
    """A small synchronous client for the daemon socket."""

    def __init__(self, socket_path: str, timeout: float = 30.0) -> None:
        self.socket_path = socket_path
        self.timeout = timeout
        self._sock: Optional[socket.socket] = None
        self._file = None
        self._next_id = 0

    # -- connection --------------------------------------------------------

    def connect(self) -> "ServiceClient":
        """Open the connection (idempotent)."""
        if self._sock is None:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(self.timeout)
            sock.connect(self.socket_path)
            self._sock = sock
            self._file = sock.makefile("rwb")
        return self

    def close(self) -> None:
        """Close the connection (idempotent)."""
        if self._file is not None:
            try:
                self._file.close()
            except OSError:
                pass
            self._file = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def __enter__(self) -> "ServiceClient":
        return self.connect()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- request plumbing --------------------------------------------------

    def call(self, op: str, **params: Any) -> dict[str, Any]:
        """Send one request; return the ``result`` dict or raise."""
        self.connect()
        assert self._file is not None
        self._next_id += 1
        request = Request(op=op, id=f"c{self._next_id}", params=params)
        self._file.write(request.encode())
        self._file.flush()
        line = self._file.readline()
        if not line:
            raise ServiceError("connection closed by daemon")
        try:
            response = parse_response(line)
        except ProtocolError as exc:
            raise ServiceError(f"bad response: {exc}") from None
        if not response.ok:
            raise ServiceError(response.error or "unknown daemon error")
        return response.result

    # -- verbs -------------------------------------------------------------

    def ping(self) -> bool:
        """Liveness probe."""
        return bool(self.call("ping").get("pong"))

    def submit(self, spec: JobSpec) -> dict[str, Any]:
        """Submit a job; returns job_id plus the admission outcome."""
        return self.call("submit", **spec.to_payload())

    def status(self, job_id: Optional[str] = None) -> dict[str, Any]:
        """Status of one job, or of every known job."""
        if job_id is None:
            return self.call("status")
        return self.call("status", job_id=job_id)

    def cancel(self, job_id: str) -> dict[str, Any]:
        """Cancel a parked or active job."""
        return self.call("cancel", job_id=job_id)

    def metrics(self) -> dict[str, Any]:
        """Engine/cluster metrics snapshot."""
        return self.call("metrics")

    def metrics_text(self) -> str:
        """The registry in Prometheus text exposition format."""
        return str(self.call("metrics_text").get("text", ""))

    def history(self, job_id: str) -> dict[str, Any]:
        """A job's event timeline."""
        return self.call("history", job_id=job_id)

    def drain(self, max_rounds: int = 100_000) -> dict[str, Any]:
        """Stop admissions and run everything to completion."""
        return self.call("drain", max_rounds=max_rounds)

    def step(self, rounds: int = 1) -> dict[str, Any]:
        """Advance scheduler rounds without draining."""
        return self.call("step", rounds=rounds)

    def faultctl(
        self,
        action: str,
        server_id: Optional[int] = None,
        gpu_id: Optional[int] = None,
        slowdown: Optional[float] = None,
    ) -> dict[str, Any]:
        """Inspect ("status") or inject faults (e.g. "server_crash")."""
        params: dict[str, Any] = {"action": action}
        if server_id is not None:
            params["server_id"] = server_id
        if gpu_id is not None:
            params["gpu_id"] = gpu_id
        if slowdown is not None:
            params["slowdown"] = slowdown
        return self.call("faultctl", **params)

    def snapshot(self) -> str:
        """Force a snapshot; returns its path."""
        return str(self.call("snapshot")["path"])

    def shutdown(self) -> None:
        """Ask the daemon to stop."""
        self.call("shutdown")

    def wait(
        self,
        job_id: str,
        timeout: float = 60.0,
        poll_interval: float = 0.05,
    ) -> dict[str, Any]:
        """Poll ``status`` until the job reaches a terminal state."""
        deadline = time.monotonic() + timeout
        while True:
            status = self.status(job_id)
            if status.get("state") in {"completed", "cancelled", "rejected"}:
                return status
            if time.monotonic() >= deadline:
                raise TimeoutError(f"job {job_id} not terminal after {timeout}s")
            time.sleep(poll_interval)
