"""Blocking client for the scheduler daemon and the gateway front tier.

Speaks the newline-delimited JSON protocol over a Unix domain socket or
a TCP connection.  One request ↔ one response, in order, on one
connection; the client is safe to reuse sequentially but is not
thread-safe.

Targets
-------
The constructor accepts any of:

* a filesystem path (``"/tmp/repro.sock"``) — Unix domain socket;
* ``"host:port"`` (``"127.0.0.1:7450"``) — TCP, how clients reach the
  gateway front tier;
* an explicit scheme: ``"unix:///tmp/repro.sock"`` or
  ``"tcp://127.0.0.1:7450"``.

Connection attempts retry with bounded exponential backoff on
``ConnectionRefusedError`` / ``FileNotFoundError`` so a client started
alongside a daemon (or the gateway supervisor waiting on a worker it
just spawned) tolerates the short window before the socket exists.

Usage::

    with ServiceClient("/tmp/repro.sock") as client:
        out = client.submit(JobSpec(model_name="resnet", gpus_requested=4))
        client.wait(out["job_id"])
        print(client.metrics())
"""

from __future__ import annotations

import socket
import time
from typing import Any, Optional

from repro.obs.tracectx import TraceContext
from repro.service.protocol import (
    JobSpec,
    ProtocolError,
    Request,
    parse_response,
)

#: Errors worth retrying while a daemon is still starting up.
_RETRYABLE = (ConnectionRefusedError, FileNotFoundError)


class ServiceError(RuntimeError):
    """The daemon answered with an error response."""


def parse_target(target: str) -> tuple[str, Any]:
    """Classify a connection target.

    Returns ``("unix", path)`` or ``("tcp", (host, port))``.  A bare
    ``host:port`` (no slash, integer port) is TCP; anything else is a
    Unix socket path.
    """
    if target.startswith("unix://"):
        return "unix", target[len("unix://") :]
    if target.startswith("tcp://"):
        target = target[len("tcp://") :]
        host, _, port = target.rpartition(":")
        if not host or not port.isdigit():
            raise ValueError(f"bad tcp target {target!r}; want host:port")
        return "tcp", (host, int(port))
    if "/" not in target and ":" in target:
        host, _, port = target.rpartition(":")
        if host and port.isdigit():
            return "tcp", (host, int(port))
    return "unix", target


class ServiceClient:
    """A small synchronous client for the daemon/gateway socket."""

    def __init__(
        self,
        target: str,
        timeout: float = 30.0,
        connect_retries: int = 5,
        connect_backoff: float = 0.05,
        connect_backoff_cap: float = 1.0,
    ) -> None:
        self.target = target
        self.timeout = timeout
        self.connect_retries = max(0, int(connect_retries))
        self.connect_backoff = connect_backoff
        self.connect_backoff_cap = connect_backoff_cap
        self._sock: Optional[socket.socket] = None
        self._file = None
        self._next_id = 0

    @property
    def socket_path(self) -> str:
        """Back-compat alias for the connection target."""
        return self.target

    # -- connection --------------------------------------------------------

    def _open(self) -> socket.socket:
        kind, address = parse_target(self.target)
        if kind == "tcp":
            sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        else:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(self.timeout)
        try:
            sock.connect(address)
        except BaseException:
            sock.close()
            raise
        return sock

    def connect(self) -> "ServiceClient":
        """Open the connection (idempotent), retrying with backoff.

        Up to ``connect_retries`` re-attempts follow the first failure,
        sleeping ``connect_backoff * 2**attempt`` (capped) between
        tries, so a daemon that is still binding its socket does not
        force callers into sleep-and-hope loops.  The final error is
        re-raised unchanged.
        """
        if self._sock is not None:
            return self
        delay = self.connect_backoff
        for attempt in range(self.connect_retries + 1):
            try:
                sock = self._open()
                break
            except _RETRYABLE:
                if attempt >= self.connect_retries:
                    raise
                time.sleep(min(delay, self.connect_backoff_cap))
                delay *= 2.0
        self._sock = sock
        self._file = sock.makefile("rwb")
        return self

    def close(self) -> None:
        """Close the connection (idempotent)."""
        if self._file is not None:
            try:
                self._file.close()
            except OSError:
                pass
            self._file = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def __enter__(self) -> "ServiceClient":
        return self.connect()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- request plumbing --------------------------------------------------

    def call(
        self, op: str, _trace: Optional[TraceContext] = None, **params: Any
    ) -> dict[str, Any]:
        """Send one request; return the ``result`` dict or raise.

        ``_trace`` (keyword, underscored to stay clear of verb params)
        attaches a trace-context envelope so the receiving process
        parents its spans under the caller's span.
        """
        self.connect()
        assert self._file is not None
        self._next_id += 1
        request = Request(
            op=op,
            id=f"c{self._next_id}",
            params=params,
            trace=_trace.to_wire() if _trace is not None else None,
        )
        self._file.write(request.encode())
        self._file.flush()
        line = self._file.readline()
        if not line:
            raise ServiceError("connection closed by daemon")
        try:
            response = parse_response(line)
        except ProtocolError as exc:
            raise ServiceError(f"bad response: {exc}") from None
        if not response.ok:
            raise ServiceError(response.error or "unknown daemon error")
        return response.result

    # -- verbs -------------------------------------------------------------

    def ping(self) -> bool:
        """Liveness probe."""
        return bool(self.call("ping").get("pong"))

    def ping_info(self) -> dict[str, Any]:
        """Liveness probe with the measured round-trip latency (ms)."""
        start = time.perf_counter()
        result = self.call("ping")
        result["rtt_ms"] = (time.perf_counter() - start) * 1000.0
        return result

    def submit(
        self, spec: JobSpec, trace: Optional[TraceContext] = None
    ) -> dict[str, Any]:
        """Submit a job; returns job_id plus the admission outcome."""
        return self.call("submit", _trace=trace, **spec.to_payload())

    def submit_batch(
        self,
        specs: list[JobSpec] | list[dict[str, Any]],
        trace: Optional[TraceContext] = None,
    ) -> list[dict[str, Any]]:
        """Submit many jobs in one round trip; per-job outcomes in order."""
        jobs = [
            spec.to_payload() if isinstance(spec, JobSpec) else dict(spec)
            for spec in specs
        ]
        out = self.call("submit_batch", _trace=trace, jobs=jobs)
        return list(out.get("results", []))

    def status(self, job_id: Optional[str] = None) -> dict[str, Any]:
        """Status of one job, or of every known job."""
        if job_id is None:
            return self.call("status")
        return self.call("status", job_id=job_id)

    def cancel(self, job_id: str) -> dict[str, Any]:
        """Cancel a parked or active job."""
        return self.call("cancel", job_id=job_id)

    def metrics(self) -> dict[str, Any]:
        """Engine/cluster metrics snapshot."""
        return self.call("metrics")

    def metrics_text(self) -> str:
        """The registry in Prometheus text exposition format."""
        return str(self.call("metrics_text").get("text", ""))

    def history(self, job_id: str) -> dict[str, Any]:
        """A job's event timeline."""
        return self.call("history", job_id=job_id)

    def drain(self, max_rounds: int = 100_000) -> dict[str, Any]:
        """Stop admissions and run everything to completion."""
        return self.call("drain", max_rounds=max_rounds)

    def step(
        self,
        rounds: int = 1,
        until: Optional[float] = None,
        events: Optional[int] = None,
    ) -> dict[str, Any]:
        """Advance the scheduler without draining.

        Exactly one stepping mode applies: ``until`` runs passes until
        the sim clock reaches that time, ``events`` until that many
        simulator events have been processed, and otherwise ``rounds``
        counts scheduling passes (the legacy mode).
        """
        if until is not None and events is not None:
            raise ValueError("step accepts at most one of 'until' and 'events'")
        if until is not None:
            return self.call("step", until=until)
        if events is not None:
            return self.call("step", events=events)
        return self.call("step", rounds=rounds)

    def workers(self) -> dict[str, Any]:
        """Per-partition worker liveness (gateway only)."""
        return self.call("workers")

    def gossip(self) -> dict[str, Any]:
        """Force an occupancy poll of every worker (gateway only)."""
        return self.call("gossip")

    def faultctl(
        self,
        action: str,
        server_id: Optional[int] = None,
        gpu_id: Optional[int] = None,
        slowdown: Optional[float] = None,
    ) -> dict[str, Any]:
        """Inspect ("status") or inject faults (e.g. "server_crash")."""
        params: dict[str, Any] = {"action": action}
        if server_id is not None:
            params["server_id"] = server_id
        if gpu_id is not None:
            params["gpu_id"] = gpu_id
        if slowdown is not None:
            params["slowdown"] = slowdown
        return self.call("faultctl", **params)

    def trace_dump(
        self, deterministic: bool = False, reset: bool = False
    ) -> dict[str, Any]:
        """The server's span dump.

        Against a single daemon: its raw spans (``events``/``dropped``).
        Against the gateway: one merged Chrome-trace document covering
        the gateway and every worker (``trace`` key), with
        ``deterministic`` re-keying timestamps onto the canonical order
        so same-seed dumps are byte-identical.
        """
        return self.call("trace_dump", deterministic=deterministic, reset=reset)

    def snapshot(self) -> str:
        """Force a snapshot; returns its path."""
        return str(self.call("snapshot")["path"])

    def shutdown(self) -> None:
        """Ask the daemon to stop."""
        self.call("shutdown")

    def wait(
        self,
        job_id: str,
        timeout: float = 60.0,
        poll_interval: float = 0.05,
    ) -> dict[str, Any]:
        """Poll ``status`` until the job reaches a terminal state."""
        deadline = time.monotonic() + timeout
        while True:
            status = self.status(job_id)
            if status.get("state") in {"completed", "cancelled", "rejected"}:
                return status
            if time.monotonic() >= deadline:
                raise TimeoutError(f"job {job_id} not terminal after {timeout}s")
            time.sleep(poll_interval)
