"""Crash-safe snapshot/restore of the scheduler service.

Snapshot format (``DESIGN.md`` § service subsystem): one file per
snapshot, named ``snap-<round:010d>.pkl``, containing a pickled dict::

    {
        "format": SNAPSHOT_FORMAT,      # int, bumped on layout changes
        "round": <engine round index>,
        "sim_time": <engine clock, seconds>,
        "state": <the pickled service core>,
    }

The service core object graph (engine → cluster → jobs/tasks, scheduler,
predictors, RNGs, admission controller) is pure Python, so ``pickle``
round-trips it exactly — including every ``random.Random`` state — which
is what makes resume *deterministic*: a restored daemon replays the same
subsequent schedule an uninterrupted one would have produced.

Crash safety: writes go to a temp file in the same directory followed by
``os.replace`` (atomic on POSIX), so a crash mid-write can never corrupt
the newest complete snapshot.  A bounded ring of recent snapshots is
kept; older ones are pruned.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Optional

#: Snapshot layout revision.
SNAPSHOT_FORMAT = 1

_PREFIX = "snap-"
_SUFFIX = ".pkl"


class SnapshotError(RuntimeError):
    """Unreadable, incompatible, or missing snapshot."""


@dataclass
class SnapshotManager:
    """Writes and restores service snapshots under one directory."""

    directory: Path
    keep: int = 5

    def __post_init__(self) -> None:
        self.directory = Path(self.directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        if self.keep < 1:
            raise ValueError("keep must be >= 1")

    # -- paths -------------------------------------------------------------

    def _path_for(self, round_index: int) -> Path:
        return self.directory / f"{_PREFIX}{round_index:010d}{_SUFFIX}"

    def list_snapshots(self) -> list[Path]:
        """Snapshot files, oldest first."""
        return sorted(self.directory.glob(f"{_PREFIX}*{_SUFFIX}"))

    def latest_path(self) -> Optional[Path]:
        """The newest snapshot file, or ``None``."""
        snapshots = self.list_snapshots()
        return snapshots[-1] if snapshots else None

    # -- save / load -------------------------------------------------------

    def save(self, state: Any, round_index: int, sim_time: float) -> Path:
        """Atomically persist one snapshot; returns its path."""
        payload = {
            "format": SNAPSHOT_FORMAT,
            "round": round_index,
            "sim_time": sim_time,
            "state": state,
        }
        target = self._path_for(round_index)
        fd, tmp_name = tempfile.mkstemp(
            prefix=".tmp-snap-", suffix=_SUFFIX, dir=self.directory
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_name, target)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self._prune()
        return target

    def load(self, path: Optional[Path] = None) -> Any:
        """Restore the state object from ``path`` (default: newest)."""
        target = Path(path) if path is not None else self.latest_path()
        if target is None:
            raise SnapshotError(f"no snapshots under {self.directory}")
        try:
            with target.open("rb") as handle:
                payload = pickle.load(handle)
        except (OSError, pickle.UnpicklingError, EOFError) as exc:
            raise SnapshotError(f"cannot read snapshot {target}: {exc}") from exc
        if not isinstance(payload, dict) or "state" not in payload:
            raise SnapshotError(f"snapshot {target} has no state payload")
        if payload.get("format") != SNAPSHOT_FORMAT:
            raise SnapshotError(
                f"snapshot {target} has format {payload.get('format')!r}, "
                f"expected {SNAPSHOT_FORMAT}"
            )
        return payload["state"]

    def load_meta(self, path: Optional[Path] = None) -> dict[str, Any]:
        """Snapshot header (round, sim_time) without keeping the state."""
        target = Path(path) if path is not None else self.latest_path()
        if target is None:
            raise SnapshotError(f"no snapshots under {self.directory}")
        with target.open("rb") as handle:
            payload = pickle.load(handle)
        return {k: payload[k] for k in ("format", "round", "sim_time")}

    def _prune(self) -> None:
        snapshots = self.list_snapshots()
        for stale in snapshots[: max(0, len(snapshots) - self.keep)]:
            try:
                stale.unlink()
            except OSError:
                pass
