"""Admission control for the scheduler daemon.

MLF-C declares the system overloaded "when there are tasks in the queue
or when ``O_c > h_s``" (Section 3.5).  The daemon applies the same
predicate at the submission boundary: while the cluster's (smoothed)
overload degree exceeds ``h_s``, new submissions are either parked in an
admission queue (released oldest-first once the overload clears) or
rejected outright, depending on policy.  The smoothing comes from
:class:`repro.core.overload.OverloadTracker` so one hot round does not
flap the gate.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Optional

from repro.cluster.cluster import Cluster
from repro.core.overload import OverloadTracker


class AdmissionPolicy(enum.Enum):
    """What to do with a submission that arrives under overload."""

    #: Park it in the admission queue until the overload clears.
    QUEUE = "queue"
    #: Refuse it; the client must resubmit later.
    REJECT = "reject"


class AdmissionDecision(enum.Enum):
    """Outcome of one admission check."""

    ADMIT = "admitted"
    QUEUE = "queued"
    REJECT = "rejected"


@dataclass
class AdmissionController:
    """Gates submissions on the cluster overload degree ``O_c``.

    Parameters
    ----------
    threshold:
        The system overload threshold ``h_s``.
    policy:
        Queue or reject submissions arriving under overload.
    queue_limit:
        Hard cap on the admission queue; beyond it even the QUEUE policy
        rejects (back-pressure toward the client).
    alpha:
        EWMA weight for the overload tracker (1.0 = raw ``O_c``).
    """

    threshold: float = 0.90
    policy: AdmissionPolicy = AdmissionPolicy.QUEUE
    queue_limit: int = 1024
    alpha: float = 0.5
    tracker: OverloadTracker = field(init=False)
    _pending: Deque[str] = field(default_factory=deque, repr=False)

    def __post_init__(self) -> None:
        self.tracker = OverloadTracker(alpha=self.alpha)

    # -- sampling ----------------------------------------------------------

    def observe(self, cluster: Cluster) -> float:
        """Fold in the current ``O_c``; call once per scheduler round."""
        return self.tracker.observe(cluster.overload_degree())

    @property
    def overloaded(self) -> bool:
        """Whether the smoothed ``O_c`` currently exceeds ``h_s``."""
        return self.tracker.exceeds(self.threshold)

    # -- admission ---------------------------------------------------------

    def check(self, cluster: Cluster) -> AdmissionDecision:
        """Decide the fate of a submission arriving right now.

        Uses the live cluster for the freshest sample, folded into the
        tracker.  Earlier queued submissions keep their queue order: a
        new submission cannot jump ahead of a non-empty admission queue.
        """
        self.observe(cluster)
        if not self.overloaded and not self._pending:
            return AdmissionDecision.ADMIT
        if self.policy is AdmissionPolicy.REJECT:
            return AdmissionDecision.REJECT
        if len(self._pending) >= self.queue_limit:
            return AdmissionDecision.REJECT
        return AdmissionDecision.QUEUE

    def park(self, job_id: str) -> None:
        """Append a queued submission to the admission queue."""
        self._pending.append(job_id)

    def release(self, cluster: Cluster, limit: Optional[int] = None) -> list[str]:
        """Job ids to admit now that (maybe) the overload cleared.

        Returns an empty list while the smoothed overload persists.
        ``limit`` bounds how many release per call (default: all).
        """
        self.observe(cluster)
        if self.overloaded:
            return []
        count = len(self._pending) if limit is None else min(limit, len(self._pending))
        return [self._pending.popleft() for _ in range(count)]

    def withdraw(self, job_id: str) -> bool:
        """Remove a parked submission (client cancel); True if found."""
        try:
            self._pending.remove(job_id)
        except ValueError:
            return False
        return True

    @property
    def queue_depth(self) -> int:
        """Number of submissions parked in the admission queue."""
        return len(self._pending)

    def parked_ids(self) -> list[str]:
        """Snapshot of the admission queue, oldest first."""
        return list(self._pending)
