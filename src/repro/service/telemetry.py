"""Per-round telemetry export as JSON lines.

Each scheduler round the daemon emits one structured record describing
the round: queue depths, cluster overload degree, scheduling actions
(placements / migrations / evictions), completions, and running JCT
percentiles.  The format is append-only JSONL so a crash loses at most
the current line, and the records feed directly into the existing
:mod:`repro.analysis` tooling (:func:`repro.analysis.cdf.percentile`,
:func:`repro.analysis.tables.format_table`).
"""

from __future__ import annotations

import json
from bisect import insort
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Optional, TextIO

from repro.analysis.cdf import percentile_sorted
from repro.sim.engine import PassResult
from repro.sim.metrics import SimulationMetrics

#: Telemetry format revision (stamped into every record).
TELEMETRY_VERSION = 1

#: Revision of the event-mode (pass-keyed) record schema.
PASS_TELEMETRY_VERSION = 2

#: JCT percentiles reported each round.
JCT_PERCENTILES = (50.0, 95.0, 99.0)


class RunningJctStats:
    """Incrementally sorted JCT sample for per-round percentile queries.

    ``metrics.job_records`` is append-only, so instead of re-sorting the
    whole JCT list every round (O(n log n) per round, O(n² log n) over a
    run), this keeps a sorted copy and folds in only the records that
    arrived since the last sync (``bisect.insort``, O(completions · n)
    moves but zero re-sorts).  Percentile math is shared with
    :func:`repro.analysis.cdf.percentile` via
    :func:`~repro.analysis.cdf.percentile_sorted`, so the reported
    values are bit-identical to the old implementation.

    The tracker is plain data and pickles with daemon snapshots; after a
    restore it resynchronizes from wherever the record list stands.
    """

    def __init__(self) -> None:
        self._sorted: list[float] = []
        self._seen = 0

    def sync(self, metrics: SimulationMetrics) -> None:
        """Fold in job records appended since the last call."""
        records = metrics.job_records
        if self._seen > len(records):
            # The metrics object was replaced/rewound; rebuild.
            self._sorted = []
            self._seen = 0
        for record in records[self._seen :]:
            insort(self._sorted, record.jct)
        self._seen = len(records)

    def percentile(self, q: float) -> float:
        """Linear-interpolated percentile of the tracked sample."""
        return percentile_sorted(self._sorted, q)

    def __len__(self) -> int:
        return len(self._sorted)


def round_record(
    result: PassResult,
    metrics: SimulationMetrics,
    admission_queue_depth: int = 0,
    overload_smoothed: Optional[float] = None,
    jct_stats: Optional[RunningJctStats] = None,
) -> dict[str, Any]:
    """Build one telemetry record from a round result and the metrics.

    ``jct_stats`` is the hot-path option: a caller-owned
    :class:`RunningJctStats` makes the percentile block incremental
    instead of sorting every completed job's JCT again each round.
    """
    if jct_stats is None:
        jct_stats = RunningJctStats()
    jct_stats.sync(metrics)
    record: dict[str, Any] = {
        "v": TELEMETRY_VERSION,
        "round": result.round_index,
        "sim_time": result.now,
        "queue_depth": result.queue_depth,
        "admission_queue_depth": admission_queue_depth,
        "active_jobs": result.active_jobs,
        "running_jobs": result.running_jobs,
        "overload_degree": result.overload_degree,
        "arrivals": result.arrivals,
        "placements": result.placements,
        "migrations": result.migrations,
        "evictions": result.evictions,
        "completions": result.completions,
        "stops": result.stops,
        "faults": result.faults,
        "tasks_killed": result.tasks_killed,
        "failed_servers": result.failed_servers,
        "completed_total": len(metrics.job_records),
        "deadline_ratio": metrics.deadline_guarantee_ratio(),
        "bandwidth_mb": metrics.total_bandwidth_mb(),
    }
    if overload_smoothed is not None:
        record["overload_smoothed"] = overload_smoothed
    for q in JCT_PERCENTILES:
        record[f"jct_p{int(q)}"] = jct_stats.percentile(q) if len(jct_stats) else 0.0
    return record


def pass_record(
    result: PassResult,
    metrics: SimulationMetrics,
    admission_queue_depth: int = 0,
    overload_smoothed: Optional[float] = None,
    jct_stats: Optional[RunningJctStats] = None,
) -> dict[str, Any]:
    """The v2 (event-mode) telemetry record, keyed by sim time.

    Same measurement surface as :func:`round_record` but a pass-centric
    header: ``v`` is :data:`PASS_TELEMETRY_VERSION`, the pass counter
    lives under ``pass_index`` (no ``round`` key), and
    ``events_processed`` reports how many simulator events the pass
    consumed.  Readers (:func:`summarize_telemetry`,
    :mod:`repro.analysis.telemetry`) accept both schemas; see
    DESIGN.md §15 for the migration window.
    """
    record = round_record(
        result,
        metrics,
        admission_queue_depth=admission_queue_depth,
        overload_smoothed=overload_smoothed,
        jct_stats=jct_stats,
    )
    del record["round"]
    record["v"] = PASS_TELEMETRY_VERSION
    record["pass_index"] = result.pass_index
    record["events_processed"] = result.events_processed
    return record


@dataclass
class TelemetryExporter:
    """Appends telemetry records to a JSONL file (or swallows them).

    ``path=None`` keeps the exporter as an in-memory ring useful for
    tests and the in-process demo; otherwise every record is written and
    flushed immediately (crash-safety: a record is durable as soon as
    :meth:`emit` returns).
    """

    path: Optional[Path] = None
    keep_in_memory: int = 4096
    records: list[dict[str, Any]] = field(default_factory=list)
    _handle: Optional[TextIO] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.path is not None:
            self.path = Path(self.path)
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = self.path.open("a", encoding="utf-8")

    def emit(self, record: dict[str, Any]) -> None:
        """Append one record."""
        self.records.append(record)
        if len(self.records) > self.keep_in_memory:
            del self.records[: -self.keep_in_memory]
        if self._handle is not None:
            self._handle.write(json.dumps(record, separators=(",", ":")) + "\n")
            self._handle.flush()

    def close(self) -> None:
        """Close the underlying file (idempotent)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    # Exporters are often owned by a daemon that pickles itself for
    # snapshots; the open file handle must not travel along.
    def __getstate__(self) -> dict[str, Any]:
        state = dict(self.__dict__)
        state["_handle"] = None
        return state

    def __setstate__(self, state: dict[str, Any]) -> None:
        self.__dict__.update(state)
        if self.path is not None:
            self.path = Path(self.path)
            self._handle = self.path.open("a", encoding="utf-8")


def read_telemetry(path: str | Path) -> list[dict[str, Any]]:
    """Load every record of a telemetry JSONL file.

    A trailing partial line (crash mid-write) is ignored rather than
    raised, matching the crash-safety contract of the exporter.
    """
    records: list[dict[str, Any]] = []
    with Path(path).open(encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError:
                continue
    return records


def summarize_telemetry(records: Iterable[dict[str, Any]]) -> dict[str, float]:
    """Headline aggregates over a telemetry stream."""
    records = list(records)
    if not records:
        return {"rounds": 0.0}
    last = records[-1]
    queue_depths = [r.get("queue_depth", 0) for r in records]
    overloads = [r.get("overload_degree", 0.0) for r in records]
    migrations = sum(r.get("migrations", 0) for r in records)
    evictions = sum(r.get("evictions", 0) for r in records)
    return {
        "rounds": float(len(records)),
        "sim_time_s": float(last.get("sim_time", 0.0)),
        "jobs_completed": float(last.get("completed_total", 0)),
        "placements": float(sum(r.get("placements", 0) for r in records)),
        "migrations": float(migrations),
        "evictions": float(evictions),
        "migrations_per_round": migrations / len(records),
        "evictions_per_round": evictions / len(records),
        "stops": float(sum(r.get("stops", 0) for r in records)),
        "max_queue_depth": float(max(queue_depths)),
        "mean_queue_depth": sum(queue_depths) / len(queue_depths),
        "max_overload_degree": max(overloads),
        "jct_p50_s": float(last.get("jct_p50", 0.0)),
        "jct_p95_s": float(last.get("jct_p95", 0.0)),
        "jct_p99_s": float(last.get("jct_p99", 0.0)),
        "deadline_ratio": float(last.get("deadline_ratio", 0.0)),
        "bandwidth_gb": float(last.get("bandwidth_mb", 0.0)) / 1024.0,
    }
