"""Online scheduler service: daemon, client, admission, snapshots, telemetry.

Turns the batch simulator into a long-running scheduler daemon.  The
paper's scheduler "runs every minute" against a stream of arriving jobs
(Section 4.1); this package supplies that online shell:

* :mod:`repro.service.protocol` — the newline-delimited JSON wire format;
* :mod:`repro.service.admission` — MLF-C-style admission control on the
  cluster overload degree ``O_c`` vs ``h_s``;
* :mod:`repro.service.daemon` — the asyncio daemon plus the synchronous
  :class:`SchedulerService` core it wraps;
* :mod:`repro.service.client` — a small blocking client library;
* :mod:`repro.service.snapshot` — crash-safe snapshot/restore with
  deterministic resume;
* :mod:`repro.service.telemetry` — per-round JSON-lines telemetry.
"""

from repro.service.admission import (
    AdmissionDecision,
    AdmissionController,
    AdmissionPolicy,
)
from repro.service.client import ServiceClient, ServiceError, parse_target
from repro.service.daemon import (
    SchedulerDaemon,
    SchedulerService,
    ServiceConfig,
    serve,
)
from repro.service.protocol import (
    JobSpec,
    ProtocolError,
    Request,
    Response,
    decode_line,
    encode_line,
    parse_request,
    parse_response,
)
from repro.service.snapshot import SnapshotManager
from repro.service.telemetry import (
    RunningJctStats,
    TelemetryExporter,
    read_telemetry,
    summarize_telemetry,
)

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "AdmissionPolicy",
    "JobSpec",
    "ProtocolError",
    "Request",
    "Response",
    "RunningJctStats",
    "SchedulerDaemon",
    "SchedulerService",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
    "SnapshotManager",
    "TelemetryExporter",
    "decode_line",
    "encode_line",
    "parse_request",
    "parse_response",
    "parse_target",
    "read_telemetry",
    "serve",
    "summarize_telemetry",
]
