"""Wire protocol of the scheduler daemon.

Newline-delimited JSON over a local stream socket: each request and each
response is one JSON object on one line (UTF-8, ``\\n``-terminated).  A
request carries an ``op`` (the verb), an optional client-chosen ``id``
echoed back in the response, and verb-specific parameters.  A response
carries ``ok`` plus either a ``result`` object or an ``error`` string.

Verbs
-----
``submit``   Submit one job (a :class:`JobSpec`); admission control may
             admit, queue, or reject it.
``submit_batch``
             Submit many jobs in one round trip (``jobs`` is a list of
             :class:`JobSpec` payloads).  Per-job outcomes come back in
             submission order; one malformed spec fails only its own
             slot, never the batch.  This is the verb the gateway uses
             to pipeline a whole partition's worth of submissions to a
             worker.
``status``   Status of one job (``job_id``) or of every known job.
``cancel``   Cancel a queued or running job.
``metrics``  Cluster/engine metrics summary.
``metrics_text``
             The observability registry rendered in the Prometheus text
             exposition format (counters, gauges, phase-latency
             histograms).
``history``  A job's event timeline (``job_id``): admission → submitted
             → queued → placed → migrated/evicted → stopped/completed,
             each stamped with round, servers and priority.
``drain``    Stop admitting work and run the engine until everything
             completes.
``step``     Advance the scheduler without draining (keeps admitting;
             useful for tests and paced drivers).  Exactly one of three
             stepping modes: ``rounds`` (fixed number of scheduling
             passes, the legacy default), ``until`` (run passes until
             the sim clock reaches that time, then fast-forward the
             clock to it), or ``events`` (run passes until that many
             simulator events were processed).
``snapshot`` Force a snapshot to disk now.
``ping``     Liveness probe (clients time it for round-trip latency).
``workers``  Per-partition worker liveness (gateway only).
``gossip``   Force an occupancy/health poll of every worker and return
             the resulting occupancy board (gateway only).
``shutdown`` Stop the daemon (snapshotting first when configured).
``trace_dump``
             The process's recorded spans (raw
             :class:`~repro.obs.tracing.SpanRecord` dicts plus the
             dropped-span count).  A single daemon returns its own; the
             gateway fans out and merges every worker's dump with its
             own into one Chrome-trace document with a lane per process
             (see :mod:`repro.obs.distributed`).

Trace context
-------------
Any request may carry an optional ``trace`` envelope field —
``{"trace_id": ..., "span_id": ...}`` — naming the sender's span, so
the receiving process parents its spans under the caller's
(:mod:`repro.obs.tracectx`).  Job payloads additionally carry optional
``trace_id`` / ``parent_span_id`` fields for per-submission traces.
IDs are seeded SHA-256 digests, never ``uuid``/wall-clock, so traced
runs stay bit-reproducible.

A gateway front tier (:mod:`repro.gateway`) speaks the same protocol
over TCP and fans the verbs out across its partition workers, so one
client library serves both tiers.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Any, Optional

#: Protocol revision; bumped on incompatible changes.
PROTOCOL_VERSION = 1

VERBS = frozenset(
    {
        "submit",
        "submit_batch",
        "status",
        "workers",
        "gossip",
        "cancel",
        "metrics",
        "metrics_text",
        "history",
        "drain",
        "step",
        "faultctl",
        "snapshot",
        "ping",
        "shutdown",
        "trace_dump",
    }
)


#: asyncio stream line limit for every listener/connection speaking this
#: protocol.  One ``submit_batch`` line carries the whole batch and one
#: ``trace_dump`` line carries a whole span dump, so the default 64 KiB
#: StreamReader limit truncates them; 64 MiB comfortably fits tens of
#: thousands of jobs — or a full 500k-span tracer ring — per line.
STREAM_LIMIT = 64 * 1024 * 1024


class ProtocolError(ValueError):
    """Malformed request or response line."""


@dataclass(frozen=True, slots=True)
class JobSpec:
    """Client-side description of one job submission.

    Mirrors :class:`repro.workload.trace.TraceRecord` minus arrival time
    (the daemon stamps arrivals with its own simulation clock).

    ``tenant`` identifies the submitting tenant; the gateway's
    consistent-hash ring routes on it (falling back to the job id) so
    one tenant's jobs land on one partition.  A single daemon ignores
    it beyond echoing it in ``status``.

    ``trace_id`` / ``parent_span_id`` carry the submission's distributed
    trace context (:mod:`repro.obs.tracectx`); the worker parents its
    admission span under them.  Untraced runs omit both.
    """

    model_name: str = "alexnet"
    gpus_requested: int = 4
    max_iterations: int = 20
    accuracy_requirement: float = 0.8
    urgency: int = 5
    training_data_mb: float = 500.0
    job_id: Optional[str] = None
    tenant: Optional[str] = None
    trace_id: Optional[str] = None
    parent_span_id: Optional[str] = None

    def validate(self) -> None:
        """Raise ``ProtocolError`` on out-of-domain fields."""
        if self.gpus_requested < 1:
            raise ProtocolError("gpus_requested must be >= 1")
        if self.max_iterations < 1:
            raise ProtocolError("max_iterations must be >= 1")
        if not 0.0 <= self.accuracy_requirement <= 1.0:
            raise ProtocolError("accuracy_requirement out of [0, 1]")
        if self.urgency < 0:
            raise ProtocolError("urgency must be >= 0")
        if self.training_data_mb <= 0:
            raise ProtocolError("training_data_mb must be positive")
        for name in ("trace_id", "parent_span_id"):
            value = getattr(self, name)
            if value is not None and (not isinstance(value, str) or not value):
                raise ProtocolError(f"{name} must be a non-empty string")

    def to_payload(self) -> dict[str, Any]:
        """The JSON-safe dict form (unset optional fields omitted)."""
        payload = asdict(self)
        for optional in ("job_id", "tenant", "trace_id", "parent_span_id"):
            if payload[optional] is None:
                del payload[optional]
        return payload

    @classmethod
    def from_payload(cls, payload: dict[str, Any]) -> "JobSpec":
        """Parse and validate a payload dict."""
        known = {f for f in cls.__dataclass_fields__}  # noqa: C416
        unknown = set(payload) - known
        if unknown:
            raise ProtocolError(f"unknown job fields: {sorted(unknown)}")
        try:
            spec = cls(**payload)
        except TypeError as exc:
            raise ProtocolError(str(exc)) from None
        spec.validate()
        return spec


@dataclass(frozen=True, slots=True)
class Request:
    """One decoded client request.

    ``trace`` is the optional trace-context envelope (a
    ``{"trace_id", "span_id"}`` dict naming the sender's span); it is
    verb-independent, so any call can be traced without widening verb
    signatures.
    """

    op: str
    id: Optional[str] = None
    params: dict[str, Any] = field(default_factory=dict)
    trace: Optional[dict[str, Any]] = None

    def encode(self) -> bytes:
        """Serialize to one wire line."""
        body = {"op": self.op, **self.params}
        if self.id is not None:
            body["id"] = self.id
        if self.trace is not None:
            body["trace"] = self.trace
        return encode_line(body)


@dataclass(frozen=True, slots=True)
class Response:
    """One daemon response."""

    ok: bool
    id: Optional[str] = None
    result: dict[str, Any] = field(default_factory=dict)
    error: Optional[str] = None

    def encode(self) -> bytes:
        """Serialize to one wire line."""
        body: dict[str, Any] = {"ok": self.ok}
        if self.id is not None:
            body["id"] = self.id
        if self.ok:
            body["result"] = self.result
        else:
            body["error"] = self.error or "unknown error"
        return encode_line(body)

    @classmethod
    def success(cls, result: dict[str, Any], id: Optional[str] = None) -> "Response":
        """A successful response."""
        return cls(ok=True, id=id, result=result)

    @classmethod
    def failure(cls, error: str, id: Optional[str] = None) -> "Response":
        """A failed response."""
        return cls(ok=False, id=id, error=error)


def encode_line(body: dict[str, Any]) -> bytes:
    """One JSON object, compact separators, newline-terminated."""
    return (json.dumps(body, separators=(",", ":"), sort_keys=True) + "\n").encode()


def decode_line(line: bytes | str) -> dict[str, Any]:
    """Parse one wire line into a dict (raises ``ProtocolError``)."""
    if isinstance(line, bytes):
        line = line.decode("utf-8", errors="replace")
    line = line.strip()
    if not line:
        raise ProtocolError("empty line")
    try:
        body = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"invalid JSON: {exc}") from None
    if not isinstance(body, dict):
        raise ProtocolError("wire messages must be JSON objects")
    return body


def parse_request(line: bytes | str) -> Request:
    """Decode and validate one request line."""
    body = decode_line(line)
    op = body.pop("op", None)
    if not isinstance(op, str) or op not in VERBS:
        raise ProtocolError(f"unknown op {op!r}; valid: {sorted(VERBS)}")
    request_id = body.pop("id", None)
    if request_id is not None and not isinstance(request_id, str):
        raise ProtocolError("id must be a string")
    trace = body.pop("trace", None)
    if trace is not None and not isinstance(trace, dict):
        raise ProtocolError("trace must be an object")
    return Request(op=op, id=request_id, params=body, trace=trace)


def parse_response(line: bytes | str) -> Response:
    """Decode one response line."""
    body = decode_line(line)
    if "ok" not in body:
        raise ProtocolError("response missing 'ok'")
    return Response(
        ok=bool(body["ok"]),
        id=body.get("id"),
        result=body.get("result") or {},
        error=body.get("error"),
    )
