"""HyperSched (Liaw et al., SoCC 2019) — as characterized in the paper.

"HyperSched aims to produce a trained model with higher accuracy before
the pre-set deadline under a certain resource constraint.  This method
pauses jobs that do not increase accuracy significantly and tends to
assign more resources to the job with more accuracy improvement before
its deadline" (Section 2).  Deadline- and accuracy-aware, but with no
JCT or bandwidth objective.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.base import GangScheduler, waiting_jobs
from repro.sim.interface import SchedulingContext
from repro.workload.job import Job


@dataclass
class HyperSchedScheduler(GangScheduler):
    """Accuracy-gain-before-deadline gang scheduling with pausing.

    Parameters
    ----------
    pause_gain_threshold:
        Running jobs whose next-iteration accuracy gain falls below this
        are paused when other jobs wait.
    """

    name: str = "HyperSched"
    pause_gain_threshold: float = 1e-4
    max_pauses_per_round: int = 1

    def accuracy_gain_before_deadline(self, job: Job, ctx: SchedulingContext) -> float:
        """Predicted accuracy improvement achievable before the deadline."""
        time_left = job.deadline - ctx.now
        if time_left <= 0:
            return 0.0
        iter_time = max(ctx.runtime_predictor.iteration_time(job), 1e-6)
        feasible = min(int(time_left / iter_time), job.remaining_iterations)
        target_iteration = job.iterations_completed + feasible
        predicted = ctx.accuracy_predictor.predict(job, target_iteration)
        return max(0.0, predicted - job.current_accuracy)

    def marginal_gain(self, job: Job) -> float:
        """Accuracy improvement of the job's next iteration."""
        nxt = job.iterations_completed + 1
        return job.accuracy_at(nxt) - job.current_accuracy

    def job_order(self, jobs: list[Job], ctx: SchedulingContext) -> list[Job]:
        def urgency_score(job: Job) -> float:
            # Gain per hour of remaining slack: deadline-critical jobs
            # with real accuracy upside come first.
            slack_h = max(job.deadline - ctx.now, 600.0) / 3600.0
            return self.accuracy_gain_before_deadline(job, ctx) / slack_h

        return sorted(
            jobs, key=lambda j: (-urgency_score(j), j.deadline, j.job_id)
        )

    def preemptions(self, ctx: SchedulingContext) -> list[Job]:
        """Pause running jobs with negligible marginal accuracy gain.

        Deadline-critical jobs (slack below twice the predicted
        remaining time) are never paused — pausing them would defeat the
        accuracy-before-deadline objective.
        """
        if not waiting_jobs(ctx):
            return []
        running = [j for j in ctx.active_jobs if j.is_fully_placed]
        stale = []
        for job in running:
            if self.marginal_gain(job) >= self.pause_gain_threshold:
                continue
            if job.remaining_iterations <= 1:
                continue
            slack = job.deadline - ctx.now
            if slack < 2.0 * ctx.runtime_predictor.remaining_time(job):
                continue
            stale.append(job)
        stale.sort(key=lambda j: self.marginal_gain(j))
        return stale[: self.max_pauses_per_round]
