"""Comparison schedulers from the paper's evaluation (Section 4.1)."""

from repro.baselines.base import GangScheduler, pack_tasks, running_jobs, waiting_jobs
from repro.baselines.fair import FairScheduler
from repro.baselines.fifo import FIFOScheduler
from repro.baselines.gandiva import GandivaScheduler
from repro.baselines.graphene import GrapheneScheduler
from repro.baselines.hypersched import HyperSchedScheduler
from repro.baselines.rl_sched import RLScheduler
from repro.baselines.slaq import SLAQScheduler
from repro.baselines.tiresias import TiresiasScheduler

__all__ = [
    "FIFOScheduler",
    "FairScheduler",
    "GandivaScheduler",
    "GangScheduler",
    "GrapheneScheduler",
    "HyperSchedScheduler",
    "RLScheduler",
    "SLAQScheduler",
    "TiresiasScheduler",
    "pack_tasks",
    "running_jobs",
    "waiting_jobs",
]
