"""Shared machinery for the comparison schedulers (Section 2 systems).

Most published ML-cluster schedulers are *gang* schedulers: a job runs
only when all of its workers hold resources.  :class:`GangScheduler`
implements the common round structure — optional preemption, then
admission of waiting jobs in a policy-specific order with all-or-nothing
packing — so each baseline only supplies its ordering (and preemption)
logic, mirroring how the paper describes them.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Optional

from repro.cluster.server import Server
from repro.sim.interface import (
    Eviction,
    Placement,
    Scheduler,
    SchedulerDecision,
    SchedulingContext,
)
from repro.sim.shadow import ShadowCluster
from repro.workload.job import Job, Task, TaskState


def waiting_jobs(ctx: SchedulingContext) -> list[Job]:
    """Active jobs that have at least one queued task."""
    queued_job_ids = {t.job_id for t in ctx.queue}
    return [j for j in ctx.active_jobs if j.job_id in queued_job_ids]


def running_jobs(ctx: SchedulingContext) -> list[Job]:
    """Active jobs that are fully placed (gang-running)."""
    return [j for j in ctx.active_jobs if j.is_fully_placed]


def pack_tasks(
    tasks: list[Task],
    shadow: ShadowCluster,
    threshold: float,
    preferred_servers: Optional[list[int]] = None,
) -> Optional[list[tuple[Task, int, int]]]:
    """All-or-nothing placement of a task group.

    Tries to host every task without overloading any server or GPU,
    preferring ``preferred_servers`` (affinity) and then lower-loaded
    servers.  On failure the shadow state is rolled back and ``None``
    returned.
    """
    snapshot = shadow.snapshot()
    preferred = preferred_servers or []
    rank = {sid: i for i, sid in enumerate(preferred)}
    assignments: list[tuple[Task, int, int]] = []
    for task in tasks:
        candidates = [
            s
            for s in shadow.cluster.servers
            if not shadow.would_overload(s, task.demand, threshold)
        ]
        if not candidates:
            shadow.restore(snapshot)
            return None

        def sort_key(server: Server) -> tuple[int, float, int]:
            return (
                rank.get(server.server_id, len(rank)),
                shadow.overload_degree(server),
                server.server_id,
            )

        server = min(candidates, key=sort_key)
        gpu_id = shadow.least_loaded_gpu(server)
        shadow.commit_placement(task, server.server_id, gpu_id)
        assignments.append((task, server.server_id, gpu_id))
    return assignments


@dataclass
class GangScheduler(Scheduler):
    """Base class: preempt (optional), then admit jobs in policy order."""

    name: str = "gang"

    @abc.abstractmethod
    def job_order(self, jobs: list[Job], ctx: SchedulingContext) -> list[Job]:
        """Order waiting jobs for admission (head admitted first)."""

    def begin_pass(self, ctx: SchedulingContext) -> None:
        """Hook run first in every scheduling pass (default: nothing).

        Policies with per-pass bookkeeping (Tiresias' service stints)
        reconcile state here, before preemption and admission read it.
        Implementations must be provable no-ops on a pass where every
        active job is fully placed with up-to-date bookkeeping —
        otherwise the policy cannot declare ``event_parkable``.
        """

    def note_admitted(self, job: Job, ctx: SchedulingContext) -> None:
        """Hook: ``job`` was fully packed for placement this pass.

        Fires at emission time — the one moment that exists identically
        in both pass policies — so service accounting (Tiresias) can
        anchor a stint at the exact pass that placed the job.
        """

    def preemptions(self, ctx: SchedulingContext) -> list[Job]:
        """Jobs whose tasks should be evicted this round (default: none)."""
        return []

    def preferred_servers(self, job: Job, ctx: SchedulingContext) -> list[int]:
        """Server preference for a job's packing (default: none)."""
        return []

    def extra_actions(
        self, ctx: SchedulingContext, shadow: ShadowCluster, decision: SchedulerDecision
    ) -> None:
        """Hook for policy-specific actions (e.g. Gandiva migrations)."""

    def on_schedule(self, ctx: SchedulingContext) -> SchedulerDecision:
        decision = SchedulerDecision()
        shadow = ShadowCluster(ctx.cluster)
        self.begin_pass(ctx)

        evicted_jobs = set()
        for job in self.preemptions(ctx):
            placed = job.placed_tasks()
            if not placed:
                continue
            evicted_jobs.add(job.job_id)
            for task in placed:
                shadow.commit_removal(task)
                decision.evictions.append(Eviction(task))

        candidates = [
            j for j in waiting_jobs(ctx) if j.job_id not in evicted_jobs
        ]
        for job in self.job_order(candidates, ctx):
            queued = [t for t in job.tasks if t.state is TaskState.QUEUED]
            if not queued:
                continue
            assignments = pack_tasks(
                queued,
                shadow,
                ctx.overload_threshold,
                self.preferred_servers(job, ctx),
            )
            if assignments is None:
                continue  # backfill: try the next job
            self.note_admitted(job, ctx)
            for task, server_id, gpu_id in assignments:
                decision.placements.append(Placement(task, server_id, gpu_id))

        self.extra_actions(ctx, shadow, decision)
        return decision
