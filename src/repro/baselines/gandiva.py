"""Gandiva (Xiao et al., OSDI 2018) — as characterized in the paper.

"Gandiva uses first-in-first-out (FIFO) queuing.  Also, it defines the
jobs with the same number of GPU requirements as affinity jobs and tries
to put the affinity jobs to the same machine … to relieve the extra load
of an overloaded GPU …, Gandiva moves the job with the lowest GPU
utilization to the GPU with the lowest utilization" (Section 2).  It
considers only GPU load — not CPU/memory/bandwidth — and its migrations
ignore communication cost, which is why it shows the highest bandwidth
cost in Figure 4(g).

Rotation is *sliced*: the de-fragmentation scan runs every
``slice_passes``-th scheduling pass on a :class:`~repro.sim.clock.PassClock`
(Gandiva's minute-granularity time-slicing, expressed in pass units so
the counter is pure integers).  Because the clock is pass-indexed and
the per-GPU threshold is exposed to the engine through :meth:`can_park`,
Gandiva declares ``event_parkable``: skipped passes are replayed through
:meth:`accrue` and a hot GPU vetoes parking so no due migration is ever
skipped (DESIGN.md §15.7).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines.base import GangScheduler
from repro.cluster.cluster import Cluster
from repro.sim.clock import PassClock
from repro.sim.interface import Migration, SchedulerDecision, SchedulingContext
from repro.sim.shadow import ShadowCluster
from repro.workload.job import Job


@dataclass
class GandivaScheduler(GangScheduler):
    """FIFO + affinity packing + GPU-overload migration."""

    name: str = "Gandiva"
    gpu_overload_threshold: float = 0.90
    max_migrations_per_round: int = 8
    #: Rotation cadence: the migration scan runs every N-th pass (1 =
    #: every pass, the pre-slice behavior).
    slice_passes: int = 1
    _clock: PassClock = field(init=False)

    # Safe to park: the rotation clock advances analytically through
    # ``accrue`` and ``can_park`` vetoes any gap that could owe a
    # migration.  (Class attribute on purpose, not a dataclass field.)
    event_parkable = True

    def __post_init__(self) -> None:
        self._clock = PassClock(max(1, self.slice_passes))

    def can_park(self, cluster: Cluster) -> bool:
        """Veto parking while any healthy GPU runs over our threshold.

        The engine's park precondition checks *server*-level overload
        against its own threshold; Gandiva migrates off individual GPUs
        above ``gpu_overload_threshold``, which a cool server can hide.
        While parked, GPU loads can only fall (placements need a pass),
        so a cold fleet at park time stays cold across the gap.
        """
        for server in cluster.servers:
            if server.failed:
                continue
            for gpu in server.gpus:
                if gpu.failed:
                    continue
                if gpu.utilization > self.gpu_overload_threshold:
                    return False
        return True

    def accrue(
        self,
        gap_seconds: float,
        *,
        skipped_passes: int,
        now: float,
        tick_seconds: float,
    ) -> None:
        """Replay the rotation clock over a parked gap.

        Every skipped pass was a no-op (no hot GPU — ``can_park`` held
        at park time and loads only fall while parked), so a rotation
        that fell due inside the gap scanned nothing and merely reset
        the clock; the :class:`PassClock` modulo is that loop's closed
        form, bit-identical because the state is an integer.
        """
        self._clock.advance(skipped_passes)

    def job_order(self, jobs: list[Job], ctx: SchedulingContext) -> list[Job]:
        return sorted(jobs, key=lambda j: (j.arrival_time, j.job_id))

    def preferred_servers(self, job: Job, ctx: SchedulingContext) -> list[int]:
        """Affinity: servers already hosting jobs with the same GPU count."""
        preferred = []
        for server in ctx.cluster.servers:
            for task in server.tasks():
                if task.job.gpus_requested == job.gpus_requested:
                    preferred.append(server.server_id)
                    break
        return preferred

    def extra_actions(
        self, ctx: SchedulingContext, shadow: ShadowCluster, decision: SchedulerDecision
    ) -> None:
        """Move the lowest-utilization task off each overloaded GPU.

        The destination is the cluster's least-utilized GPU; no other
        resource and no communication volume is consulted (Gandiva's
        GPU-only view).  Runs only when the slice clock fires — ticked
        here because ``extra_actions`` runs exactly once per pass.
        """
        if not self._clock.tick():
            return
        migrations = 0
        for server in ctx.cluster.servers:
            for gpu in server.gpus:
                if migrations >= self.max_migrations_per_round:
                    return
                if shadow.gpu_utilization(server, gpu.gpu_id) <= self.gpu_overload_threshold:
                    continue
                victims = [
                    t
                    for t in gpu.tasks()
                    if shadow.task_location(t) == server.server_id
                ]
                if not victims:
                    continue
                victim = min(victims, key=lambda t: (t.demand.gpu, t.task_id))
                target = self._least_utilized_gpu(ctx, shadow, exclude=(server.server_id, gpu.gpu_id))
                if target is None:
                    continue
                dst_server_id, dst_gpu_id = target
                if dst_server_id == server.server_id and dst_gpu_id == gpu.gpu_id:
                    continue
                shadow.commit_migration(victim, dst_server_id, dst_gpu_id)
                decision.migrations.append(Migration(victim, dst_server_id, dst_gpu_id))
                migrations += 1

    def _least_utilized_gpu(
        self,
        ctx: SchedulingContext,
        shadow: ShadowCluster,
        exclude: tuple[int, int],
    ) -> tuple[int, int] | None:
        best = None
        best_util = float("inf")
        for server in ctx.cluster.servers:
            if server.failed:
                continue  # a crashed server's idle GPUs are not destinations
            for gpu in server.gpus:
                if gpu.failed:
                    continue
                if (server.server_id, gpu.gpu_id) == exclude:
                    continue
                util = shadow.gpu_utilization(server, gpu.gpu_id)
                if util < best_util:
                    best_util = util
                    best = (server.server_id, gpu.gpu_id)
        return best
