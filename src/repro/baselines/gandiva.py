"""Gandiva (Xiao et al., OSDI 2018) — as characterized in the paper.

"Gandiva uses first-in-first-out (FIFO) queuing.  Also, it defines the
jobs with the same number of GPU requirements as affinity jobs and tries
to put the affinity jobs to the same machine … to relieve the extra load
of an overloaded GPU …, Gandiva moves the job with the lowest GPU
utilization to the GPU with the lowest utilization" (Section 2).  It
considers only GPU load — not CPU/memory/bandwidth — and its migrations
ignore communication cost, which is why it shows the highest bandwidth
cost in Figure 4(g).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.base import GangScheduler
from repro.sim.interface import Migration, SchedulerDecision, SchedulingContext
from repro.sim.shadow import ShadowCluster
from repro.workload.job import Job


@dataclass
class GandivaScheduler(GangScheduler):
    """FIFO + affinity packing + GPU-overload migration."""

    name: str = "Gandiva"
    gpu_overload_threshold: float = 0.90
    max_migrations_per_round: int = 8

    def job_order(self, jobs: list[Job], ctx: SchedulingContext) -> list[Job]:
        return sorted(jobs, key=lambda j: (j.arrival_time, j.job_id))

    def preferred_servers(self, job: Job, ctx: SchedulingContext) -> list[int]:
        """Affinity: servers already hosting jobs with the same GPU count."""
        preferred = []
        for server in ctx.cluster.servers:
            for task in server.tasks():
                if task.job.gpus_requested == job.gpus_requested:
                    preferred.append(server.server_id)
                    break
        return preferred

    def extra_actions(
        self, ctx: SchedulingContext, shadow: ShadowCluster, decision: SchedulerDecision
    ) -> None:
        """Move the lowest-utilization task off each overloaded GPU.

        The destination is the cluster's least-utilized GPU; no other
        resource and no communication volume is consulted (Gandiva's
        GPU-only view).
        """
        migrations = 0
        for server in ctx.cluster.servers:
            for gpu in server.gpus:
                if migrations >= self.max_migrations_per_round:
                    return
                if shadow.gpu_utilization(server, gpu.gpu_id) <= self.gpu_overload_threshold:
                    continue
                victims = [
                    t
                    for t in gpu.tasks()
                    if shadow.task_location(t) == server.server_id
                ]
                if not victims:
                    continue
                victim = min(victims, key=lambda t: (t.demand.gpu, t.task_id))
                target = self._least_utilized_gpu(ctx, shadow, exclude=(server.server_id, gpu.gpu_id))
                if target is None:
                    continue
                dst_server_id, dst_gpu_id = target
                if dst_server_id == server.server_id and dst_gpu_id == gpu.gpu_id:
                    continue
                shadow.commit_migration(victim, dst_server_id, dst_gpu_id)
                decision.migrations.append(Migration(victim, dst_server_id, dst_gpu_id))
                migrations += 1

    def _least_utilized_gpu(
        self,
        ctx: SchedulingContext,
        shadow: ShadowCluster,
        exclude: tuple[int, int],
    ) -> tuple[int, int] | None:
        best = None
        best_util = float("inf")
        for server in ctx.cluster.servers:
            if server.failed:
                continue  # a crashed server's idle GPUs are not destinations
            for gpu in server.gpus:
                if gpu.failed:
                    continue
                if (server.server_id, gpu.gpu_id) == exclude:
                    continue
                util = shadow.gpu_utilization(server, gpu.gpu_id)
                if util < best_util:
                    best_util = util
                    best = (server.server_id, gpu.gpu_id)
        return best
