"""Graphene (Grandl et al., OSDI 2016) — as characterized in the paper.

"Within one job, Graphene tends to first assign the available resources
to the 'troublesome' tasks (the tasks [that] have more dependent tasks
and tough-to-pack resource demands) … For a set of jobs, Graphene
determines the order of multiple jobs based on a weighted score …
including average job completion time, cluster throughput and fairness"
(Section 2).  DAG-aware but ML-feature-blind: no accuracy or deadline
objective.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from repro.baselines.base import GangScheduler
from repro.sim.interface import SchedulingContext
from repro.workload.job import Job, Task, TaskState


@dataclass
class GrapheneScheduler(GangScheduler):
    """DAG- and packing-aware gang scheduling with a weighted job score.

    Weights follow Graphene's multi-objective ordering: shorter
    remaining work (JCT), higher per-GPU parallelism (throughput), and
    longer waiting (fairness).
    """

    name: str = "Graphene"
    weight_jct: float = 0.5
    weight_throughput: float = 0.3
    weight_fairness: float = 0.2
    _dependents: dict[str, int] = field(default_factory=dict)

    def job_score(self, job: Job, ctx: SchedulingContext) -> float:
        """Weighted multi-objective score; higher = earlier admission."""
        remaining_h = max(ctx.runtime_predictor.remaining_time(job), 1.0) / 3600.0
        srpt = 1.0 / remaining_h
        throughput = job.gpus_requested / 32.0
        waiting = max(
            (t.waiting_time(ctx.now) for t in job.queued_tasks()), default=0.0
        )
        fairness = waiting / 3600.0
        return (
            self.weight_jct * srpt
            + self.weight_throughput * throughput
            + self.weight_fairness * fairness
        )

    def job_order(self, jobs: list[Job], ctx: SchedulingContext) -> list[Job]:
        ordered = sorted(
            jobs, key=lambda j: (-self.job_score(j, ctx), j.arrival_time, j.job_id)
        )
        # Troublesome-first task ordering within each job: more
        # dependents and tougher demands pack first.
        for job in ordered:
            job.tasks.sort(key=lambda t: -self._troublesomeness(t))
        return ordered

    def _troublesomeness(self, task: Task) -> float:
        if task.task_id not in self._dependents:
            self._dependents[task.task_id] = len(
                nx.descendants(task.job.dag, task.task_id)
            )
        dependents = self._dependents[task.task_id]
        demand = task.demand.gpu + task.demand.cpu / 32.0 + task.demand.mem / 244.0
        return dependents + demand

    def on_job_complete(self, job: Job, now: float) -> None:
        for task in job.tasks:
            self._dependents.pop(task.task_id, None)
