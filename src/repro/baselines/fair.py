"""The TensorFlow/Borg fair scheduler — as characterized in the paper.

"TensorFlow uses the Borg resource manager that aims to achieve
fairness of resource allocation among different jobs" (Section 2).  We
implement GPU-share fairness: every active job is entitled to an equal
share of the cluster's GPUs; under-served jobs are admitted first and
over-served jobs are preempted when under-served jobs wait.  Fairness
does not target JCT or accuracy, which is why this policy trails most
metrics in Figure 4 while keeping very low scheduler overhead.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.base import GangScheduler, waiting_jobs
from repro.sim.interface import SchedulingContext
from repro.workload.job import Job


@dataclass
class FairScheduler(GangScheduler):
    """Equal-GPU-share gang scheduling (Borg-style fairness)."""

    name: str = "TensorFlow"
    max_preemptions_per_round: int = 2

    def allocated_gpus(self, job: Job) -> float:
        """GPU demand currently held by the job's placed tasks."""
        return sum(t.demand.gpu for t in job.placed_tasks())

    def fair_share(self, ctx: SchedulingContext) -> float:
        """Equal share of total GPU capacity per active job."""
        total = float(ctx.cluster.total_gpus)
        jobs = max(len(ctx.active_jobs), 1)
        return total / jobs

    def job_order(self, jobs: list[Job], ctx: SchedulingContext) -> list[Job]:
        return sorted(
            jobs,
            key=lambda j: (self.allocated_gpus(j), j.arrival_time, j.job_id),
        )

    def preemptions(self, ctx: SchedulingContext) -> list[Job]:
        """Preempt the most over-share running jobs when others wait."""
        if not waiting_jobs(ctx):
            return []
        share = self.fair_share(ctx)
        running = [j for j in ctx.active_jobs if j.is_fully_placed]
        over = [j for j in running if self.allocated_gpus(j) > share * 2.0]
        over.sort(key=lambda j: -self.allocated_gpus(j))
        return over[: self.max_preemptions_per_round]
