"""The "RL" baseline (Mirhoseini et al., ICML 2017) — as characterized
in the paper.

"Mirhoseini et al. applied RL in job scheduling in a GPU cluster to
minimize the average JCT.  The scheduler scans all tasks and then maps
the tasks to the appropriate GPUs" (Section 2).  Unlike MLF-RL it
"do[es] not aim to improve accuracy or consider ML features": tasks are
ordered by shortest-remaining-time (the JCT objective) and a learned
policy picks the destination among feasible servers.  Its reward is
``g1`` (1 / average JCT) only.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.placement import TaskCommIndex
from repro.core.state import FEATURE_SIZE, StateFeaturizer
from repro.rl.policy import ScoringPolicy
from repro.sim.interface import (
    Placement,
    Scheduler,
    SchedulerDecision,
    SchedulingContext,
)
from repro.sim.shadow import ShadowCluster
from repro.workload.job import Job, Task


@dataclass
class RLScheduler(Scheduler):
    """JCT-only RL task mapping (no ML features, no load control).

    Parameters
    ----------
    policy:
        A trained scoring policy; ``None`` falls back to least-loaded
        placement (the untrained behaviour).
    """

    policy: Optional[ScoringPolicy] = None
    name: str = "RL"
    comm_index: TaskCommIndex = field(init=False)
    featurizer: StateFeaturizer = field(init=False)

    def __post_init__(self) -> None:
        self.comm_index = TaskCommIndex()
        self.featurizer = StateFeaturizer(comm_index=self.comm_index)
        if self.policy is not None and self.policy.feature_size != FEATURE_SIZE:
            raise ValueError("policy feature size mismatch")

    def on_job_complete(self, job: Job, now: float) -> None:
        # Drop the job's cached peer links; without this the index grows
        # for every job ever seen, leaking across long sweeps and the
        # service daemon's unbounded job stream.
        self.comm_index.forget(job)

    def on_schedule(self, ctx: SchedulingContext) -> SchedulerDecision:
        decision = SchedulerDecision()
        shadow = ShadowCluster(ctx.cluster)
        # Mirhoseini's RL optimizes *placement*, not queue ordering: the
        # scheduler "scans all tasks" in submission order and the learned
        # policy decides where each goes.
        pool = sorted(
            ctx.queue,
            key=lambda t: (t.job.arrival_time, t.job_id, t.task_id),
        )
        # Per-job all-or-nothing admission: a partially placed job holds
        # GPUs without progressing, so failed groups roll back.
        index = 0
        while index < len(pool):
            job_id = pool[index].job_id
            group = []
            while index < len(pool) and pool[index].job_id == job_id:
                group.append(pool[index])
                index += 1
            snapshot = shadow.snapshot()
            placements = []
            for task in group:
                choice = self._choose_host(task, shadow, ctx)
                if choice is None:
                    placements = None
                    break
                server_id, gpu_id = choice
                shadow.commit_placement(task, server_id, gpu_id)
                placements.append(Placement(task, server_id, gpu_id))
            if placements is None:
                shadow.restore(snapshot)
            else:
                decision.placements.extend(placements)
        return decision

    def _choose_host(
        self, task: Task, shadow: ShadowCluster, ctx: SchedulingContext
    ) -> Optional[tuple[int, int]]:
        candidates = [
            s
            for s in shadow.cluster.servers
            if not shadow.would_overload(s, task.demand, ctx.overload_threshold)
        ]
        if not candidates:
            return None
        if self.policy is None or len(candidates) == 1:
            server = min(
                candidates, key=lambda s: (shadow.overload_degree(s), s.server_id)
            )
        else:
            features = self.featurizer.candidate_matrix(
                task, candidates, shadow, ctx.now
            )
            picked = self.policy.choose(features, greedy=True)
            server = candidates[picked.index]
        return server.server_id, shadow.least_loaded_gpu(server)
