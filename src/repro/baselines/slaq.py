"""SLAQ (Zhang et al., SoCC 2017) — as characterized in the paper.

"SLAQ aims to maximize the overall job accuracy … predicts the loss
reduction and runtime … and then chooses the job with the maximum loss
reduction per unit runtime" (Section 2).  Each epoch SLAQ reallocates:
waiting jobs with high marginal quality gain displace running jobs with
low gain.  It does not consider JCT, deadlines or bandwidth — which is
why it trails on those metrics in Figure 4.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.base import GangScheduler, waiting_jobs
from repro.sim.interface import SchedulingContext
from repro.workload.job import Job


@dataclass
class SLAQScheduler(GangScheduler):
    """Quality-driven (loss-reduction-per-second) gang scheduling."""

    name: str = "SLAQ"
    max_preemptions_per_round: int = 4

    def quality_score(self, job: Job, ctx: SchedulingContext) -> float:
        """Predicted loss reduction of the next iteration per second."""
        next_iteration = job.iterations_completed + 1
        if next_iteration > job.max_iterations:
            return 0.0
        loss_reduction = job.delta_loss(next_iteration)
        iter_time = max(ctx.runtime_predictor.iteration_time(job), 1e-6)
        return loss_reduction / iter_time

    def job_order(self, jobs: list[Job], ctx: SchedulingContext) -> list[Job]:
        return sorted(
            jobs,
            key=lambda j: (-self.quality_score(j, ctx), j.arrival_time, j.job_id),
        )

    def preemptions(self, ctx: SchedulingContext) -> list[Job]:
        """Displace running jobs whose marginal quality trails waiters."""
        waiting = waiting_jobs(ctx)
        if not waiting:
            return []
        best_waiting = max(self.quality_score(j, ctx) for j in waiting)
        running = [j for j in ctx.active_jobs if j.is_fully_placed]
        victims = [
            j for j in running if self.quality_score(j, ctx) < best_waiting * 0.5
        ]
        victims.sort(key=lambda j: self.quality_score(j, ctx))
        return victims[: self.max_preemptions_per_round]
