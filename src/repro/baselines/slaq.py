"""SLAQ (Zhang et al., SoCC 2017) — as characterized in the paper.

"SLAQ aims to maximize the overall job accuracy … predicts the loss
reduction and runtime … and then chooses the job with the maximum loss
reduction per unit runtime" (Section 2).  Each epoch SLAQ reallocates:
waiting jobs with high marginal quality gain displace running jobs with
low gain.  It does not consider JCT, deadlines or bandwidth — which is
why it trails on those metrics in Figure 4.

Two pieces of clocked state back that description:

* the reallocation *epoch* — preemption runs every ``epoch_passes``-th
  scheduling pass on a pass-indexed :class:`~repro.sim.clock.PassClock`
  (SLAQ re-evaluates allocations at epoch, not pass, granularity);
* the quality-gain *estimate* — an EWMA of the observed loss reduction
  per second, updated from iteration-completion events (SLAQ's online
  measurement of each job's marginal quality), blended with the
  predictor's one-step-ahead estimate.

The epoch clock advances analytically across parked gaps through
:meth:`accrue`; the EWMA is driven purely by iteration events, which
fire identically under both pass policies — so SLAQ declares
``event_parkable`` with bit-identical outcomes (DESIGN.md §15.7).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines.base import GangScheduler, waiting_jobs
from repro.sim.clock import PassClock
from repro.sim.interface import SchedulingContext
from repro.workload.job import Job


@dataclass
class SLAQScheduler(GangScheduler):
    """Quality-driven (loss-reduction-per-second) gang scheduling."""

    name: str = "SLAQ"
    max_preemptions_per_round: int = 4
    #: Reallocation cadence: preemption runs every N-th pass (1 = every
    #: pass, the pre-epoch behavior).
    epoch_passes: int = 1
    #: EWMA weight of the newest observed loss-reduction rate.
    ewma_alpha: float = 0.25
    #: Observed loss reduction per second, per job (EWMA).
    _gain_rate: dict[str, float] = field(default_factory=dict)
    #: Last iteration-completion time per job (rate denominator).
    _last_iteration_at: dict[str, float] = field(default_factory=dict)
    _clock: PassClock = field(init=False)

    # The epoch clock is replayed by ``accrue`` and the EWMA only moves
    # on iteration events, so a skipped pass is a provable no-op.
    # (Class attribute on purpose, not a dataclass field.)
    event_parkable = True

    def __post_init__(self) -> None:
        self._clock = PassClock(max(1, self.epoch_passes))

    def accrue(
        self,
        gap_seconds: float,
        *,
        skipped_passes: int,
        now: float,
        tick_seconds: float,
    ) -> None:
        """Replay the epoch clock over a parked gap.

        Epochs that elapsed inside the gap evaluated preemption against
        an empty waiting set (the park precondition) and did nothing;
        the integer modulo of :class:`PassClock` is that loop's closed
        form.  The quality-gain EWMA needs no accrual: it advances on
        iteration completions, which fire during parked gaps exactly as
        they do under the fixed cadence.
        """
        self._clock.advance(skipped_passes)

    # -- quality-gain estimation ----------------------------------------------

    def on_iteration_complete(self, job: Job, now: float) -> None:
        """Fold the just-measured loss reduction into the job's EWMA."""
        previous = self._last_iteration_at.get(job.job_id)
        self._last_iteration_at[job.job_id] = now
        if previous is None or now <= previous:
            return
        iteration = max(job.iterations_completed, 1)
        observed = job.delta_loss(iteration) / (now - previous)
        current = self._gain_rate.get(job.job_id)
        if current is None:
            self._gain_rate[job.job_id] = observed
        else:
            self._gain_rate[job.job_id] = (
                self.ewma_alpha * observed + (1.0 - self.ewma_alpha) * current
            )

    def on_job_complete(self, job: Job, now: float) -> None:
        self._gain_rate.pop(job.job_id, None)
        self._last_iteration_at.pop(job.job_id, None)

    def quality_score(self, job: Job, ctx: SchedulingContext) -> float:
        """Loss reduction of the next iteration per second.

        The predictor's one-step-ahead estimate, averaged with the
        observed EWMA once the job has produced one — SLAQ's measured
        marginal quality correcting the model's prior.
        """
        next_iteration = job.iterations_completed + 1
        if next_iteration > job.max_iterations:
            return 0.0
        loss_reduction = job.delta_loss(next_iteration)
        iter_time = max(ctx.runtime_predictor.iteration_time(job), 1e-6)
        predicted = loss_reduction / iter_time
        observed = self._gain_rate.get(job.job_id)
        if observed is None:
            return predicted
        return 0.5 * (predicted + observed)

    # -- GangScheduler hooks --------------------------------------------------

    def job_order(self, jobs: list[Job], ctx: SchedulingContext) -> list[Job]:
        return sorted(
            jobs,
            key=lambda j: (-self.quality_score(j, ctx), j.arrival_time, j.job_id),
        )

    def preemptions(self, ctx: SchedulingContext) -> list[Job]:
        """Displace running jobs whose marginal quality trails waiters.

        Runs once per epoch: the clock ticks first (every pass, in both
        pass policies) and gates the evaluation.
        """
        due = self._clock.tick()
        if not due:
            return []
        waiting = waiting_jobs(ctx)
        if not waiting:
            return []
        best_waiting = max(self.quality_score(j, ctx) for j in waiting)
        running = [j for j in ctx.active_jobs if j.is_fully_placed]
        victims = [
            j for j in running if self.quality_score(j, ctx) < best_waiting * 0.5
        ]
        victims.sort(key=lambda j: self.quality_score(j, ctx))
        return victims[: self.max_preemptions_per_round]
