"""Plain FIFO gang scheduling — the simplest reference policy."""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.base import GangScheduler
from repro.sim.interface import SchedulingContext
from repro.workload.job import Job


@dataclass
class FIFOScheduler(GangScheduler):
    """Admit jobs strictly by arrival time (with backfilling)."""

    name: str = "FIFO"

    def job_order(self, jobs: list[Job], ctx: SchedulingContext) -> list[Job]:
        return sorted(jobs, key=lambda j: (j.arrival_time, j.job_id))
