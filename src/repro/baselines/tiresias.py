"""Tiresias (Gu et al., NSDI 2019) — as characterized in the paper.

Two priority principles (Section 2): "for jobs without prior knowledge
of its task running time, the least-attained-service principle gives
higher priorities to the jobs that received less service time; for jobs
with known task running time distribution …, the priority is determined
by how likely the job can complete within the next service epoch."

We implement the discretized two-dimensional attained-service queues
(2D-LAS) with preemption: when higher-priority jobs wait, the
longest-served running jobs are preempted.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.baselines.base import GangScheduler, waiting_jobs
from repro.sim.interface import SchedulingContext
from repro.workload.job import Job


@dataclass
class TiresiasScheduler(GangScheduler):
    """Discretized least-attained-service gang scheduling with preemption.

    Parameters
    ----------
    num_queues:
        Number of discretized priority queues; attained service doubles
        between queue boundaries.
    service_unit:
        GPU-seconds represented by the first queue boundary.
    epoch_seconds:
        Service epoch used by the known-runtime principle: jobs that can
        finish within one epoch get the top queue.
    """

    name: str = "Tiresias"
    num_queues: int = 5
    service_unit: float = 3600.0
    epoch_seconds: float = 600.0
    max_preemptions_per_round: int = 4
    _attained: dict[str, float] = field(default_factory=dict)

    # -- attained-service bookkeeping -----------------------------------------

    def on_iteration_complete(self, job: Job, now: float) -> None:
        per_iter = (
            job.estimated_duration / job.max_iterations if job.max_iterations else 0.0
        )
        self._attained[job.job_id] = (
            self._attained.get(job.job_id, 0.0) + per_iter * job.gpus_requested
        )

    def on_job_complete(self, job: Job, now: float) -> None:
        self._attained.pop(job.job_id, None)

    def queue_index(self, job: Job, ctx: SchedulingContext) -> int:
        """Discretized priority queue (0 = highest priority)."""
        remaining = ctx.runtime_predictor.remaining_time(job)
        if 0.0 < remaining <= self.epoch_seconds:
            return 0  # known-runtime principle: finishes within an epoch
        attained = self._attained.get(job.job_id, 0.0)
        index = int(math.log2(attained / self.service_unit + 1.0)) + 1
        return min(index, self.num_queues - 1)

    # -- GangScheduler hooks ------------------------------------------------------

    def job_order(self, jobs: list[Job], ctx: SchedulingContext) -> list[Job]:
        return sorted(
            jobs,
            key=lambda j: (self.queue_index(j, ctx), j.arrival_time, j.job_id),
        )

    def preemptions(self, ctx: SchedulingContext) -> list[Job]:
        """Preempt long-served running jobs when better jobs wait."""
        waiting = waiting_jobs(ctx)
        if not waiting:
            return []
        best_waiting = min(self.queue_index(j, ctx) for j in waiting)
        running = [j for j in ctx.active_jobs if j.is_fully_placed]
        victims = [
            j for j in running if self.queue_index(j, ctx) > best_waiting
        ]
        victims.sort(
            key=lambda j: (-self.queue_index(j, ctx), -self._attained.get(j.job_id, 0.0))
        )
        return victims[: self.max_preemptions_per_round]
