"""Tiresias (Gu et al., NSDI 2019) — as characterized in the paper.

Two priority principles (Section 2): "for jobs without prior knowledge
of its task running time, the least-attained-service principle gives
higher priorities to the jobs that received less service time; for jobs
with known task running time distribution …, the priority is determined
by how likely the job can complete within the next service epoch."

We implement the discretized two-dimensional attained-service queues
(2D-LAS) with preemption: when higher-priority jobs wait, the
longest-served running jobs are preempted.

Attained service is the real quantity Tiresias uses — GPU-count ×
wall-clock time the job has held its gang — accounted as *stints*: a
stint opens when the job's gang is packed (emission time), closes when
the job is evicted, killed or completes, and the open remainder is the
closed form ``(now - stint_start) * gpus``.  No per-pass accumulation
ever happens, so the counters are a pure function of simulation time
and of events that fire in both pass policies — which is what lets
Tiresias declare ``event_parkable`` with bit-identical outcomes to the
fixed cadence (DESIGN.md §15.7).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.baselines.base import GangScheduler, waiting_jobs
from repro.sim.interface import SchedulingContext
from repro.workload.job import Job


@dataclass
class TiresiasScheduler(GangScheduler):
    """Discretized least-attained-service gang scheduling with preemption.

    Parameters
    ----------
    num_queues:
        Number of discretized priority queues; attained service doubles
        between queue boundaries.
    service_unit:
        GPU-seconds represented by the first queue boundary.
    epoch_seconds:
        Service epoch used by the known-runtime principle: jobs that can
        finish within one epoch get the top queue.
    """

    name: str = "Tiresias"
    num_queues: int = 5
    service_unit: float = 3600.0
    epoch_seconds: float = 600.0
    max_preemptions_per_round: int = 4
    #: Banked GPU-seconds from closed stints, per job.
    _service: dict[str, float] = field(default_factory=dict)
    #: Open stint start time per running job (absent = no open stint).
    _stint_since: dict[str, float] = field(default_factory=dict)

    # Stints open/close only at moments shared by both pass policies
    # (gang emission, eviction emission, fault reconciliation on a
    # non-skippable pass, job completion), and reads are closed-form in
    # ``now`` — a parked gap needs no accrual at all, so the inherited
    # no-op ``accrue()`` is the correct implementation.  Un-annotated on
    # purpose: a class attribute, not a dataclass field.
    event_parkable = True

    # -- attained-service bookkeeping -----------------------------------------

    def attained_service(self, job: Job, now: float) -> float:
        """GPU-seconds of service ``job`` has received up to ``now``."""
        attained = self._service.get(job.job_id, 0.0)
        since = self._stint_since.get(job.job_id)
        if since is not None and now > since:
            attained += (now - since) * job.gpus_requested
        return attained

    def _open_stint(self, job: Job, now: float) -> None:
        self._stint_since.setdefault(job.job_id, now)

    def _close_stint(self, job: Job, now: float) -> None:
        since = self._stint_since.pop(job.job_id, None)
        if since is not None and now > since:
            self._service[job.job_id] = (
                self._service.get(job.job_id, 0.0) + (now - since) * job.gpus_requested
            )

    def begin_pass(self, ctx: SchedulingContext) -> None:
        """Close stints of jobs that lost their gang outside our control.

        Fault kills and stall-guard evictions unplace tasks without the
        scheduler acting; the first pass that sees the job no longer
        fully placed banks its stint.  Such a pass is never skippable
        (the job's tasks are queued or the stall guard is armed), and on
        a genuinely no-op pass every fully-placed job already has an
        open stint — so this reconciliation is a provable no-op exactly
        when the engine parks.
        """
        for job in ctx.active_jobs:
            if job.is_fully_placed:
                self._open_stint(job, ctx.now)
            else:
                self._close_stint(job, ctx.now)

    def note_admitted(self, job: Job, ctx: SchedulingContext) -> None:
        """A gang was packed this pass: its service stint starts now."""
        self._open_stint(job, ctx.now)

    def on_job_complete(self, job: Job, now: float) -> None:
        self._close_stint(job, now)
        self._service.pop(job.job_id, None)

    def queue_index(self, job: Job, ctx: SchedulingContext) -> int:
        """Discretized priority queue (0 = highest priority)."""
        remaining = ctx.runtime_predictor.remaining_time(job)
        if 0.0 < remaining <= self.epoch_seconds:
            return 0  # known-runtime principle: finishes within an epoch
        attained = self.attained_service(job, ctx.now)
        index = int(math.log2(attained / self.service_unit + 1.0)) + 1
        return min(index, self.num_queues - 1)

    # -- GangScheduler hooks ------------------------------------------------------

    def job_order(self, jobs: list[Job], ctx: SchedulingContext) -> list[Job]:
        return sorted(
            jobs,
            key=lambda j: (self.queue_index(j, ctx), j.arrival_time, j.job_id),
        )

    def preemptions(self, ctx: SchedulingContext) -> list[Job]:
        """Preempt long-served running jobs when better jobs wait."""
        waiting = waiting_jobs(ctx)
        if not waiting:
            return []
        best_waiting = min(self.queue_index(j, ctx) for j in waiting)
        running = [j for j in ctx.active_jobs if j.is_fully_placed]
        victims = [
            j for j in running if self.queue_index(j, ctx) > best_waiting
        ]
        victims.sort(
            key=lambda j: (
                -self.queue_index(j, ctx),
                -self.attained_service(j, ctx.now),
            )
        )
        victims = victims[: self.max_preemptions_per_round]
        for job in victims:
            # The base class evicts the whole gang right after this
            # returns; banking at emission keeps the stint exact.
            self._close_stint(job, ctx.now)
        return victims
