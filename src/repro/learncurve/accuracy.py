"""Accuracy prediction service (paper Section 3.1).

The paper assumes "the accuracy of a job can be predicted … around 90%
accuracy" using the learning-curve extrapolation of [17].  The predictor
here observes a job's accuracy history (optionally with measurement
noise, to reproduce the 90%-accurate rather than oracle behaviour) and
extrapolates with the weighted probabilistic ensemble.  A cheap
closed-form fallback is used while too few observations exist.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional

from repro.learncurve.ensemble import CurveEnsemble
from repro.workload.job import Job


@dataclass
class AccuracyPredictor:
    """Predicts a job's accuracy at a future iteration.

    Parameters
    ----------
    noise_std:
        Standard deviation of the multiplicative observation noise;
        ``0.03`` yields roughly the 90% prediction accuracy the paper
        reports for [17].
    min_observations:
        Observations required before the ensemble is fitted; below this
        the predictor falls back to the analytic curve through the last
        observation.
    refit_every:
        Ensemble refit cadence (in new observations) to bound cost.
    """

    noise_std: float = 0.02
    min_observations: int = 4
    refit_every: int = 5
    seed: int = 0

    _rng: random.Random = field(init=False, repr=False)
    _history: dict[str, tuple[list[float], list[float]]] = field(
        default_factory=dict, repr=False
    )
    _ensembles: dict[str, CurveEnsemble] = field(default_factory=dict, repr=False)
    _since_fit: dict[str, int] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        self._rng = random.Random(self.seed)

    # -- observation ------------------------------------------------------

    def observe(self, job: Job, iteration: int, accuracy: Optional[float] = None) -> float:
        """Record a (noisy) accuracy measurement for a job.

        ``accuracy=None`` reads the job's true curve and applies the
        configured observation noise.  Returns the recorded value.
        """
        true = job.accuracy_at(iteration) if accuracy is None else accuracy
        noisy = true
        if accuracy is None and self.noise_std > 0:
            noisy = max(0.0, min(1.0, true * (1.0 + self._rng.gauss(0.0, self.noise_std))))
        xs, ys = self._history.setdefault(job.job_id, ([], []))
        xs.append(float(iteration))
        ys.append(noisy)
        self._since_fit[job.job_id] = self._since_fit.get(job.job_id, 0) + 1
        return noisy

    def observations(self, job: Job) -> int:
        """Number of recorded observations for a job."""
        xs, _ys = self._history.get(job.job_id, ([], []))
        return len(xs)

    # -- prediction ---------------------------------------------------------

    def predict(self, job: Job, iteration: int) -> float:
        """Predicted accuracy of ``job`` at ``iteration``."""
        ensemble = self._ensemble_for(job)
        if ensemble is not None:
            return ensemble.predict(iteration)
        return self._fallback(job, iteration)

    def predict_final(self, job: Job) -> float:
        """Predicted accuracy at the job's specified maximum iteration."""
        return self.predict(job, job.max_iterations)

    def confidence_below(self, job: Job, iteration: int, threshold: float) -> float:
        """P(accuracy at ``iteration`` < ``threshold``)."""
        ensemble = self._ensemble_for(job)
        if ensemble is not None:
            return ensemble.confidence_below(iteration, threshold)
        # Fallback: point estimate with a fixed modest uncertainty.
        predicted = self._fallback(job, iteration)
        return 1.0 if predicted < threshold else 0.0

    def forget(self, job: Job) -> None:
        """Drop all state for a finished job."""
        self._history.pop(job.job_id, None)
        self._ensembles.pop(job.job_id, None)
        self._since_fit.pop(job.job_id, None)

    # -- internals -------------------------------------------------------------

    def _ensemble_for(self, job: Job) -> Optional[CurveEnsemble]:
        xs, ys = self._history.get(job.job_id, ([], []))
        if len(xs) < self.min_observations:
            return None
        stale = self._since_fit.get(job.job_id, 0) >= self.refit_every
        if job.job_id not in self._ensembles or stale:
            self._ensembles[job.job_id] = CurveEnsemble.fit(xs, ys)
            self._since_fit[job.job_id] = 0
        return self._ensembles[job.job_id]

    def _fallback(self, job: Job, iteration: int) -> float:
        """Closed-form early estimate: scale the analytic curve through
        the most recent observation."""
        xs, ys = self._history.get(job.job_id, ([], []))
        if not xs:
            return job.accuracy_at(iteration)
        last_x, last_y = xs[-1], ys[-1]
        model_last = job.accuracy_at(int(last_x))
        scale = last_y / model_last if model_last > 1e-9 else 1.0
        return max(0.0, min(1.0, job.accuracy_at(iteration) * scale))
