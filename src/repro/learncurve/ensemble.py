"""Weighted probabilistic learning-curve ensemble (Domhan et al. [17]).

The paper's OptStop "uses a weighted probabilistic learning curve model
to predict the job's accuracy at the specified maximum iteration"
(Section 3.5).  We fit every family in
:data:`repro.learncurve.curves.CURVE_FAMILIES` to the observed
(iteration, accuracy) points, weight members by goodness of fit, and
expose a predictive mean plus an uncertainty estimate — enough to
implement the "stop when the prediction confidence is higher than a
threshold" rule.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.learncurve.curves import CURVE_FAMILIES, CurveFamily, fit_family


@dataclass
class FittedMember:
    """One fitted ensemble member: a family, its parameters and weight."""

    family: CurveFamily
    params: list[float]
    sse: float
    weight: float

    def predict(self, iteration: float) -> float:
        """Evaluate this member at an iteration count."""
        return float(self.family(np.asarray([iteration]), self.params)[0])


@dataclass
class CurveEnsemble:
    """A fitted weighted ensemble over learning-curve families.

    Use :meth:`fit` (or :func:`fit_ensemble`) to construct.  The ensemble
    weight of member ``m`` is ``softmin`` of its per-point mean squared
    error, so better-fitting families dominate the prediction while every
    family retains probability mass (the "probabilistic" aspect of [17]).
    """

    members: list[FittedMember] = field(default_factory=list)
    observed_x: list[float] = field(default_factory=list)
    observed_y: list[float] = field(default_factory=list)

    @classmethod
    def fit(
        cls, iterations: Sequence[float], accuracies: Sequence[float]
    ) -> "CurveEnsemble":
        """Fit all families to the observations and weight them."""
        if len(iterations) != len(accuracies):
            raise ValueError("iterations and accuracies must be the same length")
        if len(iterations) < 2:
            raise ValueError("need at least two observations to fit an ensemble")
        x = list(map(float, iterations))
        y = list(map(float, accuracies))
        n = len(x)

        members = []
        for family in CURVE_FAMILIES:
            params, err = fit_family(family, x, y)
            members.append(FittedMember(family=family, params=params, sse=err, weight=0.0))

        mses = np.asarray([m.sse / n for m in members])
        # Soft-min weighting with a temperature tied to the error scale.
        scale = max(float(np.min(mses)), 1e-8)
        logits = -mses / scale
        logits -= logits.max()
        weights = np.exp(logits)
        weights /= weights.sum()
        for member, weight in zip(members, weights):
            member.weight = float(weight)
        return cls(members=members, observed_x=x, observed_y=y)

    # -- prediction -----------------------------------------------------

    def predict(self, iteration: float) -> float:
        """Weighted-mean accuracy prediction at an iteration count."""
        value = sum(m.weight * m.predict(iteration) for m in self.members)
        return float(min(1.0, max(0.0, value)))

    def predict_std(self, iteration: float) -> float:
        """Ensemble spread at an iteration — the uncertainty estimate.

        Combines the weighted variance of member predictions with the
        residual error on the observed prefix.
        """
        mean = sum(m.weight * m.predict(iteration) for m in self.members)
        var = sum(m.weight * (m.predict(iteration) - mean) ** 2 for m in self.members)
        residual = self._residual_std()
        return math.sqrt(var + residual * residual)

    def confidence_below(self, iteration: float, threshold: float) -> float:
        """P(accuracy at ``iteration`` < ``threshold``) under a normal model.

        This is the confidence OptStop requires before aborting a job
        whose predicted accuracy misses its requirement.
        """
        mean = self.predict(iteration)
        std = max(self.predict_std(iteration), 1e-6)
        z = (threshold - mean) / std
        return _normal_cdf(z)

    def _residual_std(self) -> float:
        """Weighted RMS residual of the members on the observed data."""
        n = max(len(self.observed_x), 1)
        mse = sum(m.weight * m.sse / n for m in self.members)
        return math.sqrt(max(mse, 0.0))


def fit_ensemble(
    iterations: Sequence[float], accuracies: Sequence[float]
) -> CurveEnsemble:
    """Convenience alias for :meth:`CurveEnsemble.fit`."""
    return CurveEnsemble.fit(iterations, accuracies)


def _normal_cdf(z: float) -> float:
    """Standard normal CDF via erf (no SciPy dependency)."""
    return 0.5 * (1.0 + math.erf(z / math.sqrt(2.0)))
