"""Learning-curve substrate: curve families, ensembles, predictors, OptStop."""

from repro.learncurve.accuracy import AccuracyPredictor
from repro.learncurve.curves import CURVE_FAMILIES, CurveFamily, fit_family
from repro.learncurve.ensemble import CurveEnsemble, FittedMember, fit_ensemble
from repro.learncurve.optstop import OptStopPolicy, StopDecision
from repro.learncurve.runtime import RuntimePredictor

__all__ = [
    "AccuracyPredictor",
    "CURVE_FAMILIES",
    "CurveEnsemble",
    "CurveFamily",
    "FittedMember",
    "OptStopPolicy",
    "RuntimePredictor",
    "StopDecision",
    "fit_ensemble",
    "fit_family",
]
