"""Runtime prediction service (paper Section 3.1, via Optimus [42]).

The paper assumes "the total job running time can be predicted
accurately … 89% prediction accuracy for the jobs that ran previously
and 70% … for the jobs that didn't".  Optimus fits observed per-iteration
times online; we do the same: the predictor records iteration durations,
estimates the steady per-iteration time by a robust mean, and
extrapolates the remaining runtime.  For never-observed jobs it falls
back to the workload builder's analytic estimate with a configurable
error factor reproducing the 70%-accuracy regime.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.workload.job import Job


@dataclass
class RuntimePredictor:
    """Online per-job runtime predictor.

    Parameters
    ----------
    cold_error_std:
        Std-dev of the multiplicative error applied to the analytic
        estimate for jobs with no observed iterations (the "didn't run
        previously" regime).
    warm_error_std:
        Std-dev applied to observation-based predictions.
    window:
        Number of most recent iteration durations averaged.
    """

    cold_error_std: float = 0.30
    warm_error_std: float = 0.11
    window: int = 8
    seed: int = 0

    _rng: random.Random = field(init=False, repr=False)
    _durations: dict[str, list[float]] = field(default_factory=dict, repr=False)
    _cold_factor: dict[str, float] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        self._rng = random.Random(self.seed)

    def observe_iteration(self, job: Job, duration: float) -> None:
        """Record the wall time of one completed iteration."""
        if duration < 0:
            raise ValueError("iteration duration cannot be negative")
        samples = self._durations.setdefault(job.job_id, [])
        samples.append(duration)
        if len(samples) > 4 * self.window:
            del samples[: -2 * self.window]

    def has_history(self, job: Job) -> bool:
        """Whether the job has any observed iterations."""
        return bool(self._durations.get(job.job_id))

    def iteration_time(self, job: Job) -> float:
        """Estimated time of the job's next iteration."""
        samples = self._durations.get(job.job_id)
        if samples:
            recent = samples[-self.window :]
            return sum(recent) / len(recent)
        per_iter = (
            job.estimated_duration / job.max_iterations
            if job.max_iterations
            else job.estimated_duration
        )
        return per_iter * self._cold(job)

    def remaining_time(self, job: Job) -> float:
        """Predicted time to finish the job's remaining iterations.

        This is the paper's ``r_{k,J} = t_{k,J} - p_{k,J}`` at job
        granularity: estimated per-iteration time times remaining
        iterations, with the observation-noise regime matching whether
        the job ran before.
        """
        remaining = job.remaining_iterations
        if remaining <= 0:
            return 0.0
        base = self.iteration_time(job) * remaining
        if self._durations.get(job.job_id) and self.warm_error_std > 0:
            return max(0.0, base * (1.0 + self._rng.gauss(0.0, self.warm_error_std)))
        return base

    def total_time(self, job: Job) -> float:
        """Predicted total execution time of the job (``t_e``)."""
        return self.iteration_time(job) * max(1, job.max_iterations)

    def forget(self, job: Job) -> None:
        """Drop all state for a finished job."""
        self._durations.pop(job.job_id, None)
        self._cold_factor.pop(job.job_id, None)

    def _cold(self, job: Job) -> float:
        """Sticky multiplicative error for never-observed jobs."""
        if job.job_id not in self._cold_factor:
            factor = 1.0
            if self.cold_error_std > 0:
                factor = max(0.3, 1.0 + self._rng.gauss(0.0, self.cold_error_std))
            self._cold_factor[job.job_id] = factor
        return self._cold_factor[job.job_id]
