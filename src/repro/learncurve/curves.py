"""Parametric learning-curve families.

The weighted probabilistic learning-curve model of Domhan et al. [17] —
which the paper adopts for accuracy prediction and OptStop (Sections 3.1
and 3.5) — extrapolates training curves by fitting an ensemble of
parametric families.  We implement the families most relevant to
accuracy-vs-iteration curves, each with a closed-form evaluation and a
NumPy-only least-squares fit (coarse grid search refined by coordinate
descent, so no SciPy dependency is required at runtime).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

CurveFn = Callable[[np.ndarray, Sequence[float]], np.ndarray]


@dataclass(frozen=True)
class CurveFamily:
    """One parametric curve family.

    Attributes
    ----------
    name:
        Family identifier.
    fn:
        Vectorized evaluation ``fn(x, params) -> y``.
    param_grids:
        Per-parameter coarse search grids used to seed the fit.
    """

    name: str
    fn: CurveFn
    param_grids: tuple[tuple[float, ...], ...]

    def __call__(self, x: np.ndarray, params: Sequence[float]) -> np.ndarray:
        return self.fn(np.asarray(x, dtype=float), params)


def _pow3(x: np.ndarray, p: Sequence[float]) -> np.ndarray:
    """``c - a * x^(-alpha)`` — the classic power-law saturation."""
    c, a, alpha = p
    return c - a * np.power(np.maximum(x, 1e-9), -alpha)


def _log_power(x: np.ndarray, p: Sequence[float]) -> np.ndarray:
    """``c / (1 + (x / e^b)^(-a))`` — log-power sigmoid."""
    c, a, b = p
    x = np.maximum(x, 1e-9)
    return c / (1.0 + np.power(x / math.exp(b), -a))


def _vapor_pressure(x: np.ndarray, p: Sequence[float]) -> np.ndarray:
    """``exp(a + b / x + c * log(x))`` — vapor-pressure curve."""
    a, b, c = p
    x = np.maximum(x, 1e-9)
    return np.exp(a + b / x + c * np.log(x))


def _mmf(x: np.ndarray, p: Sequence[float]) -> np.ndarray:
    """``c * x / (x + k)`` — Michaelis–Menten/hyperbolic saturation."""
    c, k, _unused = p
    x = np.maximum(x, 0.0)
    return c * x / (x + max(k, 1e-9))


#: The ensemble members, ordered deterministically.
CURVE_FAMILIES: tuple[CurveFamily, ...] = (
    CurveFamily(
        name="pow3",
        fn=_pow3,
        param_grids=(
            tuple(np.linspace(0.3, 1.0, 8)),
            tuple(np.linspace(0.1, 1.5, 8)),
            tuple(np.linspace(0.2, 2.0, 8)),
        ),
    ),
    CurveFamily(
        name="log_power",
        fn=_log_power,
        param_grids=(
            tuple(np.linspace(0.3, 1.0, 8)),
            tuple(np.linspace(0.5, 3.0, 6)),
            tuple(np.linspace(0.0, 3.0, 6)),
        ),
    ),
    CurveFamily(
        name="vapor_pressure",
        fn=_vapor_pressure,
        param_grids=(
            tuple(np.linspace(-2.0, 0.0, 6)),
            tuple(np.linspace(-3.0, 0.0, 6)),
            tuple(np.linspace(0.0, 0.4, 6)),
        ),
    ),
    CurveFamily(
        name="mmf",
        fn=_mmf,
        param_grids=(
            tuple(np.linspace(0.3, 1.0, 10)),
            tuple(np.linspace(0.5, 30.0, 10)),
            (0.0,),
        ),
    ),
)


def sse(family: CurveFamily, params: Sequence[float], x: np.ndarray, y: np.ndarray) -> float:
    """Sum of squared errors of a parameterization on observations."""
    pred = family(x, params)
    if not np.all(np.isfinite(pred)):
        return float("inf")
    return float(np.sum((pred - y) ** 2))


def fit_family(
    family: CurveFamily,
    x: Sequence[float],
    y: Sequence[float],
    refine_rounds: int = 3,
) -> tuple[list[float], float]:
    """Fit one family by grid search + coordinate refinement.

    Returns ``(params, sse)``.  Deterministic; NumPy only.
    """
    xa = np.asarray(x, dtype=float)
    ya = np.asarray(y, dtype=float)
    if xa.size == 0:
        raise ValueError("cannot fit a curve to zero observations")

    # Coarse grid search over the cartesian product.
    best_params: list[float] | None = None
    best_err = float("inf")
    grids = family.param_grids
    stack = [[]]
    for grid in grids:
        stack = [prefix + [value] for prefix in stack for value in grid]
    for candidate in stack:
        err = sse(family, candidate, xa, ya)
        if err < best_err:
            best_err = err
            best_params = list(candidate)
    assert best_params is not None

    # Coordinate-descent refinement around the best grid point.
    step_fractions = (0.5, 0.25, 0.1)[:refine_rounds]
    for frac in step_fractions:
        for i in range(len(best_params)):
            span = _grid_span(grids[i]) * frac
            if span <= 0:
                continue
            for delta in (-span, span, -span / 2, span / 2):
                trial = list(best_params)
                trial[i] += delta
                err = sse(family, trial, xa, ya)
                if err < best_err:
                    best_err = err
                    best_params = trial
    return best_params, best_err


def _grid_span(grid: tuple[float, ...]) -> float:
    """Spacing scale of a search grid."""
    if len(grid) < 2:
        return 0.0
    return (max(grid) - min(grid)) / (len(grid) - 1)
