"""OptStop: the optimal ML iteration stopping rule (paper Section 3.5).

"When a job is running, we first use a weighted probabilistic learning
curve model to predict the job's accuracy at the specified maximum
iteration.  If the predicted accuracy is less than an accuracy
threshold, the training stops when the prediction confidence is higher
than a threshold.  Otherwise, the training continues and stops when the
achieved accuracy reaches the accuracy threshold."

The *accuracy threshold* depends on the job's effective stop option:

* ``OPT_STOP`` targets the near-maximum accuracy (a fraction of the
  predicted final accuracy — "equals or is close to the maximum"),
* ``ACCURACY_ONLY`` targets the user's required accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.learncurve.accuracy import AccuracyPredictor
from repro.workload.job import Job, StopOption


class StopDecision(Enum):
    """Outcome of an OptStop evaluation."""

    CONTINUE = "continue"
    STOP_TARGET_REACHED = "stop_target_reached"
    STOP_UNREACHABLE = "stop_unreachable"


@dataclass
class OptStopPolicy:
    """The early-stopping rule evaluated at every iteration boundary.

    Parameters
    ----------
    plateau_fraction:
        Under ``OPT_STOP``, stop once the achieved accuracy reaches this
        fraction of the predicted final accuracy (the point where more
        iterations yield "little or no improvement").
    confidence_threshold:
        Confidence required before aborting a job predicted to miss its
        threshold.
    min_iterations:
        Never stop before this many iterations — the predictor needs a
        prefix to extrapolate from.
    """

    plateau_fraction: float = 0.995
    confidence_threshold: float = 0.9
    #: Predicted shortfall required (on top of confidence) before
    #: aborting — guards against ensemble noise killing healthy jobs.
    unreachable_margin: float = 0.02
    min_iterations: int = 3

    def target_accuracy(self, job: Job, predictor: AccuracyPredictor) -> float:
        """The accuracy threshold implied by the job's effective option."""
        option = job.effective_stop_option or job.stop_option
        if option is StopOption.ACCURACY_ONLY:
            return job.accuracy_requirement
        if option is StopOption.OPT_STOP:
            predicted_final = predictor.predict_final(job)
            return max(job.accuracy_requirement, predicted_final * self.plateau_fraction)
        return float("inf")  # FIXED_ITERATIONS: never stop early

    def evaluate(
        self, job: Job, predictor: AccuracyPredictor, achieved_accuracy: float
    ) -> StopDecision:
        """Decide whether a job should stop now.

        Parameters
        ----------
        job:
            The running job; its ``effective_stop_option`` selects the
            threshold.
        predictor:
            The accuracy-prediction service holding the job's history.
        achieved_accuracy:
            The most recent measured accuracy.
        """
        option = job.effective_stop_option or job.stop_option
        if option is StopOption.FIXED_ITERATIONS:
            return StopDecision.CONTINUE
        if job.iterations_completed < self.min_iterations:
            return StopDecision.CONTINUE

        threshold = self.target_accuracy(job, predictor)
        if achieved_accuracy >= threshold:
            return StopDecision.STOP_TARGET_REACHED

        # The unreachable check only makes sense against an *absolute*
        # requirement.  Under OPT_STOP the threshold is derived from the
        # predicted final accuracy itself, so comparing the prediction
        # against it would merely re-test the ensemble's noise.
        if option is StopOption.ACCURACY_ONLY:
            requirement = job.accuracy_requirement
            predicted_final = predictor.predict_final(job)
            if predicted_final < requirement - self.unreachable_margin:
                confidence = predictor.confidence_below(
                    job, job.max_iterations, requirement
                )
                if confidence >= self.confidence_threshold:
                    return StopDecision.STOP_UNREACHABLE
        return StopDecision.CONTINUE

    def optimal_stop_iteration(self, job: Job, predictor: AccuracyPredictor) -> int:
        """The iteration at which the job is expected to stop.

        Used for planning (e.g. load forecasts); searches the predicted
        curve for the first iteration meeting the target, clamped to
        ``max_iterations``.
        """
        threshold = self.target_accuracy(job, predictor)
        if threshold == float("inf"):
            return job.max_iterations
        for iteration in range(
            max(self.min_iterations, job.iterations_completed), job.max_iterations + 1
        ):
            if predictor.predict(job, iteration) >= threshold:
                return iteration
        return job.max_iterations
