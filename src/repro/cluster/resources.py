"""Multi-resource vectors for servers and tasks.

The paper (Section 3.3.2) models ``M`` resource types per server — GPU,
CPU, memory and network bandwidth — and reasons about utilization vectors
``U_s = (u_1, ..., u_M)`` for servers and ``U_k`` for tasks.  Overload is
declared per resource against a threshold ``h_r`` and the RIAL-style
placement/migration logic compares utilization vectors by Euclidean
distance.  This module provides the small value type used everywhere for
those vectors.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import IntEnum
from typing import Iterable, Iterator


class ResourceKind(IntEnum):
    """The resource dimensions tracked by the simulator.

    The paper's experiments consider CPU, memory, GPU and bandwidth
    cost (Section 4.1, "Experimental setting").  The integer values index
    into :class:`ResourceVector` tuples.
    """

    GPU = 0
    CPU = 1
    MEM = 2
    BW = 3


#: Number of tracked resource kinds (``M`` in the paper).
NUM_RESOURCE_KINDS = len(ResourceKind)


@dataclass(frozen=True, slots=True)
class ResourceVector:
    """An immutable 4-dimensional resource quantity.

    Used both for absolute amounts (capacities, demands) and for
    normalized utilizations in ``[0, 1]``.  Supports the arithmetic the
    scheduling algorithms need: addition/subtraction for accounting,
    element-wise division for normalizing a load by a capacity, Euclidean
    norm and distance for the RIAL comparisons, and element-wise
    min/max for building the "ideal virtual" vectors of Section 3.3.

    Units are by convention: GPU in fractional devices, CPU in cores,
    MEM in gigabytes, BW in megabytes per second.
    """

    gpu: float = 0.0
    cpu: float = 0.0
    mem: float = 0.0
    bw: float = 0.0

    # -- constructors ---------------------------------------------------

    @classmethod
    def zeros(cls) -> "ResourceVector":
        """Return the all-zero vector."""
        return cls()

    @classmethod
    def from_iterable(cls, values: Iterable[float]) -> "ResourceVector":
        """Build a vector from four values ordered as :class:`ResourceKind`."""
        gpu, cpu, mem, bw = values
        return cls(float(gpu), float(cpu), float(mem), float(bw))

    @classmethod
    def uniform(cls, value: float) -> "ResourceVector":
        """Return a vector with every component equal to ``value``."""
        return cls(value, value, value, value)

    # -- access ----------------------------------------------------------

    def as_tuple(self) -> tuple[float, float, float, float]:
        """Return the components ordered as :class:`ResourceKind`."""
        return (self.gpu, self.cpu, self.mem, self.bw)

    def __iter__(self) -> Iterator[float]:
        return iter(self.as_tuple())

    def __getitem__(self, kind: ResourceKind | int) -> float:
        return self.as_tuple()[int(kind)]

    # -- arithmetic -------------------------------------------------------

    def __add__(self, other: "ResourceVector") -> "ResourceVector":
        return ResourceVector(
            self.gpu + other.gpu,
            self.cpu + other.cpu,
            self.mem + other.mem,
            self.bw + other.bw,
        )

    def __sub__(self, other: "ResourceVector") -> "ResourceVector":
        return ResourceVector(
            self.gpu - other.gpu,
            self.cpu - other.cpu,
            self.mem - other.mem,
            self.bw - other.bw,
        )

    def __mul__(self, scalar: float) -> "ResourceVector":
        return ResourceVector(
            self.gpu * scalar, self.cpu * scalar, self.mem * scalar, self.bw * scalar
        )

    __rmul__ = __mul__

    def divide_by(self, capacity: "ResourceVector") -> "ResourceVector":
        """Element-wise division used to normalize a load by a capacity.

        Components whose capacity is zero normalize to zero — a server
        that has no resource of a kind cannot be loaded on that kind.
        """
        return ResourceVector(
            self.gpu / capacity.gpu if capacity.gpu else 0.0,
            self.cpu / capacity.cpu if capacity.cpu else 0.0,
            self.mem / capacity.mem if capacity.mem else 0.0,
            self.bw / capacity.bw if capacity.bw else 0.0,
        )

    # -- comparisons -------------------------------------------------------

    def fits_within(self, other: "ResourceVector", tolerance: float = 1e-9) -> bool:
        """Return ``True`` when every component is ``<=`` the other's."""
        return all(a <= b + tolerance for a, b in zip(self, other))

    def exceeds_any(self, threshold: float) -> bool:
        """Return ``True`` when any component is strictly above ``threshold``."""
        return any(v > threshold for v in self)

    def clamp_nonnegative(self) -> "ResourceVector":
        """Return a copy with negative components (accounting noise) zeroed."""
        return ResourceVector(*(max(0.0, v) for v in self))

    # -- geometry ----------------------------------------------------------

    def norm(self) -> float:
        """Euclidean norm — the paper's per-server overload degree ``O_s``."""
        return math.sqrt(sum(v * v for v in self))

    def distance_to(self, other: "ResourceVector") -> float:
        """Euclidean distance used by the RIAL placement/migration rules."""
        return (self - other).norm()

    def element_max(self, other: "ResourceVector") -> "ResourceVector":
        """Element-wise maximum."""
        return ResourceVector(*(max(a, b) for a, b in zip(self, other)))

    def element_min(self, other: "ResourceVector") -> "ResourceVector":
        """Element-wise minimum."""
        return ResourceVector(*(min(a, b) for a, b in zip(self, other)))

    def max_component(self) -> float:
        """The largest component, e.g. the most loaded resource dimension."""
        return max(self.as_tuple())

    def replace(self, kind: ResourceKind, value: float) -> "ResourceVector":
        """Return a copy with the ``kind`` component set to ``value``."""
        values = list(self.as_tuple())
        values[int(kind)] = float(value)
        return ResourceVector.from_iterable(values)
