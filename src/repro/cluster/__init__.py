"""Cluster substrate: resources, GPUs, servers and the cluster aggregate."""

from repro.cluster.cluster import Cluster, mean_utilization
from repro.cluster.gpu import GPU
from repro.cluster.resources import (
    NUM_RESOURCE_KINDS,
    ResourceKind,
    ResourceVector,
)
from repro.cluster.server import DEFAULT_SERVER_CAPACITY, Server

__all__ = [
    "Cluster",
    "GPU",
    "NUM_RESOURCE_KINDS",
    "ResourceKind",
    "ResourceVector",
    "Server",
    "DEFAULT_SERVER_CAPACITY",
    "mean_utilization",
]
