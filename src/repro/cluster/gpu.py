"""A single GPU device inside a server.

The paper schedules each task onto the least-loaded GPU of a chosen
server (Section 3.3.2) and requires that no individual GPU become
overloaded (Section 3.3.3).  A GPU here is a share-able device: every
hosted task contributes a fractional ``gpu`` demand and the device's
utilization is the sum of those demands over its capacity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.workload.job import Task


@dataclass
class GPU:
    """One GPU device.

    Parameters
    ----------
    gpu_id:
        Index of the device within its server.
    capacity:
        Compute capacity in fractional device units; ``1.0`` for a whole
        device.  A task demanding ``0.5`` occupies half the device.
    """

    gpu_id: int
    capacity: float = 1.0
    #: Fault-injection flag (repro.faults): a failed device keeps its
    #: accounting but refuses new work until revived.
    failed: bool = False
    _tasks: dict[str, "Task"] = field(default_factory=dict, repr=False)
    _load: float = field(default=0.0, repr=False)

    @property
    def load(self) -> float:
        """Sum of the ``gpu`` demands of the hosted tasks."""
        return self._load

    @property
    def utilization(self) -> float:
        """Load normalized by capacity; may exceed 1.0 when oversubscribed."""
        return self._load / self.capacity if self.capacity else 0.0

    @property
    def task_count(self) -> int:
        """Number of tasks currently assigned to this device."""
        return len(self._tasks)

    def tasks(self) -> list["Task"]:
        """Snapshot list of the tasks assigned to this device."""
        return list(self._tasks.values())

    def is_overloaded(self, threshold: float) -> bool:
        """Whether utilization exceeds the overload threshold ``h_r``.

        A failed device reports overloaded so every capacity check
        steers placements away from it.
        """
        return self.failed or self.utilization > threshold

    def would_overload(self, extra_gpu_demand: float, threshold: float) -> bool:
        """Whether adding ``extra_gpu_demand`` would push past ``threshold``."""
        if self.failed:
            return True
        if not self.capacity:
            return extra_gpu_demand > 0
        return (self._load + extra_gpu_demand) / self.capacity > threshold

    def add_task(self, task: "Task") -> None:
        """Account a task's GPU demand onto this device."""
        if self.failed:
            raise ValueError(f"cannot place task {task.task_id}: GPU {self.gpu_id} failed")
        if task.task_id in self._tasks:
            raise ValueError(f"task {task.task_id} already on GPU {self.gpu_id}")
        self._tasks[task.task_id] = task
        self._load += task.true_demand.gpu

    def remove_task(self, task: "Task") -> None:
        """Release a task's GPU demand from this device."""
        if task.task_id not in self._tasks:
            raise KeyError(f"task {task.task_id} not on GPU {self.gpu_id}")
        del self._tasks[task.task_id]
        self._load -= task.true_demand.gpu
        if self._load < 1e-12:
            self._load = 0.0
