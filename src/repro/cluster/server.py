"""A multi-GPU server with CPU, memory and bandwidth capacities.

Mirrors the testbed of the paper's real experiments: AWS ``p3.8xlarge``
instances with 4 Tesla V100 GPUs, 32 vCPUs and 244 GB of memory each
(Section 4.1).  The server tracks the resource accounting needed by the
overload predicates of Section 3.3 — per-resource utilization against
``h_r`` and per-GPU utilization.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.cluster.gpu import GPU
from repro.cluster.resources import ResourceKind, ResourceVector

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.workload.job import Task

#: Capacity of one AWS p3.8xlarge-like server (4 GPUs, 32 vCPU, 244 GB,
#: 10 Gb/s NIC expressed as 1250 MB/s).
DEFAULT_SERVER_CAPACITY = ResourceVector(gpu=4.0, cpu=32.0, mem=244.0, bw=1250.0)


@dataclass
class Server:
    """One server in the ML cluster.

    Parameters
    ----------
    server_id:
        Index of the server within the cluster.
    capacity:
        Total resources; the ``gpu`` component must equal the number of
        GPU devices times their per-device capacity.
    num_gpus:
        Number of discrete GPU devices on the server.
    """

    server_id: int
    capacity: ResourceVector = DEFAULT_SERVER_CAPACITY
    num_gpus: int = 4
    #: Fault-injection flag (repro.faults): a crashed server reports
    #: overloaded on every predicate and rejects placements until revived.
    failed: bool = False
    gpus: list[GPU] = field(default_factory=list)
    #: Monotonic count of load mutations (task placed or removed) on
    #: this server, including per-GPU load changes — they only happen
    #: through :meth:`place_task`/:meth:`remove_task`.  Lets callers
    #: memoize load-derived quantities (the iteration-duration model)
    #: and invalidate exactly when this host's load state changes.
    load_version: int = field(default=0, repr=False)
    _tasks: dict[str, "Task"] = field(default_factory=dict, repr=False)
    _load: ResourceVector = field(default_factory=ResourceVector.zeros, repr=False)

    def __post_init__(self) -> None:
        if not self.gpus:
            per_gpu = self.capacity.gpu / self.num_gpus if self.num_gpus else 0.0
            self.gpus = [GPU(gpu_id=i, capacity=per_gpu) for i in range(self.num_gpus)]

    # -- load accounting ---------------------------------------------------

    @property
    def load(self) -> ResourceVector:
        """Sum of the demands of all hosted tasks."""
        return self._load

    def utilization(self) -> ResourceVector:
        """The paper's ``U_s`` vector: per-resource load over capacity."""
        return self._load.divide_by(self.capacity).clamp_nonnegative()

    def overload_degree(self) -> float:
        """``O_s = ||U_s||`` — Euclidean norm of the utilization vector.

        Scalar-wise: the cluster-wide degree sums this over every server
        once per pass, so it avoids the intermediate vectors of
        ``utilization().norm()`` (numerically identical).
        """
        load = self._load
        cap = self.capacity
        ug = load.gpu / cap.gpu if cap.gpu else 0.0
        uc = load.cpu / cap.cpu if cap.cpu else 0.0
        um = load.mem / cap.mem if cap.mem else 0.0
        ub = load.bw / cap.bw if cap.bw else 0.0
        if ug < 0.0:
            ug = 0.0
        if uc < 0.0:
            uc = 0.0
        if um < 0.0:
            um = 0.0
        if ub < 0.0:
            ub = 0.0
        return math.sqrt(ug * ug + uc * uc + um * um + ub * ub)

    def is_overloaded(self, threshold: float) -> bool:
        """True when any resource utilization exceeds ``h_r`` (Section 3.3.2).

        A failed server is unconditionally overloaded, which keeps every
        capacity-checking placement path away from lost hardware.
        Scalar-wise (the overload scan visits every server every pass):
        matches ``utilization().exceeds_any(threshold)`` exactly,
        including the clamp of negative accounting noise to zero.
        """
        if self.failed:
            return True
        load = self._load
        cap = self.capacity
        ug = load.gpu / cap.gpu if cap.gpu else 0.0
        uc = load.cpu / cap.cpu if cap.cpu else 0.0
        um = load.mem / cap.mem if cap.mem else 0.0
        ub = load.bw / cap.bw if cap.bw else 0.0
        return (
            (ug if ug > 0.0 else 0.0) > threshold
            or (uc if uc > 0.0 else 0.0) > threshold
            or (um if um > 0.0 else 0.0) > threshold
            or (ub if ub > 0.0 else 0.0) > threshold
        )

    def overloaded_kinds(self, threshold: float) -> list[ResourceKind]:
        """The resource kinds whose utilization exceeds ``threshold``."""
        util = self.utilization()
        return [kind for kind in ResourceKind if util[kind] > threshold]

    def overloaded_gpus(self, threshold: float) -> list[GPU]:
        """The GPU devices whose utilization exceeds ``threshold``."""
        return [g for g in self.gpus if g.is_overloaded(threshold)]

    def healthy_gpus(self) -> list[GPU]:
        """The GPU devices not currently marked failed."""
        return [g for g in self.gpus if not g.failed]

    def least_loaded_gpu(self) -> GPU:
        """The GPU with the smallest utilization (placement target).

        Healthy devices are preferred; with every device failed the
        least-loaded failed one is returned so accounting paths (task
        removal, digests) keep working — placement predicates reject it
        via :meth:`GPU.would_overload`.
        """
        if not self.gpus:
            raise RuntimeError(f"server {self.server_id} has no GPUs")
        pool = self.healthy_gpus() or self.gpus
        return min(pool, key=lambda g: (g.utilization, g.gpu_id))

    def would_overload(
        self, demand: ResourceVector, threshold: float, gpu: Optional[GPU] = None
    ) -> bool:
        """Whether hosting ``demand`` would overload the server or the GPU.

        The paper requires that the selected host "will not be overloaded
        (on each resource and its least-loaded GPU) by hosting the task"
        (Section 3.3.2).  A failed server (or target GPU) always
        overloads.
        """
        if self.failed:
            return True
        candidate = (self._load + demand).divide_by(self.capacity)
        if candidate.exceeds_any(threshold):
            return True
        target = gpu if gpu is not None else self.least_loaded_gpu()
        return target.would_overload(demand.gpu, threshold)

    # -- task placement ------------------------------------------------------

    def tasks(self) -> list["Task"]:
        """Snapshot list of the tasks hosted by this server."""
        return list(self._tasks.values())

    @property
    def task_count(self) -> int:
        """Number of tasks currently hosted."""
        return len(self._tasks)

    def place_task(self, task: "Task", gpu: Optional[GPU] = None) -> GPU:
        """Host a task, assigning it to ``gpu`` or the least-loaded GPU.

        Returns the GPU the task landed on.  The caller (the simulation
        engine) is responsible for updating the task's own placement
        bookkeeping.
        """
        if self.failed:
            raise ValueError(
                f"cannot place task {task.task_id}: server {self.server_id} failed"
            )
        if task.task_id in self._tasks:
            raise ValueError(
                f"task {task.task_id} already on server {self.server_id}"
            )
        target = gpu if gpu is not None else self.least_loaded_gpu()
        target.add_task(task)
        self._tasks[task.task_id] = task
        self._load = self._load + task.true_demand
        self.load_version += 1
        return target

    def remove_task(self, task: "Task") -> None:
        """Release a hosted task and its resource demand."""
        if task.task_id not in self._tasks:
            raise KeyError(f"task {task.task_id} not on server {self.server_id}")
        gpu = self.gpus[task.gpu_id] if task.gpu_id is not None else None
        if gpu is not None and task.task_id in {t.task_id for t in gpu.tasks()}:
            gpu.remove_task(task)
        del self._tasks[task.task_id]
        self._load = (self._load - task.true_demand).clamp_nonnegative()
        self.load_version += 1
