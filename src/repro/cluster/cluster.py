"""The ML cluster: a set of servers plus the global waiting queue view.

Provides the cluster-wide aggregates used by MLF-C (Section 3.5): the
cluster utilization ``U_c`` and the overload degree
``O_c = (1/|N|) * sum_s ||U_s||`` compared against the threshold ``h_s``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Iterator, Optional

from repro.cluster.resources import ResourceVector
from repro.cluster.server import DEFAULT_SERVER_CAPACITY, Server

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.workload.job import Task


@dataclass
class Cluster:
    """A collection of :class:`~repro.cluster.server.Server` objects."""

    servers: list[Server] = field(default_factory=list)

    @classmethod
    def build(
        cls,
        num_servers: int,
        gpus_per_server: int = 4,
        capacity: Optional[ResourceVector] = None,
    ) -> "Cluster":
        """Construct a homogeneous cluster.

        Defaults match the paper's real testbed shape: 20 servers with
        4 GPUs each form the 80-GPU cluster; the large-scale simulation
        uses 550 servers and 2474 GPUs.
        """
        base = capacity or DEFAULT_SERVER_CAPACITY
        per_device = base.gpu / base.gpu if base.gpu else 1.0  # 1.0 per device
        cap = ResourceVector(
            gpu=float(gpus_per_server) * per_device,
            cpu=base.cpu,
            mem=base.mem,
            bw=base.bw,
        )
        servers = [
            Server(server_id=i, capacity=cap, num_gpus=gpus_per_server)
            for i in range(num_servers)
        ]
        return cls(servers=servers)

    # -- lookup ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self.servers)

    def __iter__(self) -> Iterator[Server]:
        return iter(self.servers)

    def server(self, server_id: int) -> Server:
        """Return the server with the given id."""
        return self.servers[server_id]

    @property
    def total_gpus(self) -> int:
        """Total number of GPU devices across all servers."""
        return sum(s.num_gpus for s in self.servers)

    def total_capacity(self) -> ResourceVector:
        """Element-wise sum of every server's capacity."""
        total = ResourceVector.zeros()
        for server in self.servers:
            total = total + server.capacity
        return total

    def total_load(self) -> ResourceVector:
        """Element-wise sum of every server's current load."""
        total = ResourceVector.zeros()
        for server in self.servers:
            total = total + server.load
        return total

    # -- fault state (repro.faults) ----------------------------------------

    def healthy_servers(self) -> list[Server]:
        """Servers not currently marked failed by fault injection."""
        return [s for s in self.servers if not s.failed]

    def failed_servers(self) -> list[Server]:
        """Servers currently marked failed by fault injection."""
        return [s for s in self.servers if s.failed]

    # -- overload predicates (Sections 3.3.2 / 3.5) ------------------------

    def overloaded_servers(self, threshold: float) -> list[Server]:
        """Servers with any resource utilization above ``h_r``."""
        return [s for s in self.servers if s.is_overloaded(threshold)]

    def underloaded_servers(self, threshold: float) -> list[Server]:
        """Servers with every resource utilization at or below ``h_r``."""
        return [s for s in self.servers if not s.is_overloaded(threshold)]

    def cluster_utilization(self) -> list[ResourceVector]:
        """The paper's ``U_c``: the list of per-server utilization vectors."""
        return [s.utilization() for s in self.servers]

    def overload_degree(self) -> float:
        """``O_c`` — mean of per-server overload degrees (Section 3.5)."""
        if not self.servers:
            return 0.0
        return sum(s.overload_degree() for s in self.servers) / len(self.servers)

    def is_overloaded(self, threshold: float, queue_nonempty: bool = False) -> bool:
        """MLF-C's system-overload predicate.

        "The system is considered to be overloaded when there are tasks
        in the queue or when ``O_c > h_s``" (Section 3.5).
        """
        return queue_nonempty or self.overload_degree() > threshold

    # -- convenience -------------------------------------------------------

    def running_tasks(self) -> list["Task"]:
        """All tasks currently placed on any server."""
        tasks: list["Task"] = []
        for server in self.servers:
            tasks.extend(server.tasks())
        return tasks

    def find_task_server(self, task_id: str) -> Optional[Server]:
        """Locate the server hosting a task, or ``None``."""
        for server in self.servers:
            if any(t.task_id == task_id for t in server.tasks()):
                return server
        return None


def mean_utilization(servers: Iterable[Server]) -> ResourceVector:
    """Average utilization vector over a set of servers."""
    servers = list(servers)
    if not servers:
        return ResourceVector.zeros()
    total = ResourceVector.zeros()
    for server in servers:
        total = total + server.utilization()
    return total * (1.0 / len(servers))
