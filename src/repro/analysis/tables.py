"""Tabular result formatting — the benchmark harness's output layer.

Every figure of the paper is a set of series (one per scheduler) over a
sweep axis (number of jobs).  :class:`FigureSeries` accumulates those
series and renders the aligned text tables the benches print, so
paper-vs-measured comparisons in EXPERIMENTS.md can be regenerated
verbatim.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], precision: int = 3
) -> str:
    """Render an aligned monospace table."""

    def fmt(cell: object) -> str:
        if isinstance(cell, float):
            return f"{cell:.{precision}f}"
        return str(cell)

    text_rows = [[fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in text_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for row in text_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


@dataclass
class FigureSeries:
    """Series data for one paper figure.

    ``data[scheduler][x]`` = measured y value; the x axis is typically
    the number of jobs.
    """

    title: str
    x_label: str = "jobs"
    y_label: str = "value"
    data: dict[str, dict[float, float]] = field(default_factory=dict)

    def add(self, scheduler: str, x: float, y: float) -> None:
        """Record one measurement."""
        self.data.setdefault(scheduler, {})[x] = y

    def xs(self) -> list[float]:
        """Sorted union of x values across schedulers."""
        values: set[float] = set()
        for series in self.data.values():
            values.update(series)
        return sorted(values)

    def render(self, precision: int = 3) -> str:
        """The figure as an aligned table (schedulers × sweep points)."""
        xs = self.xs()
        headers = [f"{self.title} [{self.y_label}]"] + [
            f"{self.x_label}={_fmt_x(x)}" for x in xs
        ]
        rows = []
        for scheduler in self.data:
            row: list[object] = [scheduler]
            for x in xs:
                value = self.data[scheduler].get(x)
                row.append("-" if value is None else value)
            rows.append(row)
        return format_table(headers, rows, precision=precision)

    def ranking(self, x: float, ascending: bool = True) -> list[str]:
        """Schedulers ordered by their value at sweep point ``x``."""
        pairs = [
            (series[x], name) for name, series in self.data.items() if x in series
        ]
        pairs.sort(reverse=not ascending)
        return [name for _v, name in pairs]


def improvement(better: float, worse: float) -> float:
    """The paper's improvement metric ``(y - z) / z`` as a fraction.

    For "lower is better" metrics call with (worse_value, better_value)
    swapped accordingly by the caller; this is the raw ratio.
    """
    if worse == 0:
        return 0.0
    return (better - worse) / worse


def summary_rows(
    summaries: Mapping[str, Mapping[str, float]], keys: Sequence[str]
) -> list[list[object]]:
    """Rows of (scheduler, metric...) for :func:`format_table`."""
    rows: list[list[object]] = []
    for name, summary in summaries.items():
        rows.append([name] + [summary.get(k, float("nan")) for k in keys])
    return rows


def _fmt_x(x: float) -> str:
    return str(int(x)) if float(x).is_integer() else f"{x:g}"
