"""Result analysis: CDFs, percentiles, figure tables."""

from repro.analysis.report import (
    best_scheduler,
    improvement_over,
    render_report,
)
from repro.analysis.cdf import (
    cdf_at,
    empirical_cdf,
    log_spaced_points,
    percentile,
    percentile_sorted,
)
from repro.analysis.tables import (
    FigureSeries,
    format_table,
    improvement,
    summary_rows,
)
from repro.analysis.telemetry import (
    gateway_telemetry_paths,
    load_telemetry,
    render_gateway_report,
    render_telemetry_report,
    summary_table,
    telemetry_rows,
    telemetry_table,
)

__all__ = [
    "FigureSeries",
    "best_scheduler",
    "improvement_over",
    "render_report",
    "cdf_at",
    "empirical_cdf",
    "format_table",
    "gateway_telemetry_paths",
    "improvement",
    "load_telemetry",
    "log_spaced_points",
    "percentile",
    "percentile_sorted",
    "render_gateway_report",
    "render_telemetry_report",
    "summary_rows",
    "summary_table",
    "telemetry_rows",
    "telemetry_table",
]
