"""CDF and percentile utilities for result reporting."""

from __future__ import annotations

import math
from typing import Sequence


def empirical_cdf(values: Sequence[float]) -> list[tuple[float, float]]:
    """(value, cumulative fraction) pairs of the sorted sample."""
    ordered = sorted(values)
    n = len(ordered)
    return [(v, (i + 1) / n) for i, v in enumerate(ordered)]


def cdf_at(values: Sequence[float], points: Sequence[float]) -> list[float]:
    """CDF evaluated at the given points."""
    ordered = sorted(values)
    n = len(ordered)
    if n == 0:
        return [0.0 for _ in points]
    out = []
    for p in points:
        count = _bisect_right(ordered, p)
        out.append(count / n)
    return out


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile, ``q`` in [0, 100]."""
    if not values:
        raise ValueError("percentile of empty sequence")
    return percentile_sorted(sorted(values), q)


def percentile_sorted(ordered: Sequence[float], q: float) -> float:
    """:func:`percentile` over an already-sorted sequence (no re-sort).

    Callers that maintain a running sorted sample (e.g. the telemetry
    hot path) use this to skip the O(n log n) sort per query.
    """
    if not ordered:
        raise ValueError("percentile of empty sequence")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"q must be in [0, 100], got {q}")
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    low = int(math.floor(rank))
    high = int(math.ceil(rank))
    if low == high:
        return ordered[low]
    frac = rank - low
    lower, upper = ordered[low], ordered[high]
    # lower + delta*frac (not the two-product lerp): with equal endpoints
    # the two-product form can land an ulp outside [lower, upper], which
    # breaks the range guarantee; clamp to be safe for every rounding.
    return min(max(lower + (upper - lower) * frac, lower), upper)


def log_spaced_points(lo: float, hi: float, count: int = 20) -> list[float]:
    """Logarithmically spaced axis points (like the paper's JCT axes)."""
    if lo <= 0 or hi <= lo:
        raise ValueError("need 0 < lo < hi")
    if count < 2:
        raise ValueError("need at least 2 points")
    ratio = (hi / lo) ** (1.0 / (count - 1))
    return [lo * ratio**i for i in range(count)]


def _bisect_right(ordered: list[float], x: float) -> int:
    lo, hi = 0, len(ordered)
    while lo < hi:
        mid = (lo + hi) // 2
        if x < ordered[mid]:
            hi = mid
        else:
            lo = mid + 1
    return lo
