"""Markdown report generation for comparison runs.

Turns a ``{scheduler: SimulationResult}`` mapping (the output of
:func:`repro.sim.run_comparison`) into a self-contained Markdown report:
a headline table, per-metric rankings with the paper's improvement
ratio ``(y - z) / z``, and a JCT distribution section.
"""

from __future__ import annotations

from typing import Mapping

from repro.analysis.cdf import percentile
from repro.analysis.tables import format_table
from repro.sim.simulation import SimulationResult

#: Metrics where lower values are better.
LOWER_IS_BETTER = {
    "avg_jct_s",
    "makespan_s",
    "avg_wait_s",
    "bandwidth_gb",
    "overhead_ms",
}

#: Headline metrics in report order.
HEADLINE_METRICS = [
    "avg_jct_s",
    "makespan_s",
    "deadline_ratio",
    "avg_wait_s",
    "avg_accuracy",
    "accuracy_ratio",
    "bandwidth_gb",
    "overhead_ms",
]


def best_scheduler(
    results: Mapping[str, SimulationResult], metric: str
) -> tuple[str, float]:
    """The winning scheduler and its value on one metric."""
    pairs = [(name, r.summary()[metric]) for name, r in results.items()]
    if metric in LOWER_IS_BETTER:
        return min(pairs, key=lambda kv: kv[1])
    return max(pairs, key=lambda kv: kv[1])


def improvement_over(
    results: Mapping[str, SimulationResult],
    metric: str,
    subject: str,
    reference: str,
) -> float:
    """The paper's improvement ratio of ``subject`` over ``reference``.

    Positive = subject better, using the metric's direction.
    """
    s = results[subject].summary()[metric]
    r = results[reference].summary()[metric]
    if r == 0:
        return 0.0
    if metric in LOWER_IS_BETTER:
        return (r - s) / r
    return (s - r) / r


def render_report(
    results: Mapping[str, SimulationResult],
    title: str = "Scheduler comparison",
    reference: str | None = None,
) -> str:
    """Render the full Markdown report.

    ``reference`` names the baseline used for improvement lines
    (defaults to the worst scheduler by average JCT).
    """
    if not results:
        raise ValueError("no results to report")
    names = list(results)
    if reference is None:
        reference = max(names, key=lambda n: results[n].summary()["avg_jct_s"])
    if reference not in results:
        raise KeyError(f"unknown reference scheduler {reference!r}")

    lines = [f"# {title}", ""]

    # Headline table, sorted by average JCT.
    rows = sorted(
        (
            [name] + [round(results[name].summary()[m], 3) for m in HEADLINE_METRICS]
            for name in names
        ),
        key=lambda row: row[1],
    )
    lines.append("## Headline metrics")
    lines.append("")
    lines.append("```")
    lines.append(format_table(["scheduler"] + HEADLINE_METRICS, rows))
    lines.append("```")
    lines.append("")

    # Winners and improvements.
    lines.append(f"## Winners (improvement vs {reference})")
    lines.append("")
    for metric in HEADLINE_METRICS:
        winner, value = best_scheduler(results, metric)
        gain = improvement_over(results, metric, winner, reference)
        direction = "min" if metric in LOWER_IS_BETTER else "max"
        lines.append(
            f"- **{metric}** ({direction}): {winner} at {value:.3f}"
            f" ({gain:+.0%} vs {reference})"
        )
    lines.append("")

    # JCT distribution.
    lines.append("## JCT distribution (seconds)")
    lines.append("")
    dist_rows = []
    for name in names:
        jcts = [r.jct for r in results[name].metrics.job_records]
        if not jcts:
            continue
        dist_rows.append(
            [
                name,
                round(percentile(jcts, 50.0), 1),
                round(percentile(jcts, 90.0), 1),
                round(percentile(jcts, 99.0), 1),
                round(max(jcts), 1),
            ]
        )
    lines.append("```")
    lines.append(format_table(["scheduler", "p50", "p90", "p99", "max"], dist_rows))
    lines.append("```")
    lines.append("")
    return "\n".join(lines)
