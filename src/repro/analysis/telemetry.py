"""Service-telemetry analysis: turn JSONL round records into tables.

The daemon (:mod:`repro.service.telemetry`) emits one JSON record per
scheduler round.  This module renders those streams with the same
table/CDF tooling the batch benchmarks use, so online-service runs and
batch-simulation runs report through one pipeline.

Gateway runs leave one stream per partition
(``<workdir>/worker-NN/telemetry.jsonl``); :func:`render_gateway_report`
renders each partition's section plus a cluster rollup over all of them
— ``repro report <workdir>`` picks it automatically for directories.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Iterable, Sequence

from repro.analysis.tables import format_table

#: Columns of the per-round table, in display order.
ROUND_COLUMNS = (
    "round",
    "sim_time",
    "queue_depth",
    "admission_queue_depth",
    "active_jobs",
    "running_jobs",
    "overload_degree",
    "placements",
    "migrations",
    "evictions",
    "completions",
    "jct_p50",
    "jct_p95",
)


#: v2 (event-mode) records rename some v1 keys; the readers accept
#: both schemas by falling back through these aliases.
_COLUMN_ALIASES: dict[str, tuple[str, ...]] = {
    "round": ("pass_index",),
    "pass_index": ("round",),
}


def _column_value(record: dict[str, Any], column: str) -> object:
    value = record.get(column)
    if value is not None:
        return value
    for alias in _COLUMN_ALIASES.get(column, ()):
        value = record.get(alias)
        if value is not None:
            return value
    return 0


def telemetry_rows(
    records: Iterable[dict[str, Any]], columns: Sequence[str] = ROUND_COLUMNS
) -> list[list[object]]:
    """Per-round table rows (missing fields render as 0).

    Accepts both the v1 (``round``-keyed) and v2 (``pass_index``-keyed)
    telemetry schemas — the counters alias each other in either
    direction.
    """
    rows: list[list[object]] = []
    for record in records:
        rows.append([_column_value(record, column) for column in columns])
    return rows


def telemetry_table(
    records: Iterable[dict[str, Any]],
    columns: Sequence[str] = ROUND_COLUMNS,
    every: int = 1,
    precision: int = 2,
) -> str:
    """Render a telemetry stream as an aligned table.

    ``every`` subsamples long runs (keep one row in ``every``, always
    including the final row).
    """
    records = list(records)
    if every > 1 and records:
        kept = records[::every]
        if kept[-1] is not records[-1]:
            kept.append(records[-1])
        records = kept
    return format_table(list(columns), telemetry_rows(records, columns), precision)


def summary_table(summary: dict[str, float], precision: int = 2) -> str:
    """Render a :func:`repro.service.telemetry.summarize_telemetry` dict."""
    rows = [[key, value] for key, value in summary.items()]
    return format_table(["metric", "value"], rows, precision=precision)


def load_telemetry(path: str | Path) -> list[dict[str, Any]]:
    """Read a telemetry JSONL file (re-export for analysis callers)."""
    from repro.service.telemetry import read_telemetry

    return read_telemetry(path)


def render_telemetry_report(
    path: str | Path,
    every: int = 1,
    rounds: bool = True,
    precision: int = 2,
) -> str:
    """One self-contained report for a telemetry JSONL file.

    A summary table (JCT percentiles, deadline ratio, migration/eviction
    rates, peak overload) optionally preceded by the per-round table —
    the rendering behind ``repro report``.
    """
    from repro.service.telemetry import summarize_telemetry

    records = load_telemetry(path)
    if not records:
        return f"no telemetry records in {path}"
    sections: list[str] = []
    if rounds:
        sections.append(f"## Rounds ({len(records)} records)")
        sections.append(telemetry_table(records, every=every, precision=precision))
    sections.append("## Summary")
    sections.append(summary_table(summarize_telemetry(records), precision=precision))
    return "\n\n".join(sections)


#: Per-partition summary fields that sum across the cluster; the rest
#: (percentiles, ratios, depths) roll up as the max over partitions.
_ROLLUP_SUMS = (
    "rounds",
    "jobs_completed",
    "placements",
    "migrations",
    "evictions",
    "stops",
    "bandwidth_gb",
)


def gateway_telemetry_paths(workdir: str | Path) -> dict[str, Path]:
    """``{partition name: telemetry path}`` under a gateway workdir."""
    root = Path(workdir)
    return {
        worker.name: worker / "telemetry.jsonl"
        for worker in sorted(root.glob("worker-*"))
        if (worker / "telemetry.jsonl").is_file()
    }


def render_gateway_report(
    workdir: str | Path,
    every: int = 1,
    rounds: bool = True,
    precision: int = 2,
) -> str:
    """A multi-worker report over a gateway telemetry directory.

    One section per partition (its own rounds/summary tables) followed
    by a cluster rollup: additive aggregates summed across partitions,
    peaks (queue depth, overload, JCT percentiles) as the per-partition
    maximum.  Raises ``FileNotFoundError`` when the directory holds no
    ``worker-*/telemetry.jsonl`` streams.
    """
    from repro.service.telemetry import summarize_telemetry

    streams = gateway_telemetry_paths(workdir)
    if not streams:
        raise FileNotFoundError(
            f"no worker-*/telemetry.jsonl streams under {workdir}"
        )
    sections: list[str] = [f"# Gateway telemetry: {workdir}"]
    summaries: dict[str, dict[str, float]] = {}
    for name, path in streams.items():
        records = load_telemetry(path)
        sections.append(f"## Partition {name} ({len(records)} records)")
        if not records:
            sections.append("(no telemetry records)")
            continue
        if rounds:
            sections.append(
                telemetry_table(records, every=every, precision=precision)
            )
        summaries[name] = summarize_telemetry(records)
        sections.append(summary_table(summaries[name], precision=precision))
    if summaries:
        rollup: dict[str, float] = {"partitions": float(len(summaries))}
        keys: list[str] = []
        for summary in summaries.values():
            keys.extend(k for k in summary if k not in keys)
        for key in keys:
            values = [s[key] for s in summaries.values() if key in s]
            aggregate = sum(values) if key in _ROLLUP_SUMS else max(values)
            rollup[key] = float(aggregate)
        sections.append("## Cluster rollup")
        sections.append(summary_table(rollup, precision=precision))
    return "\n\n".join(sections)
