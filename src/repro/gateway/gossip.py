"""Cluster-wide occupancy gossip across scheduler partitions.

Each worker daemon knows only its own cluster's overload degree
``O_c``; the paper's admission rule (queue/reject while ``O_c > h_s``,
Section 3.5) is *global*.  The gateway closes that gap with a small
occupancy board:

* every forwarded submission's response carries the worker's smoothed
  ``O_c`` — traffic itself gossips occupancy, deterministically (the
  board state is a pure function of the submission trace);
* a periodic poll loop additionally refreshes idle partitions and
  doubles as the health check (liveness + round-trip latency feed the
  ``repro ctl workers`` verb and the obs gauges).

:class:`GlobalAdmission` then applies the paper's predicate to the
aggregated view: the cluster-wide ``O_c`` is the server-count-weighted
mean of the per-partition degrees (with homogeneous workers this is
exactly what a single cluster of the union of servers would report),
smoothed through the same :class:`~repro.core.overload.OverloadTracker`
EWMA the per-worker admission controller uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Optional

from repro.core.overload import OverloadTracker
from repro.service.admission import AdmissionDecision

__all__ = ["GlobalAdmission", "OccupancyBoard", "PartitionSample"]


@dataclass
class PartitionSample:
    """The last-known occupancy of one partition."""

    partition: int
    overload_degree: float = 0.0
    active_jobs: int = 0
    queue_depth: int = 0
    admission_queue_depth: int = 0
    alive: bool = True
    rtt_ms: float = 0.0
    #: Monotone update counter (how fresh this sample is, without
    #: touching the wall clock).
    seq: int = 0

    def as_dict(self) -> dict[str, Any]:
        """JSON-ready representation."""
        return {
            "partition": self.partition,
            "overload_degree": self.overload_degree,
            "active_jobs": self.active_jobs,
            "queue_depth": self.queue_depth,
            "admission_queue_depth": self.admission_queue_depth,
            "alive": self.alive,
            "rtt_ms": self.rtt_ms,
            "seq": self.seq,
        }


@dataclass
class OccupancyBoard:
    """Per-partition occupancy samples plus cluster-wide aggregation."""

    partitions: dict[int, PartitionSample] = field(default_factory=dict)

    @classmethod
    def for_partitions(cls, partitions: Iterable[int]) -> "OccupancyBoard":
        """A board with one empty sample per partition."""
        return cls({p: PartitionSample(partition=p) for p in partitions})

    def update(
        self,
        partition: int,
        *,
        overload_degree: Optional[float] = None,
        active_jobs: Optional[int] = None,
        queue_depth: Optional[int] = None,
        admission_queue_depth: Optional[int] = None,
        rtt_ms: Optional[float] = None,
    ) -> PartitionSample:
        """Fold one observation into a partition's sample."""
        sample = self.partitions.setdefault(
            partition, PartitionSample(partition=partition)
        )
        if overload_degree is not None:
            sample.overload_degree = float(overload_degree)
        if active_jobs is not None:
            sample.active_jobs = int(active_jobs)
        if queue_depth is not None:
            sample.queue_depth = int(queue_depth)
        if admission_queue_depth is not None:
            sample.admission_queue_depth = int(admission_queue_depth)
        if rtt_ms is not None:
            sample.rtt_ms = float(rtt_ms)
        sample.alive = True
        sample.seq += 1
        return sample

    def mark_down(self, partition: int) -> None:
        """Record that a partition stopped answering."""
        sample = self.partitions.setdefault(
            partition, PartitionSample(partition=partition)
        )
        sample.alive = False
        sample.seq += 1

    # -- aggregation -------------------------------------------------------

    def cluster_overload(self) -> float:
        """Cluster-wide ``O_c``: the mean over live partitions.

        Partitions are homogeneous (same server count), so the mean of
        the per-partition degrees equals the degree one cluster of all
        the servers would report.  An empty/dead board reads 0.0.
        """
        live = [s.overload_degree for s in self.partitions.values() if s.alive]
        if not live:
            return 0.0
        return sum(live) / len(live)

    def totals(self) -> dict[str, int]:
        """Sums of the additive per-partition quantities."""
        return {
            "active_jobs": sum(s.active_jobs for s in self.partitions.values()),
            "queue_depth": sum(s.queue_depth for s in self.partitions.values()),
            "admission_queue_depth": sum(
                s.admission_queue_depth for s in self.partitions.values()
            ),
            "partitions_alive": sum(
                1 for s in self.partitions.values() if s.alive
            ),
            "partitions_total": len(self.partitions),
        }

    def snapshot(self) -> dict[str, Any]:
        """The whole board, JSON-ready (``gossip``/``metrics`` verbs)."""
        return {
            "partitions": {
                str(p): s.as_dict() for p, s in sorted(self.partitions.items())
            },
            "cluster": {
                "overload_degree": self.cluster_overload(),
                **self.totals(),
            },
        }


@dataclass
class GlobalAdmission:
    """The paper's ``O_c > h_s`` gate applied at the gateway door.

    ``threshold=None`` disables the door entirely (each worker still
    enforces its local gate); otherwise submissions arriving while the
    smoothed cluster-wide overload exceeds ``h_s`` are rejected at the
    front tier, before any forwarding.  The gateway has no admission
    queue of its own — parked work lives in the per-worker queues — so
    the only door policy is reject (back-pressure toward the client).
    """

    threshold: Optional[float] = None
    alpha: float = 0.5
    tracker: OverloadTracker = field(init=False)

    def __post_init__(self) -> None:
        self.tracker = OverloadTracker(alpha=self.alpha)

    def check(self, board: OccupancyBoard) -> AdmissionDecision:
        """Admit or reject a submission arriving right now."""
        if self.threshold is None:
            return AdmissionDecision.ADMIT
        self.tracker.observe(board.cluster_overload())
        if self.tracker.exceeds(self.threshold):
            return AdmissionDecision.REJECT
        return AdmissionDecision.ADMIT
