"""Worker lifecycle: spawn, health-check, restart, stop N daemons.

The supervisor owns one :class:`~repro.service.daemon.ServiceConfig`
per partition and materializes each as a scheduler daemon in one of two
spawn modes:

* ``"process"`` — a real ``python -m repro serve`` subprocess per
  partition (the production shape: isolation, true parallelism across
  cores, stdout/stderr captured to ``worker.log`` in the partition's
  work directory);
* ``"thread"`` — an in-process
  :class:`~repro.service.daemon.ThreadedDaemon` per partition (tests
  and demos: no fork cost, same wire protocol over the same sockets).

Readiness is probed through the normal client with its bounded
connect-retry/backoff — no sleep-and-hope loops — and shutdown goes
through the protocol's ``shutdown`` verb first (so workers flush
telemetry and snapshot) before falling back to SIGTERM/kill.
"""

from __future__ import annotations

import os
import subprocess
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO, Any, Optional, Sequence

import repro
from repro.service.client import ServiceClient, ServiceError
from repro.service.daemon import ServiceConfig, ThreadedDaemon

__all__ = ["GatewayError", "WorkerHandle", "WorkerSupervisor"]


class GatewayError(RuntimeError):
    """A worker failed to start, answer, or stop."""


def _worker_argv(config: ServiceConfig) -> list[str]:
    """The ``repro serve`` command line equivalent to ``config``."""
    argv = [
        sys.executable,
        "-m",
        "repro",
        "serve",
        "--socket",
        config.socket_path,
        "--scheduler",
        config.scheduler,
        "--servers",
        str(config.servers),
        "--gpus-per-server",
        str(config.gpus_per_server),
        "--tick-seconds",
        str(config.tick_seconds),
        "--seed",
        str(config.seed),
        "--round-interval",
        str(config.round_interval),
        "--admission-policy",
        config.admission_policy,
        "--admission-threshold",
        str(config.admission_threshold),
        "--telemetry-obs",
        config.telemetry_obs,
    ]
    if config.telemetry_path:
        argv += ["--telemetry", config.telemetry_path]
    if config.trace_path:
        argv += ["--trace", config.trace_path]
    if config.snapshot_dir:
        argv += ["--snapshot-dir", config.snapshot_dir, "--snapshot-every", str(config.snapshot_every)]
    if config.faults_path:
        argv += ["--faults", config.faults_path]
    return argv


def _worker_env() -> dict[str, str]:
    """Subprocess env with the repro package importable."""
    env = dict(os.environ)
    src_root = str(Path(repro.__file__).resolve().parent.parent)
    existing = env.get("PYTHONPATH", "")
    if src_root not in existing.split(os.pathsep):
        env["PYTHONPATH"] = (
            src_root + (os.pathsep + existing if existing else "")
        )
    return env


@dataclass
class WorkerHandle:
    """One partition's daemon: its config plus the live process/thread."""

    partition: int
    config: ServiceConfig
    process: Optional[subprocess.Popen] = None
    threaded: Optional[ThreadedDaemon] = None
    log_handle: Optional[IO[bytes]] = field(default=None, repr=False)
    restarts: int = 0
    exit_code: Optional[int] = None

    def alive(self) -> bool:
        """Whether the daemon's process/thread is still running."""
        if self.process is not None:
            return self.process.poll() is None
        if self.threaded is not None:
            thread = self.threaded._thread
            return thread is not None and thread.is_alive()
        return False

    def log_tail(self, lines: int = 20) -> str:
        """The last lines of the worker's log (process mode only)."""
        log_path = Path(self.config.socket_path).parent / "worker.log"
        try:
            content = log_path.read_text(errors="replace").splitlines()
        except OSError:
            return ""
        return "\n".join(content[-lines:])


class WorkerSupervisor:
    """Starts, health-checks, restarts and stops the partition daemons."""

    def __init__(
        self,
        configs: Sequence[ServiceConfig],
        spawn: str = "process",
        ready_timeout: float = 30.0,
        restart_limit: int = 3,
    ) -> None:
        if spawn not in {"process", "thread"}:
            raise ValueError(f"unknown spawn mode {spawn!r}")
        if not configs:
            raise ValueError("supervisor needs at least one worker config")
        self.spawn = spawn
        self.ready_timeout = ready_timeout
        self.restart_limit = restart_limit
        self.handles = [
            WorkerHandle(partition=index, config=config)
            for index, config in enumerate(configs)
        ]
        self._started = False

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Spawn every worker, then wait until each answers ping."""
        for handle in self.handles:
            self._spawn(handle)
        for handle in self.handles:
            self._wait_ready(handle)
        self._started = True

    def _spawn(self, handle: WorkerHandle) -> None:
        workdir = Path(handle.config.socket_path).parent
        workdir.mkdir(parents=True, exist_ok=True)
        handle.exit_code = None
        if self.spawn == "process":
            log = (workdir / "worker.log").open("ab")
            handle.log_handle = log
            handle.process = subprocess.Popen(
                _worker_argv(handle.config),
                stdout=log,
                stderr=subprocess.STDOUT,
                env=_worker_env(),
            )
        else:
            handle.threaded = ThreadedDaemon(handle.config)
            handle.threaded.__enter__()

    def _wait_ready(self, handle: WorkerHandle) -> None:
        """Block until the worker answers ping (bounded retry/backoff)."""
        client = ServiceClient(
            handle.config.socket_path,
            timeout=5.0,
            connect_retries=40,
            connect_backoff=0.02,
            connect_backoff_cap=self.ready_timeout / 10.0,
        )
        try:
            with client:
                client.ping()
        except (OSError, ServiceError) as exc:
            tail = handle.log_tail()
            detail = f"\n--- worker.log tail ---\n{tail}" if tail else ""
            raise GatewayError(
                f"partition {handle.partition} did not become ready: {exc}{detail}"
            ) from exc

    def restart(self, partition: int) -> WorkerHandle:
        """Respawn one partition's daemon and wait for readiness."""
        handle = self.handle(partition)
        if handle.restarts >= self.restart_limit:
            raise GatewayError(
                f"partition {partition} exceeded restart limit"
                f" ({self.restart_limit})"
            )
        self._stop_one(handle, graceful=False)
        handle.restarts += 1
        self._spawn(handle)
        self._wait_ready(handle)
        return handle

    def stop(self) -> None:
        """Stop every worker: shutdown verb first, then terminate/kill."""
        for handle in self.handles:
            self._stop_one(handle, graceful=True)

    def _stop_one(self, handle: WorkerHandle, graceful: bool) -> None:
        if graceful and handle.alive():
            try:
                with ServiceClient(
                    handle.config.socket_path, timeout=5.0, connect_retries=0
                ) as client:
                    client.shutdown()
            except (OSError, ServiceError):
                pass  # fall through to terminate/kill below
        if handle.process is not None:
            try:
                handle.exit_code = handle.process.wait(timeout=10.0)
            except subprocess.TimeoutExpired:
                handle.process.terminate()
                try:
                    handle.exit_code = handle.process.wait(timeout=5.0)
                except subprocess.TimeoutExpired:
                    handle.process.kill()
                    handle.exit_code = handle.process.wait(timeout=5.0)
            handle.process = None
            if handle.log_handle is not None:
                handle.log_handle.close()
                handle.log_handle = None
        if handle.threaded is not None:
            handle.threaded.__exit__(None, None, None)
            handle.exit_code = 0
            handle.threaded = None

    # -- inspection --------------------------------------------------------

    def handle(self, partition: int) -> WorkerHandle:
        """The handle of one partition."""
        try:
            return self.handles[partition]
        except IndexError:
            raise GatewayError(f"no partition {partition}") from None

    def exit_codes(self) -> dict[int, Optional[int]]:
        """Partition → recorded exit code (clean-shutdown assertions)."""
        return {h.partition: h.exit_code for h in self.handles}

    def statuses(self) -> list[dict[str, Any]]:
        """One liveness row per partition (the ``workers`` verb)."""
        return [
            {
                "partition": h.partition,
                "alive": h.alive(),
                "restarts": h.restarts,
                "spawn": self.spawn,
                "socket": h.config.socket_path,
                "exit_code": h.exit_code,
            }
            for h in self.handles
        ]


def worker_service_configs(
    workers: int,
    workdir: str | Path,
    *,
    scheduler: str = "MLF-H",
    servers_per_worker: int = 4,
    gpus_per_server: int = 4,
    tick_seconds: float = 60.0,
    seed: int = 0,
    round_interval: float = 1.0,
    admission_policy: str = "queue",
    admission_threshold: float = 0.90,
    telemetry: bool = True,
    telemetry_obs: str = "deterministic",
    trace: bool = False,
) -> list[ServiceConfig]:
    """One :class:`ServiceConfig` per partition under ``workdir``.

    Partition ``i`` gets ``workdir/worker-i/`` (socket, telemetry, log)
    and the derived seed ``seed + i`` — deterministic but distinct, so
    same-config gateways spawn bit-identical partitions.
    """
    if workers < 1:
        raise ValueError("need at least one worker")
    configs = []
    for partition in range(workers):
        wdir = Path(workdir) / f"worker-{partition:02d}"
        configs.append(
            ServiceConfig(
                socket_path=str(wdir / "worker.sock"),
                scheduler=scheduler,
                servers=servers_per_worker,
                gpus_per_server=gpus_per_server,
                tick_seconds=tick_seconds,
                seed=seed + partition,
                admission_policy=admission_policy,
                admission_threshold=admission_threshold,
                telemetry_path=str(wdir / "telemetry.jsonl") if telemetry else None,
                trace_path=str(wdir / "trace.json") if trace else None,
                round_interval=round_interval,
                telemetry_obs=telemetry_obs,
            )
        )
    return configs
