"""Sharded multi-tenant front tier over N scheduler daemons.

The gateway is the missing production layer between clients and the
online scheduler service: one ingress process that partitions the
cluster across N :mod:`repro.service` daemons it spawns and supervises,
while clients keep speaking the exact same NDJSON protocol they already
speak to a single daemon.

* :mod:`repro.gateway.ring` — seeded consistent-hash routing of tenants
  to partitions with minimal key movement on membership change;
* :mod:`repro.gateway.gossip` — the cluster-wide occupancy board and
  the paper's global ``O_c > h_s`` admission gate at the door;
* :mod:`repro.gateway.supervisor` — worker lifecycle (spawn, readiness,
  restart, graceful stop) in process or thread mode;
* :mod:`repro.gateway.server` — the asyncio gateway daemon: TCP/Unix
  listeners, batch fan-out, aggregation, health/gossip loop;
* :mod:`repro.gateway.loadgen` — the deterministic load generator
  behind ``benchmarks/bench_gateway.py``.

See DESIGN.md §12 for the partitioning model and the determinism
contract.
"""

from repro.gateway.gossip import GlobalAdmission, OccupancyBoard, PartitionSample
from repro.gateway.ring import HashRing, RingConfig
from repro.gateway.server import (
    GatewayConfig,
    GatewayDaemon,
    ThreadedGateway,
    build_supervisor,
    run_gateway,
)
from repro.gateway.supervisor import (
    GatewayError,
    WorkerHandle,
    WorkerSupervisor,
    worker_service_configs,
)
from repro.gateway.loadgen import generate_payloads, run_loadgen

__all__ = [
    "GatewayConfig",
    "GatewayDaemon",
    "GatewayError",
    "GlobalAdmission",
    "HashRing",
    "OccupancyBoard",
    "PartitionSample",
    "RingConfig",
    "ThreadedGateway",
    "WorkerHandle",
    "WorkerSupervisor",
    "build_supervisor",
    "generate_payloads",
    "run_gateway",
    "run_loadgen",
    "worker_service_configs",
]
