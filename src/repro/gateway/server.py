"""The gateway daemon: a sharded multi-tenant front tier.

One asyncio process owns client-facing ingress — a TCP listener and/or
a Unix socket, both speaking the same NDJSON protocol as the workers —
and fans submissions out to N scheduler daemons it supervises:

* routing: the consistent-hash ring (:mod:`repro.gateway.ring`) maps
  each submission's tenant (or job id) to a partition;
* admission: the optional global ``O_c > h_s`` gate
  (:class:`~repro.gateway.gossip.GlobalAdmission`) runs at the door,
  fed by occupancy gossiped back on every worker response and by the
  periodic poll loop;
* batching: ``submit_batch`` splits a client batch by partition and
  forwards one pipelined ``submit_batch`` per worker, concurrently —
  the unit of front-tier throughput;
* aggregation: ``status``/``metrics`` merge per-partition views into a
  cluster-wide one (sums for additive quantities, the mean for
  ``O_c``), ``step``/``drain`` fan out to every worker;
* supervision: the poll loop doubles as the health checker, marking
  dead partitions down and (in process spawn mode) restarting them.

Distributed tracing: with ``trace=True`` the gateway records its own
spans (``gateway.submit``/``gateway.submit_batch``/``gateway.forward``)
into a local :class:`~repro.obs.tracing.Tracer`, stamps forwarded
payloads with deterministic per-submission trace IDs
(:mod:`repro.obs.tracectx`), and answers ``trace_dump`` by fanning out
to every worker and merging the per-process span dumps into one
Chrome-trace document with a lane per process
(:mod:`repro.obs.distributed`).  ``metrics_text`` likewise merges every
worker's Prometheus exposure with the gateway's own, each sample tagged
``worker="<partition>"``.

Determinism contract: with the round loop and poll loop quiesced
(``round_interval=0``, ``gossip_interval=0``) the same seed + ring
config + submission trace produces bit-identical per-worker telemetry
across gateway runs — routing is seeded SHA-256, worker seeds derive
from the base seed, gateway job-id assignment is a deterministic
counter, and occupancy gossip rides on responses in submission order.
"""

from __future__ import annotations

import asyncio
import contextlib
import signal
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Optional

from repro.gateway.gossip import GlobalAdmission, OccupancyBoard
from repro.gateway.ring import HashRing
from repro.gateway.supervisor import (
    GatewayError,
    WorkerSupervisor,
    worker_service_configs,
)
from repro.obs.distributed import ProcessTrace, merge_chrome_traces
from repro.obs.metrics import LATENCY_BUCKETS, MetricsRegistry
from repro.obs.promtext import merge_metrics_text
from repro.obs.tracectx import TraceContext, derive_span_id, derive_trace_id
from repro.obs.tracing import NullTracer, Tracer
from repro.service.admission import AdmissionDecision
from repro.service.protocol import (
    STREAM_LIMIT,
    JobSpec,
    ProtocolError,
    Request,
    Response,
    encode_line,
    decode_line,
    parse_request,
)

__all__ = ["GatewayConfig", "GatewayDaemon", "ThreadedGateway", "run_gateway"]


@dataclass(frozen=True)
class GatewayConfig:
    """Gateway parameterization (CLI flags map 1:1 onto these)."""

    #: TCP listen address (``host:port``; port 0 binds an ephemeral
    #: port, reported via :attr:`GatewayDaemon.bound_port`).  ``None``
    #: disables the TCP listener.
    listen: Optional[str] = "127.0.0.1:0"
    #: Gateway's own Unix socket (``repro ctl`` convenience); ``None``
    #: disables it.
    socket_path: Optional[str] = None
    workers: int = 2
    ring_replicas: int = 64
    ring_seed: int = 0
    scheduler: str = "MLF-H"
    servers_per_worker: int = 4
    gpus_per_server: int = 4
    tick_seconds: float = 60.0
    seed: int = 0
    #: Real seconds between worker scheduler rounds (0 = rounds only on
    #: explicit ``step``/``drain`` — the deterministic mode).
    round_interval: float = 1.0
    #: Worker-local admission policy/threshold (the paper's per-shard
    #: gate).
    admission_policy: str = "queue"
    admission_threshold: float = 0.90
    #: Global door threshold over the gossiped cluster-wide ``O_c``;
    #: ``None`` leaves admission entirely to the workers.
    global_threshold: Optional[float] = None
    global_alpha: float = 0.5
    #: Real seconds between occupancy/health polls (0 disables; the
    #: ``gossip`` verb still polls on demand).
    gossip_interval: float = 1.0
    request_timeout: float = 30.0
    drain_timeout: float = 600.0
    workdir: str = "gateway-run"
    spawn: str = "process"
    telemetry: bool = True
    telemetry_obs: str = "deterministic"
    restart_limit: int = 3
    #: Record gateway spans and enable per-worker tracing (each worker
    #: gets a ``trace.json`` in its workdir and answers ``trace_dump``).
    trace: bool = False


def _parse_listen(listen: str) -> tuple[str, int]:
    host, _, port = listen.rpartition(":")
    if not host or not port.isdigit():
        raise ValueError(f"bad listen address {listen!r}; want host:port")
    return host, int(port)


class WorkerLink:
    """One persistent NDJSON connection from the gateway to a worker."""

    def __init__(self, partition: int, socket_path: str, timeout: float) -> None:
        self.partition = partition
        self.socket_path = socket_path
        self.timeout = timeout
        self.reader: Optional[asyncio.StreamReader] = None
        self.writer: Optional[asyncio.StreamWriter] = None
        self.lock = asyncio.Lock()
        self.up = False

    async def _connect(self) -> None:
        if self.writer is not None:
            return
        self.reader, self.writer = await asyncio.open_unix_connection(
            self.socket_path, limit=STREAM_LIMIT
        )
        self.up = True

    async def close(self) -> None:
        """Drop the connection (it reopens lazily on the next request)."""
        if self.writer is not None:
            self.writer.close()
            with contextlib.suppress(Exception):
                await self.writer.wait_closed()
        self.reader = None
        self.writer = None
        self.up = False

    async def request(
        self, body: dict[str, Any], timeout: Optional[float] = None
    ) -> dict[str, Any]:
        """One request/response round trip, serialized per worker."""
        timeout = self.timeout if timeout is None else timeout
        async with self.lock:
            try:
                await asyncio.wait_for(self._connect(), timeout)
                assert self.reader is not None and self.writer is not None
                self.writer.write(encode_line(body))
                await self.writer.drain()
                line = await asyncio.wait_for(self.reader.readline(), timeout)
            except Exception:
                await self.close()
                raise
            if not line:
                await self.close()
                raise ConnectionError(
                    f"partition {self.partition} closed the connection"
                )
        return decode_line(line)


class GatewayDaemon:
    """Asyncio shell: listeners + router + gossip/health loop."""

    def __init__(self, config: GatewayConfig, supervisor: WorkerSupervisor) -> None:
        self.config = config
        self.supervisor = supervisor
        self.ring = HashRing(
            range(config.workers),
            replicas=config.ring_replicas,
            seed=config.ring_seed,
        )
        self.board = OccupancyBoard.for_partitions(range(config.workers))
        self.door = GlobalAdmission(
            threshold=config.global_threshold, alpha=config.global_alpha
        )
        self.links = {
            handle.partition: WorkerLink(
                handle.partition, handle.config.socket_path, config.request_timeout
            )
            for handle in supervisor.handles
        }
        #: job_id -> partition, for routing ``status``/``cancel``/
        #: ``history`` on jobs keyed by tenant.
        self._route: dict[str, int] = {}
        self._seq = 0
        self._batches = 0
        self.tracer: Tracer | NullTracer = (
            Tracer() if config.trace else NullTracer()
        )
        #: perf_counter origin for the gateway's own span timestamps.
        self.trace_epoch = time.perf_counter()
        self._submitted_per_partition = {
            p: 0 for p in range(config.workers)
        }
        self._servers: list[asyncio.AbstractServer] = []
        self._gossip_task: Optional[asyncio.Task] = None
        self._client_tasks: set[asyncio.Task] = set()
        self._restarting: set[int] = set()
        self._stop = asyncio.Event()
        self.bound_port: Optional[int] = None
        self._register_metrics()

    def _register_metrics(self) -> None:
        self.registry = MetricsRegistry()
        self._submissions_total = self.registry.counter(
            "gateway_submissions_total",
            "Submissions through the gateway, by admission outcome.",
            labels=("outcome",),
        )
        self._batches_total = self.registry.counter(
            "gateway_batches_total",
            "submit_batch requests accepted by the gateway.",
        )
        self._forward_errors_total = self.registry.counter(
            "gateway_forward_errors_total",
            "Submissions that failed to reach their partition.",
        )
        self._restarts_total = self.registry.counter(
            "gateway_worker_restarts_total",
            "Worker daemons respawned by the supervisor.",
        )
        self._admission_seconds = self.registry.histogram(
            "gateway_admission_seconds",
            "Wall-clock latency of one forwarded admission round trip.",
            buckets=LATENCY_BUCKETS,
        )
        self._partition_overload = self.registry.gauge(
            "gateway_partition_overload",
            "Last gossiped per-partition overload degree O_c.",
            labels=("partition",),
        )
        self._cluster_overload = self.registry.gauge(
            "gateway_cluster_overload",
            "Cluster-wide overload degree aggregated over partitions.",
        )
        self._worker_up = self.registry.gauge(
            "gateway_worker_up",
            "Worker liveness as seen by the health poll (1 = answering).",
            labels=("partition",),
        )
        self._worker_rtt_ms = self.registry.gauge(
            "gateway_worker_rtt_ms",
            "Round-trip latency of the last health ping, milliseconds.",
            labels=("partition",),
        )

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        """Bind the listeners and start the gossip/health loop."""
        if self.config.listen:
            host, port = _parse_listen(self.config.listen)
            server = await asyncio.start_server(
                self._handle_client, host=host, port=port, limit=STREAM_LIMIT
            )
            self.bound_port = server.sockets[0].getsockname()[1]
            self._servers.append(server)
        if self.config.socket_path:
            socket_path = Path(self.config.socket_path)
            with contextlib.suppress(FileNotFoundError):
                socket_path.unlink()
            socket_path.parent.mkdir(parents=True, exist_ok=True)
            server = await asyncio.start_unix_server(
                self._handle_client, path=str(socket_path), limit=STREAM_LIMIT
            )
            self._servers.append(server)
        if not self._servers:
            raise GatewayError("gateway needs a TCP listen address or a socket path")
        if self.config.gossip_interval > 0:
            self._gossip_task = asyncio.create_task(self._gossip_loop())

    async def serve_forever(self) -> None:
        """Run until a ``shutdown`` request (or task cancellation)."""
        await self.start()
        try:
            await self._stop.wait()
        finally:
            await self.stop()

    async def stop(self) -> None:
        """Tear down listeners, links, loops, then the workers."""
        self._stop.set()
        if self._gossip_task is not None:
            self._gossip_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._gossip_task
            self._gossip_task = None
        for server in self._servers:
            server.close()
            await server.wait_closed()
        self._servers.clear()
        for task in list(self._client_tasks):
            task.cancel()
        if self._client_tasks:
            await asyncio.gather(*self._client_tasks, return_exceptions=True)
            self._client_tasks.clear()
        for link in self.links.values():
            await link.close()
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, self.supervisor.stop)
        if self.config.socket_path:
            with contextlib.suppress(FileNotFoundError):
                Path(self.config.socket_path).unlink()

    # -- gossip / health ---------------------------------------------------

    async def _gossip_loop(self) -> None:
        while not self._stop.is_set():
            await asyncio.sleep(self.config.gossip_interval)
            with contextlib.suppress(asyncio.CancelledError):
                await self.poll_once()

    async def poll_once(self) -> dict[str, Any]:
        """One occupancy/health pass over every partition."""
        poll_timeout = min(5.0, self.config.request_timeout)
        for partition, link in self.links.items():
            label = str(partition)
            start = time.perf_counter()
            try:
                reply = await link.request({"op": "metrics"}, timeout=poll_timeout)
                rtt_ms = (time.perf_counter() - start) * 1000.0
                if not reply.get("ok"):
                    raise ConnectionError(reply.get("error", "metrics failed"))
                metrics = reply.get("result", {})
            except (OSError, ConnectionError, asyncio.TimeoutError, ProtocolError):
                self.board.mark_down(partition)
                self._worker_up.labels(label).set(0.0)
                await self._maybe_restart(partition)
                continue
            self.board.update(
                partition,
                overload_degree=metrics.get("overload_degree", 0.0),
                active_jobs=metrics.get("active_jobs", 0),
                queue_depth=metrics.get("queue_depth", 0),
                admission_queue_depth=metrics.get("admission_queue_depth", 0),
                rtt_ms=rtt_ms,
            )
            self._worker_up.labels(label).set(1.0)
            self._worker_rtt_ms.labels(label).set(rtt_ms)
            self._partition_overload.labels(label).set(
                float(metrics.get("overload_degree", 0.0))
            )
        self._cluster_overload.set(self.board.cluster_overload())
        return self.board.snapshot()

    async def _maybe_restart(self, partition: int) -> None:
        """Respawn a dead worker (process mode) off the event loop."""
        handle = self.supervisor.handle(partition)
        if (
            self.supervisor.spawn != "process"
            or handle.alive()
            or partition in self._restarting
            or handle.restarts >= self.supervisor.restart_limit
        ):
            return
        self._restarting.add(partition)
        try:
            loop = asyncio.get_running_loop()
            await loop.run_in_executor(None, self.supervisor.restart, partition)
            self._restarts_total.inc()
            await self.links[partition].close()  # reconnect to the new socket
        except GatewayError:
            pass  # the next poll keeps the partition marked down
        finally:
            self._restarting.discard(partition)

    # -- submission routing ------------------------------------------------

    def _assign(self, payload: dict[str, Any]) -> tuple[dict[str, Any], str, int]:
        """Give the payload a job id, a trace id, and pick its partition.

        The trace id is a pure function of ``(seed, tenant, submission
        index)`` — same seed + submission stream, same ids, in line
        with the determinism contract above — and only assigned when
        tracing is on and the client did not send one.
        """
        index = self._seq
        job_id = payload.get("job_id")
        if not job_id:
            job_id = f"gw-{index:07d}"
            payload["job_id"] = job_id
        self._seq += 1
        key = str(payload.get("tenant") or job_id)
        if self.tracer.enabled and not payload.get("trace_id"):
            payload["trace_id"] = derive_trace_id(self.config.seed, key, index)
        return payload, job_id, self.ring.lookup(key)

    def _door_reject(self, job_id: str, partition: int) -> dict[str, Any]:
        self._submissions_total.labels("rejected").inc()
        return {
            "job_id": job_id,
            "status": "rejected",
            "reason": "cluster_overloaded",
            "partition": partition,
            "overload_degree": self.door.tracker.value,
        }

    def _record_outcome(self, partition: int, result: dict[str, Any]) -> None:
        status = result.get("status", "error")
        self._submissions_total.labels(status).inc()
        if status in {"admitted", "queued"}:
            self._route[result["job_id"]] = partition
            self._submitted_per_partition[partition] += 1
        if "overload_degree" in result:
            # Traffic-driven gossip: every response refreshes the board.
            self.board.update(partition, overload_degree=result["overload_degree"])

    async def _submit_one(
        self, params: dict[str, Any], trace: Optional[dict[str, Any]] = None
    ) -> dict[str, Any]:
        spec = JobSpec.from_payload(params)  # validate before routing
        payload, job_id, partition = self._assign(spec.to_payload())
        if self.door.check(self.board) is AdmissionDecision.REJECT:
            return self._door_reject(job_id, partition)
        if self.tracer.enabled and payload.get("trace_id"):
            # The gateway span joins the submission's trace: parented
            # under the caller's span, and re-parenting the worker's
            # admission span under itself.
            trace_id = payload["trace_id"]
            remote = TraceContext.from_wire(trace) if trace else None
            parent = (
                remote.span_id
                if remote is not None and remote.trace_id == trace_id
                else payload.get("parent_span_id")
            )
            ctx = TraceContext(
                trace_id=trace_id,
                span_id=derive_span_id(trace_id, "gateway.submit"),
                parent_id=parent,
            )
            payload["parent_span_id"] = ctx.span_id
            with self.tracer.span(
                "gateway.submit",
                epoch=self.trace_epoch,
                ctx=ctx,
                job_id=job_id,
                partition=partition,
            ):
                return await self._forward_one(payload, job_id, partition)
        return await self._forward_one(payload, job_id, partition)

    async def _forward_one(
        self, payload: dict[str, Any], job_id: str, partition: int
    ) -> dict[str, Any]:
        start = time.perf_counter()
        try:
            reply = await self.links[partition].request({"op": "submit", **payload})
        except (OSError, ConnectionError, asyncio.TimeoutError) as exc:
            self._forward_errors_total.inc()
            self.board.mark_down(partition)
            return {
                "job_id": job_id,
                "status": "error",
                "error": f"partition {partition} unavailable: {exc}",
                "partition": partition,
            }
        self._admission_seconds.observe(time.perf_counter() - start)
        if not reply.get("ok"):
            self._submissions_total.labels("error").inc()
            return {
                "job_id": job_id,
                "status": "error",
                "error": reply.get("error", "worker error"),
                "partition": partition,
            }
        result = dict(reply["result"])
        result["partition"] = partition
        self._record_outcome(partition, result)
        return result

    async def _submit_batch(
        self, params: dict[str, Any], trace: Optional[dict[str, Any]] = None
    ) -> dict[str, Any]:
        jobs = params.get("jobs")
        if not isinstance(jobs, list):
            raise ProtocolError("submit_batch requires jobs (a list)")
        self._batches_total.inc()
        batch_index = self._batches
        self._batches += 1
        batch_ctx: Optional[TraceContext] = None
        if self.tracer.enabled:
            # Batches get their own trace (one per gateway batch seq);
            # per-job traces hang off it via the forward spans.
            batch_trace = derive_trace_id(self.config.seed, "batch", batch_index)
            remote = TraceContext.from_wire(trace) if trace else None
            batch_ctx = TraceContext(
                trace_id=batch_trace,
                span_id=derive_span_id(batch_trace, "gateway.submit_batch"),
                parent_id=remote.span_id if remote is not None else None,
            )
        results: list[Optional[dict[str, Any]]] = [None] * len(jobs)
        #: partition -> list of (original index, payload)
        groups: dict[int, list[tuple[int, dict[str, Any]]]] = {}
        door_open = self.door.check(self.board) is not AdmissionDecision.REJECT
        for index, raw in enumerate(jobs):
            try:
                spec = JobSpec.from_payload(dict(raw))
            except ProtocolError as exc:
                self._submissions_total.labels("error").inc()
                results[index] = {
                    "job_id": (raw or {}).get("job_id") if isinstance(raw, dict) else None,
                    "status": "error",
                    "error": str(exc),
                }
                continue
            payload, job_id, partition = self._assign(spec.to_payload())
            if not door_open:
                results[index] = self._door_reject(job_id, partition)
                continue
            groups.setdefault(partition, []).append((index, payload))

        async def forward(partition: int, items: list[tuple[int, dict[str, Any]]]) -> None:
            body: dict[str, Any] = {
                "op": "submit_batch",
                "jobs": [p for _, p in items],
            }
            if batch_ctx is not None:
                fwd_ctx = TraceContext(
                    trace_id=batch_ctx.trace_id,
                    span_id=derive_span_id(
                        batch_ctx.trace_id, f"gateway.forward:{partition}"
                    ),
                    parent_id=batch_ctx.span_id,
                )
                for _, item_payload in items:
                    item_payload["parent_span_id"] = fwd_ctx.span_id
                body["trace"] = fwd_ctx.to_wire()
                with self.tracer.span(
                    "gateway.forward",
                    epoch=self.trace_epoch,
                    ctx=fwd_ctx,
                    partition=partition,
                    jobs=len(items),
                ):
                    await forward_inner(partition, items, body)
            else:
                await forward_inner(partition, items, body)

        async def forward_inner(
            partition: int,
            items: list[tuple[int, dict[str, Any]]],
            body: dict[str, Any],
        ) -> None:
            start = time.perf_counter()
            try:
                reply = await self.links[partition].request(body)
                if not reply.get("ok"):
                    raise ConnectionError(reply.get("error", "worker error"))
                batch = reply["result"]["results"]
            except (OSError, ConnectionError, asyncio.TimeoutError, KeyError) as exc:
                self._forward_errors_total.inc(len(items))
                self.board.mark_down(partition)
                for index, payload in items:
                    results[index] = {
                        "job_id": payload.get("job_id"),
                        "status": "error",
                        "error": f"partition {partition} unavailable: {exc}",
                        "partition": partition,
                    }
                return
            self._admission_seconds.observe(time.perf_counter() - start)
            for (index, _), outcome in zip(items, batch):
                outcome = dict(outcome)
                outcome["partition"] = partition
                self._record_outcome(partition, outcome)
                results[index] = outcome

        if batch_ctx is not None:
            with self.tracer.span(
                "gateway.submit_batch",
                epoch=self.trace_epoch,
                ctx=batch_ctx,
                jobs=len(jobs),
                batch=batch_index,
            ):
                await asyncio.gather(
                    *(forward(p, items) for p, items in groups.items())
                )
        else:
            await asyncio.gather(
                *(forward(p, items) for p, items in groups.items())
            )
        final = [r if r is not None else {"status": "error", "error": "dropped"} for r in results]
        return {"results": final, "count": len(final)}

    # -- aggregation -------------------------------------------------------

    async def _fanout(
        self, body: dict[str, Any], timeout: Optional[float] = None
    ) -> dict[int, dict[str, Any]]:
        """Send one request to every partition; collect per-partition replies."""

        async def one(partition: int, link: WorkerLink) -> tuple[int, dict[str, Any]]:
            try:
                reply = await link.request(dict(body), timeout=timeout)
            except (OSError, ConnectionError, asyncio.TimeoutError) as exc:
                self.board.mark_down(partition)
                return partition, {"error": str(exc)}
            if not reply.get("ok"):
                return partition, {"error": reply.get("error", "worker error")}
            return partition, reply.get("result", {})

        pairs = await asyncio.gather(
            *(one(p, link) for p, link in self.links.items())
        )
        return dict(pairs)

    async def _aggregate_metrics(self) -> dict[str, Any]:
        per_partition = await self._fanout({"op": "metrics"})
        partitions: dict[str, Any] = {}
        live = []
        totals = {
            "active_jobs": 0,
            "queue_depth": 0,
            "admission_queue_depth": 0,
            "jobs_completed": 0,
        }
        for partition in sorted(per_partition):
            metrics = per_partition[partition]
            entry = dict(metrics)
            entry["jobs_submitted"] = self._submitted_per_partition.get(partition, 0)
            partitions[str(partition)] = entry
            if "error" in metrics:
                continue
            live.append(metrics.get("overload_degree", 0.0))
            totals["active_jobs"] += metrics.get("active_jobs", 0)
            totals["queue_depth"] += metrics.get("queue_depth", 0)
            totals["admission_queue_depth"] += metrics.get(
                "admission_queue_depth", 0
            )
            totals["jobs_completed"] += int(
                metrics.get("summary", {}).get("jobs", 0)
            )
            self.board.update(
                partition,
                overload_degree=metrics.get("overload_degree", 0.0),
                active_jobs=metrics.get("active_jobs", 0),
                queue_depth=metrics.get("queue_depth", 0),
                admission_queue_depth=metrics.get("admission_queue_depth", 0),
            )
        cluster = {
            "overload_degree": sum(live) / len(live) if live else 0.0,
            "overload_smoothed": self.door.tracker.value,
            "jobs_submitted": sum(self._submitted_per_partition.values()),
            **totals,
        }
        return {
            "role": "gateway",
            "partitions": partitions,
            "cluster": cluster,
            "gossip": self.board.snapshot(),
            "gateway": self.registry.scalar_snapshot(),
        }

    async def _aggregate_status(self, job_id: Optional[str]) -> dict[str, Any]:
        if job_id is not None:
            partition = self._route.get(job_id)
            if partition is None:
                partition = self.ring.lookup(job_id)
            reply = await self.links[partition].request(
                {"op": "status", "job_id": job_id}
            )
            if not reply.get("ok"):
                raise ProtocolError(reply.get("error", f"unknown job {job_id!r}"))
            result = dict(reply["result"])
            result["partition"] = partition
            return result
        per_partition = await self._fanout({"op": "metrics"})
        partitions = {}
        for partition in sorted(per_partition):
            metrics = per_partition[partition]
            if "error" in metrics:
                partitions[str(partition)] = {"error": metrics["error"]}
                continue
            partitions[str(partition)] = {
                "round": metrics.get("round", 0),
                "sim_time": metrics.get("sim_time", 0.0),
                "active_jobs": metrics.get("active_jobs", 0),
                "queue_depth": metrics.get("queue_depth", 0),
                "admission_queue_depth": metrics.get("admission_queue_depth", 0),
                "overload_degree": metrics.get("overload_degree", 0.0),
                "jobs_submitted": self._submitted_per_partition.get(partition, 0),
            }
        alive = [m for m in per_partition.values() if "error" not in m]
        return {
            "role": "gateway",
            "partitions": partitions,
            "cluster": {
                "overload_degree": (
                    sum(m.get("overload_degree", 0.0) for m in alive) / len(alive)
                    if alive
                    else 0.0
                ),
                "active_jobs": sum(m.get("active_jobs", 0) for m in alive),
                "queue_depth": sum(m.get("queue_depth", 0) for m in alive),
                "admission_queue_depth": sum(
                    m.get("admission_queue_depth", 0) for m in alive
                ),
                "jobs_submitted": sum(self._submitted_per_partition.values()),
            },
        }

    async def _aggregate_metrics_text(self) -> str:
        """Every worker's Prometheus exposure merged with the gateway's.

        Samples are tagged ``worker="gateway"`` / ``worker="<partition>"``;
        ``# HELP``/``# TYPE`` appear once per family and families are in
        sorted-name order (:func:`repro.obs.promtext.merge_metrics_text`).
        """
        per_partition = await self._fanout({"op": "metrics_text"})
        sources: dict[str, str] = {"gateway": self.registry.render_text()}
        for partition in sorted(per_partition):
            result = per_partition[partition]
            if "error" not in result:
                sources[str(partition)] = str(result.get("text", ""))
        return merge_metrics_text(sources, label="worker")

    async def _trace_dump(
        self, deterministic: bool = False, reset: bool = False
    ) -> dict[str, Any]:
        """The cluster-wide collector behind the ``trace_dump`` verb.

        Fans out to every worker, merges their span dumps with the
        gateway's own into one Chrome-trace document (one pid lane per
        process).  ``deterministic`` re-keys timestamps onto the
        canonical span order so two same-seed runs dump byte-identical
        documents; ``reset`` clears stored spans everywhere after
        dumping.
        """
        per_partition = await self._fanout({"op": "trace_dump", "reset": reset})
        processes = [
            ProcessTrace(
                name="gateway",
                events=[record.to_dict() for record in self.tracer.events],
                dropped=self.tracer.dropped,
            )
        ]
        errors: dict[str, str] = {}
        for partition in sorted(per_partition):
            result = per_partition[partition]
            if "error" in result:
                errors[str(partition)] = str(result["error"])
                continue
            processes.append(
                ProcessTrace.from_dump(f"worker-{partition:02d}", result)
            )
        if reset and self.tracer.enabled:
            self.tracer.events = []
        doc = merge_chrome_traces(processes, deterministic=deterministic)
        out: dict[str, Any] = {
            "trace": doc,
            "processes": [p.name for p in processes],
            "enabled": self.tracer.enabled,
        }
        if errors:
            out["errors"] = errors
        return out

    # -- request handling --------------------------------------------------

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._client_tasks.add(task)
            task.add_done_callback(self._client_tasks.discard)
        try:
            while not reader.at_eof():
                line = await reader.readline()
                if not line:
                    break
                response = await self._dispatch_line(line)
                writer.write(response.encode())
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
            pass
        finally:
            writer.close()

    async def _dispatch_line(self, line: bytes) -> Response:
        try:
            request = parse_request(line)
        except ProtocolError as exc:
            return Response.failure(str(exc))
        try:
            return await self._dispatch(request)
        except ProtocolError as exc:
            return Response.failure(str(exc), id=request.id)
        except Exception as exc:  # the gateway must survive any verb failure
            return Response.failure(f"internal error: {exc}", id=request.id)

    async def _dispatch(self, request: Request) -> Response:
        params = request.params
        if request.op == "ping":
            statuses = self.supervisor.statuses()
            return Response.success(
                {
                    "pong": True,
                    "role": "gateway",
                    "workers": {
                        "total": len(statuses),
                        "up": sum(1 for s in statuses if s["alive"]),
                    },
                },
                id=request.id,
            )
        if request.op == "submit":
            return Response.success(
                await self._submit_one(params, trace=request.trace), id=request.id
            )
        if request.op == "submit_batch":
            return Response.success(
                await self._submit_batch(params, trace=request.trace), id=request.id
            )
        if request.op == "status":
            return Response.success(
                await self._aggregate_status(params.get("job_id")), id=request.id
            )
        if request.op == "metrics":
            return Response.success(await self._aggregate_metrics(), id=request.id)
        if request.op == "metrics_text":
            return Response.success(
                {"text": await self._aggregate_metrics_text()}, id=request.id
            )
        if request.op == "trace_dump":
            return Response.success(
                await self._trace_dump(
                    deterministic=bool(params.get("deterministic", False)),
                    reset=bool(params.get("reset", False)),
                ),
                id=request.id,
            )
        if request.op == "workers":
            rows = []
            for status in self.supervisor.statuses():
                sample = self.board.partitions.get(status["partition"])
                rows.append(
                    {
                        **status,
                        "answering": bool(sample and sample.alive),
                        "rtt_ms": sample.rtt_ms if sample else 0.0,
                    }
                )
            return Response.success({"workers": rows}, id=request.id)
        if request.op == "gossip":
            return Response.success(await self.poll_once(), id=request.id)
        if request.op == "cancel":
            job_id = params.get("job_id")
            if not job_id:
                raise ProtocolError("cancel requires job_id")
            partition = self._route.get(job_id, None)
            if partition is None:
                partition = self.ring.lookup(job_id)
            reply = await self.links[partition].request(
                {"op": "cancel", "job_id": job_id}
            )
            if not reply.get("ok"):
                raise ProtocolError(reply.get("error", "cancel failed"))
            result = dict(reply["result"])
            result["partition"] = partition
            return Response.success(result, id=request.id)
        if request.op == "history":
            job_id = params.get("job_id")
            if not job_id:
                raise ProtocolError("history requires job_id")
            partition = self._route.get(job_id)
            if partition is None:
                partition = self.ring.lookup(job_id)
            reply = await self.links[partition].request(
                {"op": "history", "job_id": job_id}
            )
            if not reply.get("ok"):
                raise ProtocolError(reply.get("error", f"unknown job {job_id!r}"))
            return Response.success(dict(reply["result"]), id=request.id)
        if request.op == "step":
            until = params.get("until")
            events = params.get("events")
            if until is not None and events is not None:
                raise ProtocolError(
                    "step accepts at most one of 'until' and 'events'"
                )
            payload: dict[str, Any]
            if until is not None:
                # Time-based stepping fans out unchanged: every
                # partition advances its own clock to the same bound.
                payload = {"op": "step", "until": float(until)}
            elif events is not None:
                # Event counts are per partition (a global budget would
                # make partition progress depend on fan-out ordering).
                payload = {"op": "step", "events": int(events)}
            else:
                payload = {"op": "step", "rounds": max(1, int(params.get("rounds", 1)))}
            per_partition = await self._fanout(payload)
            return Response.success(
                {"partitions": {str(p): r for p, r in sorted(per_partition.items())}},
                id=request.id,
            )
        if request.op == "drain":
            per_partition = await self._fanout(
                {"op": "drain", "max_rounds": int(params.get("max_rounds", 100_000))},
                timeout=self.config.drain_timeout,
            )
            idle = all(
                r.get("idle", False) for r in per_partition.values() if "error" not in r
            )
            return Response.success(
                {
                    "idle": idle,
                    "partitions": {
                        str(p): r for p, r in sorted(per_partition.items())
                    },
                },
                id=request.id,
            )
        if request.op == "shutdown":
            self._stop.set()
            return Response.success({"stopping": True}, id=request.id)
        raise ProtocolError(f"the gateway does not implement op {request.op!r}")


def gateway_worker_configs(config: GatewayConfig):
    """The per-partition worker :class:`ServiceConfig` list for ``config``."""
    return worker_service_configs(
        config.workers,
        config.workdir,
        scheduler=config.scheduler,
        servers_per_worker=config.servers_per_worker,
        gpus_per_server=config.gpus_per_server,
        tick_seconds=config.tick_seconds,
        seed=config.seed,
        round_interval=config.round_interval,
        admission_policy=config.admission_policy,
        admission_threshold=config.admission_threshold,
        telemetry=config.telemetry,
        telemetry_obs=config.telemetry_obs,
        trace=config.trace,
    )


def build_supervisor(config: GatewayConfig) -> WorkerSupervisor:
    """A supervisor over the gateway's partition workers."""
    return WorkerSupervisor(
        gateway_worker_configs(config),
        spawn=config.spawn,
        restart_limit=config.restart_limit,
    )


async def run_gateway(config: GatewayConfig) -> None:
    """Spawn the workers, then run the gateway until shutdown."""
    supervisor = build_supervisor(config)
    loop = asyncio.get_running_loop()
    await loop.run_in_executor(None, supervisor.start)
    daemon = GatewayDaemon(config, supervisor)
    installed: list[signal.Signals] = []
    for sig in (signal.SIGTERM, signal.SIGINT):
        with contextlib.suppress(NotImplementedError, RuntimeError, ValueError):
            loop.add_signal_handler(sig, daemon._stop.set)
            installed.append(sig)
    try:
        await daemon.serve_forever()
    finally:
        for sig in installed:
            with contextlib.suppress(NotImplementedError, RuntimeError, ValueError):
                loop.remove_signal_handler(sig)


class ThreadedGateway:
    """Runs workers + gateway on background threads (tests, benchmarks).

    Usage::

        with ThreadedGateway(GatewayConfig(workers=4, spawn="thread")) as gw:
            client = ServiceClient(gw.target)
            ...
    """

    def __init__(self, config: GatewayConfig) -> None:
        self.config = config
        self.daemon: Optional[GatewayDaemon] = None
        self.supervisor: Optional[WorkerSupervisor] = None
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._started = threading.Event()
        self._startup_error: Optional[BaseException] = None

    @property
    def port(self) -> int:
        """The bound TCP port (after ``__enter__``)."""
        assert self.daemon is not None and self.daemon.bound_port is not None
        return self.daemon.bound_port

    @property
    def target(self) -> str:
        """A client target string for this gateway."""
        if self.daemon is not None and self.daemon.bound_port is not None:
            host, _ = _parse_listen(self.config.listen or "127.0.0.1:0")
            return f"{host}:{self.daemon.bound_port}"
        assert self.config.socket_path is not None
        return self.config.socket_path

    def __enter__(self) -> "ThreadedGateway":
        # Workers first (blocking, with retry-ping readiness); the
        # gateway loop then connects lazily per request.
        self.supervisor = build_supervisor(self.config)
        self.supervisor.start()
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        if not self._started.wait(timeout=30.0):
            self.supervisor.stop()
            raise GatewayError("gateway failed to start within 30s")
        if self._startup_error is not None:
            raise GatewayError("gateway failed to start") from self._startup_error
        return self

    def __exit__(self, *exc_info) -> None:
        if self._loop is not None and self.daemon is not None:
            # Tolerate a loop already closed by a ``shutdown`` verb.
            with contextlib.suppress(RuntimeError):
                self._loop.call_soon_threadsafe(self.daemon._stop.set)
        if self._thread is not None:
            self._thread.join(timeout=60.0)

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        assert self.supervisor is not None
        self.daemon = GatewayDaemon(self.config, self.supervisor)
        self._loop = asyncio.get_running_loop()
        try:
            await self.daemon.start()
        except BaseException as exc:
            self._startup_error = exc
            self._started.set()
            return
        self._started.set()
        try:
            await self.daemon._stop.wait()
        finally:
            await self.daemon.stop()
