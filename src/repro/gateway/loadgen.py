"""Deterministic load generator for the gateway front tier.

Replays a seeded synthetic submission stream — batched ``submit_batch``
calls over the normal client — against a gateway (or a bare worker) and
measures what the front tier is for:

* sustained throughput (submissions per wall-clock second);
* per-submission admission latency (a job's latency is the round-trip
  time of the batch call that carried it — an honest upper bound on its
  individual admission time), reported as p50/p95/p99;
* integrity: every generated job id must come back exactly once, with a
  definite outcome — zero lost, zero duplicated.

The payload stream is a pure function of ``(count, tenants, seed)``:
the same arguments generate byte-identical submissions, which is what
lets the determinism tests replay one trace against two gateways and
diff their per-worker telemetry bit for bit.  With ``trace=True`` each
payload additionally carries a client-originated ``trace_id`` —
:func:`~repro.obs.tracectx.derive_trace_id` over the same
``(seed, tenant, index)`` tuple, so the stream stays a pure function of
its arguments; with the default ``trace=False`` the payloads are
byte-identical to every previous release.
"""

from __future__ import annotations

import random
import time
from collections import Counter
from typing import Any, Iterator, Optional

from repro.analysis.cdf import percentile_sorted
from repro.obs.tracectx import derive_trace_id
from repro.service.client import ServiceClient
from repro.workload.models import MODEL_NAMES

__all__ = ["generate_payloads", "run_loadgen"]


def generate_payloads(
    count: int, tenants: int = 16, seed: int = 0, trace: bool = False
) -> Iterator[dict[str, Any]]:
    """A seeded stream of ``count`` submission payloads.

    Job ids are sequential (``lg-0000000`` …) so integrity checks are
    trivial; every other field is drawn from a dedicated RNG stream.
    ``trace=True`` stamps each payload with its deterministic
    ``trace_id`` (the client end of the distributed-trace chain);
    ``parent_span_id`` is left unset so the gateway's span becomes the
    worker span's parent.
    """
    rng = random.Random(seed)
    for index in range(count):
        payload = {
            "job_id": f"lg-{index:07d}",
            "tenant": f"tenant-{rng.randrange(tenants):04d}",
            "model_name": rng.choice(MODEL_NAMES),
            "gpus_requested": rng.choice((1, 2, 4, 8)),
            "max_iterations": rng.randrange(5, 40),
            "accuracy_requirement": round(rng.uniform(0.5, 0.95), 3),
            "urgency": rng.randrange(0, 10),
            "training_data_mb": float(rng.randrange(100, 2000)),
        }
        if trace:
            payload["trace_id"] = derive_trace_id(
                seed, payload["tenant"], index
            )
        yield payload


def run_loadgen(
    target: str,
    count: int = 100_000,
    batch: int = 200,
    tenants: int = 16,
    seed: int = 0,
    timeout: float = 120.0,
    progress_every: Optional[int] = None,
    progress: Any = None,
    trace: bool = False,
) -> dict[str, Any]:
    """Replay ``count`` submissions against ``target``; measure and verify.

    ``progress`` (when given) is called as ``progress(done, count)``
    every ``progress_every`` submissions — the CLI uses it to report
    without this module printing anything itself.  ``trace=True``
    stamps every payload with its client-side ``trace_id`` (see
    :func:`generate_payloads`); collect the resulting cluster trace
    with the gateway's ``trace_dump`` verb after the run.
    """
    if count < 1:
        raise ValueError("count must be >= 1")
    if batch < 1:
        raise ValueError("batch must be >= 1")
    outcomes: Counter[str] = Counter()
    per_partition: Counter[str] = Counter()
    seen_ids: set[str] = set()
    latencies_ms: list[float] = []
    payloads = generate_payloads(count, tenants=tenants, seed=seed, trace=trace)
    sent = 0
    with ServiceClient(target, timeout=timeout) as client:
        started = time.perf_counter()
        pending: list[dict[str, Any]] = []
        for payload in payloads:
            pending.append(payload)
            if len(pending) < batch:
                continue
            sent += _flush(
                client, pending, outcomes, per_partition, seen_ids, latencies_ms
            )
            pending = []
            if progress and progress_every and sent % progress_every < batch:
                progress(sent, count)
        if pending:
            sent += _flush(
                client, pending, outcomes, per_partition, seen_ids, latencies_ms
            )
        elapsed = time.perf_counter() - started
    lost = count - len(seen_ids)
    duplicates = sent - len(seen_ids)
    latencies_ms.sort()
    return {
        "count": count,
        "batch": batch,
        "tenants": tenants,
        "seed": seed,
        "trace": trace,
        "elapsed_seconds": elapsed,
        "submissions_per_sec": count / elapsed if elapsed > 0 else 0.0,
        "latency_ms": {
            "p50": percentile_sorted(latencies_ms, 50.0),
            "p95": percentile_sorted(latencies_ms, 95.0),
            "p99": percentile_sorted(latencies_ms, 99.0),
            "max": latencies_ms[-1],
        },
        "outcomes": dict(sorted(outcomes.items())),
        "per_partition": dict(sorted(per_partition.items())),
        "lost": lost,
        "duplicated": duplicates,
    }


def _flush(
    client: ServiceClient,
    pending: list[dict[str, Any]],
    outcomes: Counter,
    per_partition: Counter,
    seen_ids: set[str],
    latencies_ms: list[float],
) -> int:
    """Send one batch; fold its results into the accumulators."""
    started = time.perf_counter()
    results = client.submit_batch(pending)
    rtt_ms = (time.perf_counter() - started) * 1000.0
    if len(results) != len(pending):
        raise RuntimeError(
            f"batch returned {len(results)} results for {len(pending)} jobs"
        )
    for result in results:
        outcomes[result.get("status", "error")] += 1
        if "partition" in result:
            per_partition[str(result["partition"])] += 1
        job_id = result.get("job_id")
        if job_id:
            seen_ids.add(job_id)
        latencies_ms.append(rtt_ms)
    return len(results)
