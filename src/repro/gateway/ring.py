"""Deterministic consistent-hash ring for partition routing.

The gateway maps every submission to one of N scheduler partitions by
hashing its routing key (tenant id, falling back to job id) onto a ring
of virtual nodes.  Classic consistent hashing gives the two properties
the front tier needs:

* **uniformity** — with enough virtual nodes per partition (the
  ``replicas`` knob) keys spread evenly, so no worker becomes the hot
  shard by accident;
* **minimal movement** — when a partition joins, the only keys that
  change owner are the ones the new partition takes over; when one
  leaves, only its own keys move.  Everything else keeps its placement,
  which is what lets a supervisor restart or scale workers without
  reshuffling every tenant.

Everything is seeded and content-addressed: the ring layout is a pure
function of ``(nodes, replicas, seed)``, hashed with SHA-256 (never
Python's randomized ``hash``), so two gateways built from the same
config route identically — the bedrock of the per-partition determinism
contract (DESIGN.md §12).
"""

from __future__ import annotations

import hashlib
import json
from bisect import bisect_right
from dataclasses import dataclass
from typing import Any, Iterable, Mapping

__all__ = ["HashRing", "RingConfig"]


def _hash64(data: str) -> int:
    """First 8 bytes of SHA-256 as a big-endian integer."""
    return int.from_bytes(hashlib.sha256(data.encode("utf-8")).digest()[:8], "big")


@dataclass(frozen=True)
class RingConfig:
    """The ring layout parameters (part of the gateway's determinism key)."""

    replicas: int = 64
    seed: int = 0

    def to_json(self) -> dict[str, Any]:
        """JSON-ready representation."""
        return {"replicas": self.replicas, "seed": self.seed}

    @classmethod
    def from_json(cls, data: Mapping[str, Any]) -> "RingConfig":
        """Inverse of :meth:`to_json`."""
        return cls(replicas=int(data["replicas"]), seed=int(data["seed"]))


class HashRing:
    """Consistent-hash ring over integer partition ids.

    ``replicas`` virtual nodes per partition are placed at
    ``sha256(seed|node|partition|replica)``; a key routes to the first
    virtual node clockwise of ``sha256(seed|key|value)``.  Ties (hash
    collisions) break on the partition id, deterministically.
    """

    def __init__(
        self, nodes: Iterable[int] = (), replicas: int = 64, seed: int = 0
    ) -> None:
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        self.replicas = replicas
        self.seed = seed
        self._nodes: set[int] = set()
        #: Sorted ``(point, partition)`` pairs — the ring itself.
        self._points: list[tuple[int, int]] = []
        for node in nodes:
            self.add_node(node)

    # -- membership --------------------------------------------------------

    def _vnode_points(self, node: int) -> list[tuple[int, int]]:
        return [
            (_hash64(f"{self.seed}|node|{node}|{replica}"), node)
            for replica in range(self.replicas)
        ]

    def add_node(self, node: int) -> None:
        """Add a partition; only keys it takes over change owner."""
        node = int(node)
        if node in self._nodes:
            raise ValueError(f"partition {node} already on the ring")
        self._nodes.add(node)
        self._points.extend(self._vnode_points(node))
        self._points.sort()

    def remove_node(self, node: int) -> None:
        """Remove a partition; only its own keys change owner."""
        node = int(node)
        if node not in self._nodes:
            raise ValueError(f"partition {node} not on the ring")
        self._nodes.discard(node)
        self._points = [p for p in self._points if p[1] != node]

    @property
    def nodes(self) -> list[int]:
        """Current partitions, sorted."""
        return sorted(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    # -- routing -----------------------------------------------------------

    def lookup(self, key: str) -> int:
        """The partition owning ``key``."""
        if not self._points:
            raise ValueError("cannot route on an empty ring")
        point = _hash64(f"{self.seed}|key|{key}")
        index = bisect_right(self._points, (point, 2**63))
        if index == len(self._points):
            index = 0  # wrap past the highest virtual node
        return self._points[index][1]

    def spread(self, keys: Iterable[str]) -> dict[int, int]:
        """Key count per partition (distribution diagnostics/tests)."""
        counts = {node: 0 for node in self._nodes}
        for key in keys:
            counts[self.lookup(key)] += 1
        return counts

    # -- identity ----------------------------------------------------------

    def layout_digest(self) -> str:
        """SHA-256 over the full virtual-node table.

        Two rings with equal digests route every possible key
        identically; tests assert this bit-for-bit.
        """
        canonical = json.dumps(
            {
                "replicas": self.replicas,
                "seed": self.seed,
                "points": self._points,
            },
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def config(self) -> RingConfig:
        """The layout parameters of this ring."""
        return RingConfig(replicas=self.replicas, seed=self.seed)
