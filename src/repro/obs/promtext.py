"""Prometheus text-exposition helpers: escape, parse, merge, validate.

:meth:`~repro.obs.metrics.MetricsRegistry.render_text` produces the
text exposition format for one process; the gateway needs to merge N
worker exposures plus its own into one cluster view.  This module owns
the format-level mechanics:

* :func:`escape_label_value` / :func:`escape_help` — the exposition
  format's backslash escapes (``\\``, ``\"``, ``\n``);
* :func:`parse_metrics_text` — exposure text → ordered families with
  typed samples (label values unescaped in memory);
* :func:`merge_metrics_text` — N exposures → one, each sample tagged
  with a source label (``worker="0"`` …), ``# HELP``/``# TYPE`` emitted
  once per family, families in sorted-name order (stable regardless of
  per-process registration order);
* :func:`validate_metrics_text` — a lightweight compliance check used
  by tests against both daemon and gateway output.

Parsing is intentionally limited to what our own renderers emit plus
the obvious escapes — it is a merge/validation aid, not a full
Prometheus client.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Optional

__all__ = [
    "ParsedSample",
    "ParsedFamily",
    "escape_label_value",
    "escape_help",
    "parse_metrics_text",
    "merge_metrics_text",
    "validate_metrics_text",
]

#: Suffixes a histogram family's sample names may carry.
_HISTOGRAM_SUFFIXES = ("_bucket", "_sum", "_count")


def escape_label_value(value: str) -> str:
    """Escape a label value per the exposition format."""
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def escape_help(text: str) -> str:
    """Escape ``# HELP`` text per the exposition format."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _unescape(value: str) -> str:
    out: list[str] = []
    it = iter(value)
    for ch in it:
        if ch != "\\":
            out.append(ch)
            continue
        nxt = next(it, "")
        if nxt == "n":
            out.append("\n")
        elif nxt in ('"', "\\"):
            out.append(nxt)
        else:
            out.append("\\" + nxt)
    return "".join(out)


@dataclass
class ParsedSample:
    """One sample line: name, ordered labels (unescaped), raw value."""

    name: str
    labels: tuple[tuple[str, str], ...]
    value: str  # kept as text so re-rendering is byte-faithful


@dataclass
class ParsedFamily:
    """One metric family: ``# TYPE`` header plus its samples."""

    name: str
    kind: str
    help: Optional[str] = None
    samples: list[ParsedSample] = field(default_factory=list)


def _valid_name(name: str) -> bool:
    if not name:
        return False
    head = name[0]
    if not (head.isalpha() or head in "_:"):
        return False
    return all(ch.isalnum() or ch in "_:" for ch in name)


def _parse_labels(body: str, line_no: int) -> tuple[tuple[str, str], ...]:
    """Parse ``a="x",b="y"`` respecting escapes; raises ValueError."""
    pairs: list[tuple[str, str]] = []
    i, n = 0, len(body)
    while i < n:
        eq = body.index("=", i)
        name = body[i:eq]
        if not _valid_name(name.strip()):
            raise ValueError(f"line {line_no}: bad label name {name!r}")
        if eq + 1 >= n or body[eq + 1] != '"':
            raise ValueError(f"line {line_no}: unquoted label value")
        j = eq + 2
        raw: list[str] = []
        while j < n and body[j] != '"':
            if body[j] == "\\" and j + 1 < n:
                raw.append(body[j : j + 2])
                j += 2
            else:
                raw.append(body[j])
                j += 1
        if j >= n:
            raise ValueError(f"line {line_no}: unterminated label value")
        pairs.append((name.strip(), _unescape("".join(raw))))
        i = j + 1
        if i < n:
            if body[i] != ",":
                raise ValueError(f"line {line_no}: expected ',' between labels")
            i += 1
    return tuple(pairs)


def _base_family(sample_name: str, families: Mapping[str, ParsedFamily]) -> str:
    """The family a sample belongs to (strips histogram suffixes)."""
    for suffix in _HISTOGRAM_SUFFIXES:
        if sample_name.endswith(suffix):
            base = sample_name[: -len(suffix)]
            fam = families.get(base)
            if fam is not None and fam.kind == "histogram":
                return base
    return sample_name


def parse_metrics_text(text: str) -> dict[str, ParsedFamily]:
    """Parse one exposure into ordered ``{family name: ParsedFamily}``.

    Raises ``ValueError`` on lines the format forbids (bad names,
    unterminated label values, samples with no value, ``# TYPE``
    redeclarations).
    """
    families: dict[str, ParsedFamily] = {}
    for line_no, line in enumerate(text.splitlines(), start=1):
        line = line.rstrip()
        if not line:
            continue
        if line.startswith("# HELP "):
            rest = line[len("# HELP ") :]
            name, _, help_text = rest.partition(" ")
            if not _valid_name(name):
                raise ValueError(f"line {line_no}: bad HELP metric name {name!r}")
            fam = families.setdefault(name, ParsedFamily(name=name, kind="untyped"))
            if fam.help is not None:
                raise ValueError(f"line {line_no}: duplicate HELP for {name}")
            fam.help = help_text
            continue
        if line.startswith("# TYPE "):
            rest = line[len("# TYPE ") :]
            name, _, kind = rest.partition(" ")
            if not _valid_name(name):
                raise ValueError(f"line {line_no}: bad TYPE metric name {name!r}")
            if kind not in ("counter", "gauge", "histogram", "summary", "untyped"):
                raise ValueError(f"line {line_no}: bad TYPE kind {kind!r}")
            fam = families.setdefault(name, ParsedFamily(name=name, kind=kind))
            if fam.kind not in ("untyped", kind):
                raise ValueError(f"line {line_no}: TYPE redeclared for {name}")
            fam.kind = kind
            continue
        if line.startswith("#"):
            continue  # comment
        # Sample line: name[{labels}] value
        brace = line.find("{")
        if brace >= 0:
            close = line.rfind("}")
            if close < brace:
                raise ValueError(f"line {line_no}: unbalanced label braces")
            name = line[:brace]
            labels = _parse_labels(line[brace + 1 : close], line_no)
            value = line[close + 1 :].strip()
        else:
            name, _, value = line.partition(" ")
            labels = ()
            value = value.strip()
        if not _valid_name(name):
            raise ValueError(f"line {line_no}: bad sample name {name!r}")
        if not value:
            raise ValueError(f"line {line_no}: sample with no value")
        float(value)  # raises ValueError on garbage
        base = _base_family(name, families)
        fam = families.setdefault(base, ParsedFamily(name=base, kind="untyped"))
        fam.samples.append(ParsedSample(name=name, labels=labels, value=value))
    return families


def _render_sample(sample: ParsedSample) -> str:
    if sample.labels:
        pairs = ",".join(
            f'{n}="{escape_label_value(v)}"' for n, v in sample.labels
        )
        return f"{sample.name}{{{pairs}}} {sample.value}"
    return f"{sample.name} {sample.value}"


def merge_metrics_text(
    sources: Mapping[str, str], label: str = "worker"
) -> str:
    """Merge N exposures into one, tagging samples with their source.

    ``sources`` maps a source name (``"gateway"``, ``"0"`` …) to its
    exposure text.  Every sample gains a ``label="<source>"`` pair
    (prepended, so it reads first); ``# HELP``/``# TYPE`` are emitted
    once per family (first non-empty HELP wins, kinds must agree);
    families are ordered by sorted name, samples by source order then
    original order — stable however the inputs arrived.
    """
    merged: dict[str, ParsedFamily] = {}
    for source in sources:
        for name, fam in parse_metrics_text(sources[source]).items():
            target = merged.get(name)
            if target is None:
                target = ParsedFamily(name=name, kind=fam.kind, help=fam.help)
                merged[name] = target
            else:
                if "untyped" not in (target.kind, fam.kind) and target.kind != fam.kind:
                    raise ValueError(
                        f"family {name}: kind {fam.kind!r} from source "
                        f"{source!r} conflicts with {target.kind!r}"
                    )
                if target.kind == "untyped":
                    target.kind = fam.kind
                if target.help is None:
                    target.help = fam.help
            for sample in fam.samples:
                target.samples.append(
                    ParsedSample(
                        name=sample.name,
                        labels=((label, str(source)),) + sample.labels,
                        value=sample.value,
                    )
                )
    lines: list[str] = []
    for name in sorted(merged):
        fam = merged[name]
        if fam.help:
            lines.append(f"# HELP {name} {escape_help(fam.help)}")
        lines.append(f"# TYPE {name} {fam.kind}")
        lines.extend(_render_sample(s) for s in fam.samples)
    return "\n".join(lines) + "\n"


def validate_metrics_text(text: str) -> list[str]:
    """Compliance problems in one exposure (empty list when clean).

    Checks: parseability, ``# TYPE`` before samples and declared once,
    at most one ``# HELP`` per family, no duplicate series (same sample
    name + label set twice), histogram families carry ``_bucket`` /
    ``_sum`` / ``_count`` with a ``+Inf`` bucket and non-decreasing
    cumulative counts, and the exposure ends with a newline.
    """
    problems: list[str] = []
    if text and not text.endswith("\n"):
        problems.append("exposure does not end with a newline")
    try:
        families = parse_metrics_text(text)
    except ValueError as exc:
        return problems + [str(exc)]
    seen_series: set[tuple[str, tuple[tuple[str, str], ...]]] = set()
    for name, fam in families.items():
        if fam.kind == "untyped" and fam.samples:
            problems.append(f"family {name}: samples without a # TYPE header")
        for sample in fam.samples:
            series = (sample.name, tuple(sorted(sample.labels)))
            if series in seen_series:
                problems.append(f"family {name}: duplicate series {sample.name}")
            seen_series.add(series)
        if fam.kind == "histogram":
            problems.extend(_check_histogram(name, fam))
    return problems


def _check_histogram(name: str, fam: ParsedFamily) -> Iterable[str]:
    problems: list[str] = []
    # Group by the non-``le`` label set: one logical histogram each.
    groups: dict[tuple[tuple[str, str], ...], dict[str, list[ParsedSample]]] = {}
    for sample in fam.samples:
        rest = tuple(p for p in sample.labels if p[0] != "le")
        part = groups.setdefault(rest, {"bucket": [], "sum": [], "count": []})
        if sample.name == f"{name}_bucket":
            part["bucket"].append(sample)
        elif sample.name == f"{name}_sum":
            part["sum"].append(sample)
        elif sample.name == f"{name}_count":
            part["count"].append(sample)
        else:
            problems.append(f"family {name}: stray sample {sample.name}")
    for rest, part in groups.items():
        where = dict(rest)
        if not part["bucket"]:
            problems.append(f"family {name}{where}: no _bucket samples")
            continue
        bounds = [dict(s.labels).get("le") for s in part["bucket"]]
        if bounds[-1] != "+Inf":
            problems.append(f"family {name}{where}: last bucket is not +Inf")
        counts = [float(s.value) for s in part["bucket"]]
        if any(later < earlier for earlier, later in zip(counts, counts[1:])):
            problems.append(f"family {name}{where}: bucket counts not cumulative")
        if len(part["sum"]) != 1 or len(part["count"]) != 1:
            problems.append(f"family {name}{where}: needs exactly one _sum/_count")
    return problems
