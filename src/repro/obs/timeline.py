"""Per-job event timelines.

Every job's life is a sequence of transitions — ``admission`` (service
layer) → ``submitted`` → ``queued`` → ``placed`` → ``migrated`` /
``evicted`` → ``completed`` or ``stopped`` — each stamped with the
simulation clock, the scheduler round, and where applicable the task,
server/GPU ids and the task's priority at that moment.  The recorder is
the storage behind the daemon's ``history`` protocol verb and
``repro ctl history JOB``.

Timelines are plain data (they pickle with daemon snapshots) and the
recorder caps the number of tracked jobs so an immortal daemon does not
grow without bound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

__all__ = ["TimelineEvent", "TimelineRecorder", "JOB_EVENTS"]

#: The event vocabulary, in canonical lifecycle order.
JOB_EVENTS: tuple[str, ...] = (
    "admission",
    "submitted",
    "queued",
    "placed",
    "migrated",
    "evicted",
    "stopped",
    "completed",
)


@dataclass(frozen=True, slots=True)
class TimelineEvent:
    """One transition in a job's life."""

    time: float
    event: str
    round_index: Optional[int] = None
    task_id: Optional[str] = None
    server_id: Optional[int] = None
    gpu_id: Optional[int] = None
    priority: Optional[float] = None
    detail: Optional[str] = None
    extra: Optional[dict[str, Any]] = None

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe dict with ``None`` fields dropped."""
        out: dict[str, Any] = {"time": self.time, "event": self.event}
        for key in ("round_index", "task_id", "server_id", "gpu_id", "priority", "detail"):
            value = getattr(self, key)
            if value is not None:
                out[key] = value
        if self.extra:
            out.update(self.extra)
        return out


class TimelineRecorder:
    """Bounded per-job event log.

    Parameters
    ----------
    max_jobs:
        Oldest-tracked jobs are forgotten once this many are held
        (insertion order, which tracks submission order).
    """

    def __init__(self, max_jobs: int = 8192) -> None:
        self.max_jobs = max_jobs
        self._events: dict[str, list[TimelineEvent]] = {}

    def record(self, job_id: str, event: TimelineEvent) -> None:
        """Append one event to a job's timeline."""
        timeline = self._events.get(job_id)
        if timeline is None:
            while len(self._events) >= self.max_jobs:
                # dict preserves insertion order: drop the oldest job.
                self._events.pop(next(iter(self._events)))
            timeline = self._events[job_id] = []
        timeline.append(event)

    def history(self, job_id: str) -> list[dict[str, Any]]:
        """A job's timeline as JSON-safe dicts (empty when unknown)."""
        return [event.to_dict() for event in self._events.get(job_id, [])]

    def events_of(self, job_id: str) -> list[TimelineEvent]:
        """A job's raw timeline events."""
        return list(self._events.get(job_id, []))

    def job_ids(self) -> list[str]:
        """Tracked jobs, oldest first."""
        return list(self._events)

    def __contains__(self, job_id: str) -> bool:
        return job_id in self._events

    def __len__(self) -> int:
        return len(self._events)
