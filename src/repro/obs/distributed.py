"""Cluster-wide trace collection: merge, analyze, render.

One logical cluster is a gateway process plus N worker daemons, each
recording spans into its local :class:`~repro.obs.tracing.Tracer`.
This module is the gateway-side collector that stitches those
per-process dumps (the ``trace_dump`` verb) back into a single view:

* :func:`merge_chrome_traces` — per-process span-record dumps → one
  Chrome-trace JSON with a lane per process (``pid`` per process,
  ``process_name``/``process_sort_index`` metadata events), loadable in
  Perfetto / ``chrome://tracing``.  Trace/span IDs ride in each event's
  ``args`` so cross-lane parent/child edges survive the merge.
* :func:`analyze_trace` — per-submission critical path over a merged
  trace: time in gateway routing vs worker queue/transport vs admission
  vs scheduler rounds, with p50/p95/p99 breakdowns
  (``repro trace analyze``).
* :func:`render_top` — one frame of the live cluster view over the
  gateway's aggregated ``metrics`` result (``repro top``).

Determinism: spans carry ``perf_counter`` wall durations, and the
gateway closes fan-out spans in whatever order worker responses land —
so raw timestamps are *not* reproducible.  ``deterministic=True``
re-keys the merged document onto a canonical order (sort by process
lane, then trace/span identity, then name and args) and replaces
``ts``/``dur`` with ordinal placeholders, which makes two same-seed
runs byte-identical — the same contract the per-worker telemetry
already honours.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Optional, Sequence

from repro.analysis.cdf import percentile_sorted
from repro.analysis.tables import format_table

__all__ = [
    "ProcessTrace",
    "merge_chrome_traces",
    "trace_summary",
    "analyze_trace",
    "render_trace_analysis",
    "render_top",
]


@dataclass
class ProcessTrace:
    """One process's span dump, as returned by the ``trace_dump`` verb."""

    name: str
    events: list[dict[str, Any]] = field(default_factory=list)
    dropped: int = 0

    @classmethod
    def from_dump(cls, name: str, dump: Mapping[str, Any]) -> "ProcessTrace":
        return cls(
            name=name,
            events=list(dump.get("events", ())),
            dropped=int(dump.get("dropped", 0)),
        )


def _chrome_event(record: Mapping[str, Any], pid: int) -> dict[str, Any]:
    event: dict[str, Any] = {
        "name": record["name"],
        "ph": "X",
        "cat": "scheduler",
        "ts": round(float(record["start_us"]), 3),
        "dur": round(float(record["dur_us"]), 3),
        "pid": pid,
        "tid": 1,
    }
    args = dict(record.get("args") or {})
    for key in ("trace_id", "span_id", "parent_id"):
        if record.get(key) is not None:
            args[key] = record[key]
    if args:
        event["args"] = args
    return event


def _canonical_key(event: Mapping[str, Any]) -> tuple:
    args = event.get("args") or {}
    return (
        event["pid"],
        args.get("trace_id", ""),
        args.get("span_id", ""),
        event["name"],
        json.dumps({k: v for k, v in args.items()}, sort_keys=True),
    )


def merge_chrome_traces(
    processes: Sequence[ProcessTrace], deterministic: bool = False
) -> dict[str, Any]:
    """Merge per-process dumps into one Chrome-trace document.

    Process ``i`` becomes pid ``i + 1`` (its lane), named by metadata
    events.  With ``deterministic=True`` wall timestamps are replaced
    by canonical-order ordinals (see the module docstring); the default
    keeps real timings for human inspection.
    """
    events: list[dict[str, Any]] = []
    meta: list[dict[str, Any]] = []
    dropped_total = 0
    for index, process in enumerate(processes):
        pid = index + 1
        meta.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "args": {"name": process.name},
            }
        )
        meta.append(
            {
                "name": "process_sort_index",
                "ph": "M",
                "pid": pid,
                "args": {"sort_index": index},
            }
        )
        lane = [_chrome_event(record, pid) for record in process.events]
        if deterministic:
            lane.sort(key=_canonical_key)
        events.extend(lane)
        dropped_total += process.dropped
    if deterministic:
        for ordinal, event in enumerate(events):
            event["ts"] = float(ordinal)
            event["dur"] = 1.0
    return {
        "traceEvents": meta + events,
        "displayTimeUnit": "ms",
        "otherData": {
            "dropped_spans": dropped_total,
            "processes": [p.name for p in processes],
            "deterministic": deterministic,
        },
    }


# -- critical-path analysis --------------------------------------------------


def _stats(durs_us: Sequence[float]) -> dict[str, float]:
    ordered = sorted(durs_us)
    ms = 1e-3
    return {
        "count": len(ordered),
        "mean_ms": (sum(ordered) / len(ordered)) * ms,
        "p50_ms": percentile_sorted(ordered, 50.0) * ms,
        "p95_ms": percentile_sorted(ordered, 95.0) * ms,
        "p99_ms": percentile_sorted(ordered, 99.0) * ms,
        "max_ms": ordered[-1] * ms,
    }


def _spans(doc: Mapping[str, Any]) -> Iterable[dict[str, Any]]:
    for event in doc.get("traceEvents", ()):
        if event.get("ph") == "X":
            yield event


def trace_summary(doc: Mapping[str, Any]) -> dict[str, Any]:
    """Lane/span/trace counts of a merged document (CI integrity checks)."""
    lanes: set[int] = set()
    traces: set[str] = set()
    spans = 0
    for event in _spans(doc):
        spans += 1
        lanes.add(event["pid"])
        trace_id = (event.get("args") or {}).get("trace_id")
        if trace_id:
            traces.add(trace_id)
    return {
        "processes": sorted(
            (doc.get("otherData") or {}).get("processes", ())
        ),
        "lanes": len(lanes),
        "spans": spans,
        "traces": len(traces),
        "dropped": (doc.get("otherData") or {}).get("dropped_spans", 0),
    }


def analyze_trace(doc: Mapping[str, Any]) -> dict[str, Any]:
    """Per-submission critical-path breakdown of a merged trace.

    Categories (all durations in milliseconds):

    * ``gateway_batch`` — whole ``gateway.submit_batch`` spans;
    * ``gateway_routing`` — batch time *not* spent waiting on the
      slowest worker (validation + ring routing + response merge);
    * ``gateway_forward`` — per-partition fan-out RPCs
      (``gateway.forward``), wire + worker time;
    * ``worker_queue`` — forward minus the matched worker-side span:
      transport + time queued in the worker's event loop;
    * ``worker_batch`` / ``worker_admission`` — worker-side handling;
    * ``scheduler_round`` and the engine phases — the paper's
      scheduling work itself.
    """
    by_name: dict[str, list[float]] = {}
    worker_by_parent: dict[str, float] = {}
    forwards: list[dict[str, Any]] = []
    batch_children: dict[str, list[float]] = {}
    for event in _spans(doc):
        name = event["name"]
        dur = float(event.get("dur", 0.0))
        by_name.setdefault(name, []).append(dur)
        args = event.get("args") or {}
        if name == "worker.submit_batch" and args.get("parent_id"):
            worker_by_parent[args["parent_id"]] = dur
        elif name == "gateway.forward":
            forwards.append(event)
            if args.get("parent_id"):
                batch_children.setdefault(args["parent_id"], []).append(dur)

    categories: dict[str, dict[str, float]] = {}

    def add(category: str, durs: Sequence[float]) -> None:
        if durs:
            categories[category] = _stats(durs)

    add("gateway_submit", by_name.get("gateway.submit", ()))
    add("gateway_batch", by_name.get("gateway.submit_batch", ()))
    add("gateway_forward", by_name.get("gateway.forward", ()))

    routing: list[float] = []
    for event in _spans(doc):
        if event["name"] != "gateway.submit_batch":
            continue
        span_id = (event.get("args") or {}).get("span_id")
        children = batch_children.get(span_id or "", ())
        if children:
            routing.append(max(0.0, float(event["dur"]) - max(children)))
    add("gateway_routing", routing)

    queue: list[float] = []
    matched = 0
    for event in forwards:
        span_id = (event.get("args") or {}).get("span_id")
        worker_dur = worker_by_parent.get(span_id or "")
        if worker_dur is not None:
            matched += 1
            queue.append(max(0.0, float(event["dur"]) - worker_dur))
    add("worker_queue", queue)

    add("worker_batch", by_name.get("worker.submit_batch", ()))
    add("worker_admission", by_name.get("worker.admission", ()))
    add("scheduler_round", by_name.get("round", ()))
    for phase in ("priority", "placement", "migration", "load_control", "rl_inference"):
        add(f"phase_{phase}", by_name.get(phase, ()))

    submissions = len(by_name.get("worker.admission", ()))
    return {
        "summary": trace_summary(doc),
        "submissions": submissions,
        "forward_spans": len(forwards),
        "forward_spans_matched": matched,
        "categories": categories,
    }


def render_trace_analysis(analysis: Mapping[str, Any], precision: int = 3) -> str:
    """The ``repro trace analyze`` text report."""
    summary = analysis["summary"]
    lines = [
        f"processes: {', '.join(summary['processes']) or '?'}"
        f"  (lanes={summary['lanes']})",
        f"spans: {summary['spans']}  traces: {summary['traces']}"
        f"  submissions: {analysis['submissions']}"
        f"  dropped: {summary['dropped']}",
        f"fan-out integrity: {analysis['forward_spans_matched']}"
        f"/{analysis['forward_spans']} forward spans matched to worker spans",
        "",
    ]
    rows = []
    for category, stats in analysis["categories"].items():
        rows.append(
            [
                category,
                int(stats["count"]),
                stats["p50_ms"],
                stats["p95_ms"],
                stats["p99_ms"],
                stats["mean_ms"],
                stats["max_ms"],
            ]
        )
    lines.append(
        format_table(
            ["category", "count", "p50_ms", "p95_ms", "p99_ms", "mean_ms", "max_ms"],
            rows,
            precision=precision,
        )
    )
    return "\n".join(lines)


# -- live cluster view (repro top) -------------------------------------------


def render_top(
    metrics: Mapping[str, Any],
    workers: Optional[Sequence[Mapping[str, Any]]] = None,
) -> str:
    """One frame of the ``repro top`` terminal view.

    ``metrics`` is the gateway's ``metrics`` verb result (cluster
    occupancy + per-partition gossip samples + gateway scalars);
    ``workers`` optionally the ``workers`` verb rows for restart
    counts and liveness.
    """
    gateway = metrics.get("gateway", {})
    cluster = metrics.get("cluster", {})
    partitions = metrics.get("partitions", {})
    lines = [
        "repro top — gateway cluster view",
        (
            f"workers: {len(partitions)}"
            f"  submitted: {_submitted_total(gateway)}"
            f"  overload O_c: {float(cluster.get('overload_degree', 0.0)):.3f}"
            f"  door: {'open' if cluster.get('admitting', True) else 'CLOSED'}"
        ),
        "",
    ]
    status = {str(row.get("partition")): row for row in (workers or ())}
    rows = []
    for partition in sorted(partitions, key=lambda p: int(p)):
        sample = partitions[partition]
        row_status = status.get(str(partition), {})
        if "error" in sample:
            rows.append([partition, "DOWN", 0, 0, "-", 0, 0, "-", 0])
            continue
        rows.append(
            [
                partition,
                "up" if row_status.get("alive", True) else "DOWN",
                int(sample.get("active_jobs", 0)),
                int(sample.get("queue_depth", 0)),
                f"{float(sample.get('overload_degree', 0.0)):.3f}",
                int(sample.get("admission_queue_depth", 0)),
                int(sample.get("jobs_submitted", 0)),
                f"{float(row_status.get('rtt_ms', 0.0)):.2f}",
                int(row_status.get("restarts", 0)),
            ]
        )
    lines.append(
        format_table(
            [
                "partition",
                "state",
                "active",
                "queue",
                "O_c",
                "adm_q",
                "submitted",
                "rtt_ms",
                "restarts",
            ],
            rows,
        )
    )
    return "\n".join(lines)


def _submitted_total(gateway_scalars: Mapping[str, Any]) -> int:
    total = 0.0
    for key, value in gateway_scalars.items():
        if key.startswith("gateway_submissions_total"):
            total += float(value)
    return int(total)
