"""Deterministic cross-process trace context.

A :class:`TraceContext` names one span in one distributed trace:
``trace_id`` identifies the whole request (one client submission or one
batch) and ``span_id`` identifies the sender's span, so the receiving
process can parent its own spans under it.  Both IDs are **pure
functions** of seeded inputs — SHA-256 digests of ``(seed, tenant,
submission index)`` for trace IDs and ``(trace_id, site)`` for span IDs
— never ``uuid4``/wall-clock, so the repo's bit-identical determinism
contracts extend to trace output (and lint rule ``REP007`` keeps it
that way).

The active context travels on a :class:`contextvars.ContextVar`, which
is correct both across threads and across asyncio tasks sharing one
thread (the gateway/daemon servers):
:class:`~repro.obs.tracing.Tracer` stamps every span it records with
whatever context is active, so instrumented code does not thread IDs
through call signatures.

Wire format (the optional ``trace`` envelope field of
:mod:`repro.service.protocol` requests, and the ``trace_id`` /
``parent_span_id`` payload fields of job specs)::

    {"trace_id": "9f86d081884c7d65", "span_id": "60303ae22b998861"}
"""

from __future__ import annotations

import hashlib
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass
from typing import Any, Iterator, Mapping, Optional

__all__ = [
    "TraceContext",
    "derive_trace_id",
    "derive_span_id",
    "root_context",
    "current_trace_context",
    "trace_context",
]

#: Domain separator so trace IDs never collide with other digests.
_TRACE_SALT = b"repro.trace/1:"

#: Hex digits kept per ID (8 bytes — plenty at any realistic scale).
ID_HEX_CHARS = 16


def _digest(material: str) -> str:
    h = hashlib.sha256(_TRACE_SALT + material.encode("utf-8"))
    return h.hexdigest()[:ID_HEX_CHARS]


def derive_trace_id(seed: int, tenant: str, index: int) -> str:
    """The trace ID of submission ``index`` from ``tenant`` under ``seed``.

    Deterministic: the same ``(seed, tenant, index)`` triple always
    yields the same 16-hex-char ID, in any process.
    """
    return _digest(f"trace:{seed}:{tenant}:{index}")

def derive_span_id(trace_id: str, site: str) -> str:
    """The span ID of instrumentation ``site`` within ``trace_id``.

    ``site`` names the code location uniquely *within one trace*
    (e.g. ``"gateway.forward:3"``), so no mutable counter is needed.
    """
    return _digest(f"span:{trace_id}:{site}")


@dataclass(frozen=True, slots=True)
class TraceContext:
    """One span's identity within a distributed trace."""

    trace_id: str
    span_id: str
    parent_id: Optional[str] = None

    def child(self, site: str) -> "TraceContext":
        """The context of a child span opened at ``site``."""
        return TraceContext(
            trace_id=self.trace_id,
            span_id=derive_span_id(self.trace_id, site),
            parent_id=self.span_id,
        )

    def to_wire(self) -> dict[str, str]:
        """The cross-process form: ``parent_id`` is process-local."""
        return {"trace_id": self.trace_id, "span_id": self.span_id}

    @classmethod
    def from_wire(cls, payload: Any) -> Optional["TraceContext"]:
        """Parse a wire dict; returns ``None`` on anything malformed."""
        if not isinstance(payload, Mapping):
            return None
        trace_id = payload.get("trace_id")
        span_id = payload.get("span_id")
        if not isinstance(trace_id, str) or not trace_id:
            return None
        if not isinstance(span_id, str) or not span_id:
            span_id = derive_span_id(trace_id, "root")
        return cls(trace_id=trace_id, span_id=span_id)


def root_context(
    seed: int, tenant: str, index: int, site: str = "client.submit"
) -> TraceContext:
    """The root context a client opens for one submission."""
    trace_id = derive_trace_id(seed, tenant, index)
    return TraceContext(trace_id=trace_id, span_id=derive_span_id(trace_id, site))


# -- active context (contextvar: asyncio-task- and thread-correct) ----------

_ACTIVE_TRACE: ContextVar[Optional[TraceContext]] = ContextVar(
    "repro_trace_context", default=None
)


def current_trace_context() -> Optional[TraceContext]:
    """The trace context active in this task/thread (``None`` if untagged)."""
    return _ACTIVE_TRACE.get()


@contextmanager
def trace_context(ctx: Optional[TraceContext]) -> Iterator[Optional[TraceContext]]:
    """Activate ``ctx`` for the dynamic extent of the ``with`` block.

    Spans recorded inside are stamped with it.  ``None`` is accepted and
    deactivates tagging, so call sites need no conditional.
    """
    token = _ACTIVE_TRACE.set(ctx)
    try:
        yield ctx
    finally:
        _ACTIVE_TRACE.reset(token)
