"""Scheduler-phase tracing with Chrome-trace-format export.

A :class:`Tracer` records *spans* — named, nestable intervals measured
on the ``time.perf_counter`` clock — and serializes them as Chrome trace
events (the ``chrome://tracing`` / Perfetto JSON format: complete ``X``
events with ``name``/``ph``/``ts``/``dur`` in microseconds).  The
scheduler round and its phases (:data:`SCHEDULER_PHASES`) are the spans
of interest; anything may open one.

Every stored span is stamped with the distributed trace context active
at close time (see :mod:`repro.obs.tracectx`) and a monotone ``seq``
counter that survives daemon snapshot/restore, so per-process dumps can
be merged into one cluster trace by
:mod:`repro.obs.distributed`.

:class:`NullTracer` is the disabled twin: ``enabled`` is False and it
never stores an event, so instrumented code costs one predicate per
span when tracing is off.  Span *timing* normally lives in
:mod:`repro.obs.observer`, which feeds both the tracer and the metrics
registry from a single ``perf_counter`` pair; processes without a full
observer (the gateway) use :meth:`Tracer.span` directly.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from time import perf_counter
from typing import Any, Optional

from repro.obs.tracectx import TraceContext, current_trace_context, trace_context

__all__ = [
    "SCHEDULER_PHASES",
    "SpanRecord",
    "Tracer",
    "NullTracer",
]

#: The five scheduler-phase span names (plus the enclosing "round").
SCHEDULER_PHASES: tuple[str, ...] = (
    "priority",
    "placement",
    "migration",
    "load_control",
    "rl_inference",
)


@dataclass(frozen=True, slots=True)
class SpanRecord:
    """One closed span."""

    name: str
    start_us: float
    dur_us: float
    depth: int
    args: Optional[dict[str, Any]] = None
    seq: int = 0
    trace_id: Optional[str] = None
    span_id: Optional[str] = None
    parent_id: Optional[str] = None

    def to_dict(self) -> dict[str, Any]:
        """Compact wire form (``None`` fields dropped) for trace dumps."""
        out: dict[str, Any] = {
            "name": self.name,
            "start_us": self.start_us,
            "dur_us": self.dur_us,
            "depth": self.depth,
            "seq": self.seq,
        }
        if self.args:
            out["args"] = self.args
        if self.trace_id is not None:
            out["trace_id"] = self.trace_id
        if self.span_id is not None:
            out["span_id"] = self.span_id
        if self.parent_id is not None:
            out["parent_id"] = self.parent_id
        return out

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "SpanRecord":
        """Inverse of :meth:`to_dict`."""
        return cls(
            name=payload["name"],
            start_us=payload["start_us"],
            dur_us=payload["dur_us"],
            depth=payload.get("depth", 0),
            args=payload.get("args"),
            seq=payload.get("seq", 0),
            trace_id=payload.get("trace_id"),
            span_id=payload.get("span_id"),
            parent_id=payload.get("parent_id"),
        )


class _NullTracerSpan:
    """Shared no-op span (the NullTracer's)."""

    __slots__ = ()

    def __enter__(self) -> "_NullTracerSpan":
        return self

    def __exit__(self, *exc_info: Any) -> bool:
        return False


_NULL_TRACER_SPAN = _NullTracerSpan()


class _TracerSpan:
    """A standalone timed span for processes without a full observer."""

    __slots__ = ("_tracer", "name", "args", "_epoch", "_ctx", "_token", "_start", "_depth")

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        epoch: float,
        ctx: Optional[TraceContext],
        args: Optional[dict[str, Any]],
    ) -> None:
        self._tracer = tracer
        self.name = name
        self.args = args
        self._epoch = epoch
        self._ctx = ctx
        self._token: Any = None

    def __enter__(self) -> "_TracerSpan":
        if self._ctx is not None:
            self._token = trace_context(self._ctx)
            self._token.__enter__()
        self._depth = self._tracer.push()
        self._start = perf_counter()
        return self

    def __exit__(self, *exc_info: Any) -> bool:
        elapsed = perf_counter() - self._start
        self._tracer.pop(
            self.name, self._start - self._epoch, elapsed, self._depth, self.args
        )
        if self._token is not None:
            self._token.__exit__(*exc_info)
        return False


class Tracer:
    """Collects spans for one run; exports Chrome trace JSON.

    Parameters
    ----------
    max_events:
        Ring guard for long-running daemons: once this many spans are
        stored, further spans are counted in :attr:`dropped` instead of
        kept, so the daemon's memory stays bounded.
    """

    enabled = True

    def __init__(self, max_events: int = 500_000) -> None:
        self.max_events = max_events
        self.events: list[SpanRecord] = []
        self.dropped = 0
        self._depth = 0
        self._seq = 0

    # -- recording (driven by Observer spans) ------------------------------

    def push(self) -> int:
        """Open a nesting level; returns the depth of the new span."""
        self._depth += 1
        return self._depth - 1

    def pop(
        self,
        name: str,
        start_s: float,
        dur_s: float,
        depth: int,
        args: Optional[dict[str, Any]] = None,
    ) -> None:
        """Close the innermost span and store its record.

        The span is stamped with the distributed trace context active in
        the calling task/thread (if any) and the next ``seq`` number.
        """
        self._depth = depth
        seq = self._seq
        self._seq += 1
        if len(self.events) >= self.max_events:
            self.dropped += 1
            return
        ctx = current_trace_context()
        self.events.append(
            SpanRecord(
                name=name,
                start_us=start_s * 1e6,
                dur_us=dur_s * 1e6,
                depth=depth,
                args=args,
                seq=seq,
                trace_id=ctx.trace_id if ctx is not None else None,
                span_id=ctx.span_id if ctx is not None else None,
                parent_id=ctx.parent_id if ctx is not None else None,
            )
        )

    def span(
        self,
        name: str,
        *,
        epoch: float = 0.0,
        ctx: Optional[TraceContext] = None,
        **args: Any,
    ) -> _TracerSpan:
        """Open a timed span directly on this tracer (context manager).

        ``epoch`` is the ``perf_counter`` origin for timestamps; ``ctx``
        (optional) is activated for the span's extent so it — and any
        nested spans — carry the trace context.
        """
        return _TracerSpan(self, name, epoch, ctx, args or None)

    # -- export ------------------------------------------------------------

    def chrome_events(self, pid: int = 1, tid: int = 1) -> list[dict[str, Any]]:
        """The spans as Chrome-trace complete (``ph: X``) events."""
        out = []
        for record in self.events:
            event: dict[str, Any] = {
                "name": record.name,
                "ph": "X",
                "cat": "scheduler",
                "ts": round(record.start_us, 3),
                "dur": round(record.dur_us, 3),
                "pid": pid,
                "tid": tid,
            }
            args = dict(record.args) if record.args else {}
            if record.trace_id is not None:
                args["trace_id"] = record.trace_id
                args["span_id"] = record.span_id
                if record.parent_id is not None:
                    args["parent_id"] = record.parent_id
            if args:
                event["args"] = args
            out.append(event)
        return out

    def to_chrome_trace(self) -> dict[str, Any]:
        """The full Chrome trace document (Perfetto-loadable)."""
        return {
            "traceEvents": self.chrome_events(),
            "displayTimeUnit": "ms",
            "otherData": {"dropped_spans": self.dropped},
        }

    def dump(self, role: str = "daemon", reset: bool = False) -> dict[str, Any]:
        """The collector wire form: raw span records plus identity.

        ``reset`` clears the stored events (the ``seq`` counter keeps
        counting) so repeated dumps stream increments.
        """
        out = {
            "role": role,
            "events": [record.to_dict() for record in self.events],
            "dropped": self.dropped,
        }
        if reset:
            self.events = []
        return out

    def write(self, path: str | Path) -> Path:
        """Serialize the trace document to ``path``; returns the path."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_chrome_trace()), encoding="utf-8")
        return path

    def __len__(self) -> int:
        return len(self.events)


class NullTracer:
    """The disabled tracer: records nothing, costs nothing."""

    enabled = False
    events: tuple[SpanRecord, ...] = ()
    dropped = 0

    def push(self) -> int:
        return 0

    def pop(
        self,
        name: str,
        start_s: float,
        dur_s: float,
        depth: int,
        args: Optional[dict[str, Any]] = None,
    ) -> None:
        pass

    def span(
        self,
        name: str,
        *,
        epoch: float = 0.0,
        ctx: Optional[TraceContext] = None,
        **args: Any,
    ) -> _NullTracerSpan:
        return _NULL_TRACER_SPAN

    def chrome_events(self, pid: int = 1, tid: int = 1) -> list[dict[str, Any]]:
        return []

    def to_chrome_trace(self) -> dict[str, Any]:
        return {"traceEvents": [], "displayTimeUnit": "ms"}

    def dump(self, role: str = "daemon", reset: bool = False) -> dict[str, Any]:
        return {"role": role, "events": [], "dropped": 0}

    def write(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_chrome_trace()), encoding="utf-8")
        return path

    def __len__(self) -> int:
        return 0
