"""Scheduler-phase tracing with Chrome-trace-format export.

A :class:`Tracer` records *spans* — named, nestable intervals measured
on the ``time.perf_counter`` clock — and serializes them as Chrome trace
events (the ``chrome://tracing`` / Perfetto JSON format: complete ``X``
events with ``name``/``ph``/``ts``/``dur`` in microseconds).  The
scheduler round and its phases (:data:`SCHEDULER_PHASES`) are the spans
of interest; anything may open one.

:class:`NullTracer` is the disabled twin: ``enabled`` is False and it
never stores an event, so instrumented code costs one predicate per
span when tracing is off.  Span *timing* lives in
:mod:`repro.obs.observer`, which feeds both the tracer and the metrics
registry from a single ``perf_counter`` pair.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Optional

__all__ = [
    "SCHEDULER_PHASES",
    "SpanRecord",
    "Tracer",
    "NullTracer",
]

#: The five scheduler-phase span names (plus the enclosing "round").
SCHEDULER_PHASES: tuple[str, ...] = (
    "priority",
    "placement",
    "migration",
    "load_control",
    "rl_inference",
)


@dataclass(frozen=True, slots=True)
class SpanRecord:
    """One closed span."""

    name: str
    start_us: float
    dur_us: float
    depth: int
    args: Optional[dict[str, Any]] = None


class Tracer:
    """Collects spans for one run; exports Chrome trace JSON.

    Parameters
    ----------
    max_events:
        Ring guard for long-running daemons: once this many spans are
        stored, further spans are counted in :attr:`dropped` instead of
        kept, so the daemon's memory stays bounded.
    """

    enabled = True

    def __init__(self, max_events: int = 500_000) -> None:
        self.max_events = max_events
        self.events: list[SpanRecord] = []
        self.dropped = 0
        self._depth = 0

    # -- recording (driven by Observer spans) ------------------------------

    def push(self) -> int:
        """Open a nesting level; returns the depth of the new span."""
        self._depth += 1
        return self._depth - 1

    def pop(
        self,
        name: str,
        start_s: float,
        dur_s: float,
        depth: int,
        args: Optional[dict[str, Any]] = None,
    ) -> None:
        """Close the innermost span and store its record."""
        self._depth = depth
        if len(self.events) >= self.max_events:
            self.dropped += 1
            return
        self.events.append(
            SpanRecord(
                name=name,
                start_us=start_s * 1e6,
                dur_us=dur_s * 1e6,
                depth=depth,
                args=args,
            )
        )

    # -- export ------------------------------------------------------------

    def chrome_events(self) -> list[dict[str, Any]]:
        """The spans as Chrome-trace complete (``ph: X``) events."""
        out = []
        for record in self.events:
            event: dict[str, Any] = {
                "name": record.name,
                "ph": "X",
                "cat": "scheduler",
                "ts": round(record.start_us, 3),
                "dur": round(record.dur_us, 3),
                "pid": 1,
                "tid": 1,
            }
            if record.args:
                event["args"] = record.args
            out.append(event)
        return out

    def to_chrome_trace(self) -> dict[str, Any]:
        """The full Chrome trace document (Perfetto-loadable)."""
        return {
            "traceEvents": self.chrome_events(),
            "displayTimeUnit": "ms",
            "otherData": {"dropped_spans": self.dropped},
        }

    def write(self, path: str | Path) -> Path:
        """Serialize the trace document to ``path``; returns the path."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_chrome_trace()), encoding="utf-8")
        return path

    def __len__(self) -> int:
        return len(self.events)


class NullTracer:
    """The disabled tracer: records nothing, costs nothing."""

    enabled = False
    events: tuple[SpanRecord, ...] = ()
    dropped = 0

    def push(self) -> int:
        return 0

    def pop(
        self,
        name: str,
        start_s: float,
        dur_s: float,
        depth: int,
        args: Optional[dict[str, Any]] = None,
    ) -> None:
        pass

    def chrome_events(self) -> list[dict[str, Any]]:
        return []

    def to_chrome_trace(self) -> dict[str, Any]:
        return {"traceEvents": [], "displayTimeUnit": "ms"}

    def write(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_chrome_trace()), encoding="utf-8")
        return path

    def __len__(self) -> int:
        return 0
