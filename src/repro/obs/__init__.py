"""Unified observability layer: metrics, tracing, per-job timelines.

Three backends behind one facade (:class:`Observer`):

* :mod:`repro.obs.metrics` — a registry of counters, gauges and
  fixed-bucket histograms, rendered in the Prometheus text exposition
  format (the daemon's ``metrics_text`` verb / ``repro ctl metrics
  --format prom``);
* :mod:`repro.obs.tracing` — nestable perf_counter spans around the
  scheduler phases, exported as Chrome-trace-format JSON
  (``chrome://tracing`` / Perfetto) via ``repro serve --trace`` or
  ``SimulationEngine(trace=...)``;
* :mod:`repro.obs.timeline` — per-job event timelines
  (submitted → queued → placed → migrated → stopped/completed) behind
  the ``history`` verb.

Distributed runs add two more modules: :mod:`repro.obs.tracectx`
(deterministic trace/span IDs that ride the NDJSON protocol across
client → gateway → worker) and :mod:`repro.obs.distributed` (the
gateway-side collector that merges per-process span dumps into one
Chrome trace with a lane per process, plus critical-path analysis and
the ``repro top`` renderer).  :mod:`repro.obs.promtext` owns the
Prometheus text-format mechanics (escaping, parsing, multi-worker
merging, validation).

Instrumentation is injectable — pass an :class:`Observer` into
:class:`~repro.sim.engine.SimulationEngine` or
:class:`~repro.service.daemon.SchedulerService` — with
:data:`NULL_OBSERVER` as the zero-cost default.  Schedulers report
phases through the module-level :func:`span` / :func:`publish_priorities`
helpers, which route to whatever observer the engine activated for the
current round, so every policy (the MLF family and all baselines) is
observed without carrying a reference around.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    LATENCY_BUCKETS,
    MetricFamily,
    MetricsRegistry,
    SIM_DURATION_BUCKETS,
)
from repro.obs.observer import (
    NULL_OBSERVER,
    NullObserver,
    Observer,
    current_observer,
    publish_priorities,
    set_current_observer,
    span,
)
from repro.obs.promtext import (
    merge_metrics_text,
    parse_metrics_text,
    validate_metrics_text,
)
from repro.obs.timeline import JOB_EVENTS, TimelineEvent, TimelineRecorder
from repro.obs.tracectx import (
    TraceContext,
    current_trace_context,
    derive_span_id,
    derive_trace_id,
    root_context,
    trace_context,
)
from repro.obs.tracing import NullTracer, SCHEDULER_PHASES, SpanRecord, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "JOB_EVENTS",
    "LATENCY_BUCKETS",
    "MetricFamily",
    "MetricsRegistry",
    "NULL_OBSERVER",
    "NullObserver",
    "NullTracer",
    "Observer",
    "SCHEDULER_PHASES",
    "SIM_DURATION_BUCKETS",
    "SpanRecord",
    "TimelineEvent",
    "TimelineRecorder",
    "TraceContext",
    "Tracer",
    "current_observer",
    "current_trace_context",
    "derive_span_id",
    "derive_trace_id",
    "merge_metrics_text",
    "parse_metrics_text",
    "publish_priorities",
    "root_context",
    "set_current_observer",
    "span",
    "trace_context",
    "validate_metrics_text",
]
