"""Metrics registry: counters, gauges and fixed-bucket histograms.

A :class:`MetricsRegistry` holds named *metric families*; a family owns
one child metric per label combination (Prometheus' data model, scaled
down).  The registry renders the standard text exposition format
(``# HELP`` / ``# TYPE`` / sample lines) so a daemon can answer a
``metrics_text`` request that Prometheus — or a human with ``curl`` —
can read, and produces flat scalar snapshots for the JSONL telemetry
stream.

Everything here is plain Python data: registries pickle (daemon
snapshots carry them), and updates are O(1) dict operations so the
simulation hot path can afford them.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Any, Iterable, Optional, Sequence

from repro.obs.promtext import escape_help, escape_label_value

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "LATENCY_BUCKETS",
    "SIM_DURATION_BUCKETS",
    "MetricFamily",
    "MetricsRegistry",
]

#: Wall-clock latency buckets (seconds): 100 µs .. 2.5 s.
LATENCY_BUCKETS: tuple[float, ...] = (
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
)

#: Simulated-duration buckets (seconds): 1 min .. 32 h.
SIM_DURATION_BUCKETS: tuple[float, ...] = (
    60.0,
    300.0,
    900.0,
    1800.0,
    3600.0,
    7200.0,
    14400.0,
    28800.0,
    57600.0,
    115200.0,
)


class Counter:
    """A monotonically increasing value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative)."""
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount

    def __getstate__(self) -> float:
        return self.value

    def __setstate__(self, state: float) -> None:
        self.value = state


class Gauge:
    """A value that can go up and down."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        """Replace the current value."""
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Adjust the current value."""
        self.value += amount

    def __getstate__(self) -> float:
        return self.value

    def __setstate__(self, state: float) -> None:
        self.value = state


class Histogram:
    """Fixed-bucket histogram (cumulative on render, like Prometheus).

    ``bucket_counts[i]`` counts observations ``<= buckets[i]``
    non-cumulatively; the implicit ``+Inf`` bucket is ``count``.
    """

    __slots__ = ("buckets", "bucket_counts", "sum", "count")

    def __init__(self, buckets: Sequence[float] = LATENCY_BUCKETS) -> None:
        self.buckets = tuple(sorted(buckets))
        if not self.buckets:
            raise ValueError("histogram needs at least one bucket bound")
        self.bucket_counts = [0] * len(self.buckets)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        """Record one observation."""
        index = bisect_left(self.buckets, value)
        if index < len(self.bucket_counts):
            self.bucket_counts[index] += 1
        self.sum += value
        self.count += 1

    def cumulative_counts(self) -> list[int]:
        """Counts per bucket, cumulative (the exposition-format shape)."""
        total = 0
        out = []
        for n in self.bucket_counts:
            total += n
            out.append(total)
        return out

    def __getstate__(self) -> dict[str, Any]:
        return {
            "buckets": self.buckets,
            "bucket_counts": self.bucket_counts,
            "sum": self.sum,
            "count": self.count,
        }

    def __setstate__(self, state: dict) -> None:
        self.buckets = state["buckets"]
        self.bucket_counts = state["bucket_counts"]
        self.sum = state["sum"]
        self.count = state["count"]


_KIND_FACTORIES = {
    "counter": lambda buckets: Counter(),
    "gauge": lambda buckets: Gauge(),
    "histogram": lambda buckets: Histogram(buckets or LATENCY_BUCKETS),
}


@dataclass
class MetricFamily:
    """One named metric with zero or more labelled children."""

    name: str
    kind: str
    help: str = ""
    label_names: tuple[str, ...] = ()
    buckets: Optional[tuple[float, ...]] = None
    children: dict[tuple[str, ...], object] = field(default_factory=dict)

    def labels(self, *values: object):
        """The child metric for one label-value combination."""
        if len(values) != len(self.label_names):
            raise ValueError(
                f"{self.name}: expected labels {self.label_names}, got {values}"
            )
        key = tuple(str(v) for v in values)
        child = self.children.get(key)
        if child is None:
            child = _KIND_FACTORIES[self.kind](self.buckets)
            self.children[key] = child
        return child

    # Unlabelled families proxy straight to their single child so call
    # sites read ``registry.counter("x").inc()``.

    def inc(self, amount: float = 1.0) -> None:
        """Increment the unlabelled child."""
        self.labels().inc(amount)

    def set(self, value: float) -> None:
        """Set the unlabelled child (gauges)."""
        self.labels().set(value)

    def observe(self, value: float) -> None:
        """Observe into the unlabelled child (histograms)."""
        self.labels().observe(value)

    def samples(self) -> Iterable[tuple[str, float]]:
        """(label-suffix, value) scalar samples; histograms expand."""
        for key in sorted(self.children):
            child = self.children[key]
            suffix = _label_suffix(self.label_names, key)
            if isinstance(child, Histogram):
                yield f"_count{suffix}", float(child.count)
                yield f"_sum{suffix}", child.sum
            else:
                yield suffix, child.value


class MetricsRegistry:
    """Get-or-create registry of metric families."""

    def __init__(self) -> None:
        self._families: dict[str, MetricFamily] = {}

    # -- family accessors --------------------------------------------------

    def counter(
        self, name: str, help: str = "", labels: Sequence[str] = ()
    ) -> MetricFamily:
        """Register (or fetch) a counter family."""
        return self._family(name, "counter", help, tuple(labels), None)

    def gauge(
        self, name: str, help: str = "", labels: Sequence[str] = ()
    ) -> MetricFamily:
        """Register (or fetch) a gauge family."""
        return self._family(name, "gauge", help, tuple(labels), None)

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Sequence[str] = (),
        buckets: Sequence[float] = LATENCY_BUCKETS,
    ) -> MetricFamily:
        """Register (or fetch) a histogram family."""
        return self._family(name, "histogram", help, tuple(labels), tuple(buckets))

    def families(self) -> list[MetricFamily]:
        """Every registered family, in registration order."""
        return list(self._families.values())

    def get(self, name: str) -> Optional[MetricFamily]:
        """Look up a family by name (``None`` when absent)."""
        return self._families.get(name)

    def _family(
        self,
        name: str,
        kind: str,
        help: str,
        label_names: tuple[str, ...],
        buckets: Optional[tuple[float, ...]],
    ) -> MetricFamily:
        family = self._families.get(name)
        if family is None:
            family = MetricFamily(
                name=name, kind=kind, help=help, label_names=label_names, buckets=buckets
            )
            self._families[name] = family
        elif family.kind != kind:
            raise ValueError(
                f"metric {name!r} is a {family.kind}, requested as {kind}"
            )
        return family

    # -- export ------------------------------------------------------------

    def render_text(self) -> str:
        """The Prometheus text exposition format.

        Families render in sorted-name order (not registration order),
        so the exposure is stable across processes that register the
        same families differently; label values and HELP text carry the
        format's backslash escapes.
        """
        lines: list[str] = []
        for name in sorted(self._families):
            family = self._families[name]
            if family.help:
                lines.append(f"# HELP {family.name} {escape_help(family.help)}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            for key in sorted(family.children):
                child = family.children[key]
                if isinstance(child, Histogram):
                    lines.extend(_histogram_lines(family, key, child))
                else:
                    suffix = _label_suffix(family.label_names, key)
                    lines.append(f"{family.name}{suffix} {_fmt(child.value)}")
        return "\n".join(lines) + "\n"

    def scalar_snapshot(self) -> dict[str, float]:
        """Flat name → value dict (histograms as ``_sum``/``_count``).

        Embedded into the per-round JSONL telemetry so a metrics
        time-series can be reconstructed offline from the log alone.
        """
        out: dict[str, float] = {}
        for family in self._families.values():
            for suffix, value in family.samples():
                out[family.name + suffix] = value
        return out

    def __getstate__(self) -> dict[str, Any]:
        return {"_families": self._families}

    def __setstate__(self, state: dict[str, Any]) -> None:
        self._families = state["_families"]


def _label_suffix(names: tuple[str, ...], values: tuple[str, ...]) -> str:
    if not names:
        return ""
    pairs = ",".join(
        f'{n}="{escape_label_value(v)}"' for n, v in zip(names, values)
    )
    return "{" + pairs + "}"


def _histogram_lines(
    family: MetricFamily, key: tuple[str, ...], hist: Histogram
) -> list[str]:
    lines = []
    cumulative = hist.cumulative_counts()
    for bound, count in zip(hist.buckets, cumulative):
        suffix = _label_suffix(
            family.label_names + ("le",), key + (_fmt(bound),)
        )
        lines.append(f"{family.name}_bucket{suffix} {count}")
    inf_suffix = _label_suffix(family.label_names + ("le",), key + ("+Inf",))
    lines.append(f"{family.name}_bucket{inf_suffix} {hist.count}")
    plain = _label_suffix(family.label_names, key)
    lines.append(f"{family.name}_sum{plain} {_fmt(hist.sum)}")
    lines.append(f"{family.name}_count{plain} {hist.count}")
    return lines


def _fmt(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))
