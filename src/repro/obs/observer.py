"""The observer facade: one object every layer reports into.

An :class:`Observer` bundles the three observability backends —
:class:`~repro.obs.metrics.MetricsRegistry`,
:class:`~repro.obs.tracing.Tracer` and
:class:`~repro.obs.timeline.TimelineRecorder` — behind the narrow
surface the engine and schedulers call:

* ``span(name, **args)`` — time a scheduler phase; feeds both the
  Chrome trace (when tracing is enabled) and the per-phase latency
  histogram from a single ``perf_counter`` pair;
* ``job_event(...)`` — append a per-job timeline transition and bump
  the matching counters;
* ``on_round(result)`` — refresh the round gauges/counters from a
  :class:`~repro.sim.engine.RoundResult`;
* ``publish_priorities(...)`` — schedulers expose the round's task
  priorities so timeline events can stamp them.

:data:`NULL_OBSERVER` (a :class:`NullObserver`) is the default wired
into the engine: every method is a no-op, so the batch simulator pays
nothing when observability is off.

Instrumentation is injectable (pass an observer to the engine or the
service) with a module-level default for code — the schedulers — that
is constructed far from the engine: the engine *activates* its observer
for the duration of each scheduler round, and :func:`span` /
:func:`publish_priorities` route to whatever is active in the current
context — a :class:`contextvars.ContextVar`, so asyncio tasks sharing
one thread (the gateway/daemon servers) stay isolated from each other
just like plain threads do.
"""

from __future__ import annotations

from contextvars import ContextVar
from time import perf_counter
from typing import Any, Mapping, Optional

from repro.obs.metrics import (
    LATENCY_BUCKETS,
    SIM_DURATION_BUCKETS,
    MetricsRegistry,
)
from repro.obs.timeline import TimelineEvent, TimelineRecorder
from repro.obs.tracing import NullTracer, Tracer

__all__ = [
    "Observer",
    "NullObserver",
    "NULL_OBSERVER",
    "current_observer",
    "set_current_observer",
    "span",
    "publish_priorities",
]


class _NullSpan:
    """Shared no-op context manager."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullObserver:
    """The do-nothing observer (default everywhere)."""

    enabled = False
    registry: Optional[MetricsRegistry] = None
    timeline: Optional[TimelineRecorder] = None
    tracer = NullTracer()

    def span(self, name: str, **args: Any) -> _NullSpan:
        """No-op span."""
        return _NULL_SPAN

    def job_event(self, job_id: str, event: str, time: float, **fields: Any) -> None:
        """No-op."""

    def on_round(self, result: Any) -> None:
        """No-op."""

    def publish_priorities(self, priorities: Mapping[str, float]) -> None:
        """No-op."""

    def priority_of(self, task_id: Optional[str]) -> Optional[float]:
        """Always unknown."""
        return None


NULL_OBSERVER = NullObserver()


class _Span:
    """Times one phase; reports to the tracer and the phase histogram."""

    __slots__ = ("_obs", "name", "args", "_start", "_depth")

    def __init__(self, obs: "Observer", name: str, args: Optional[dict[str, Any]]):
        self._obs = obs
        self.name = name
        self.args = args

    def __enter__(self) -> "_Span":
        self._depth = self._obs.tracer.push()
        self._start = perf_counter()
        return self

    def __exit__(self, *exc_info) -> bool:
        elapsed = perf_counter() - self._start
        obs = self._obs
        if obs.tracer.enabled:
            obs.tracer.pop(self.name, self._start - obs.trace_epoch, elapsed, self._depth, self.args)
        obs.phase_seconds.labels(self.name).observe(elapsed)
        return False


class Observer:
    """A live observer: registry + tracer + per-job timelines."""

    enabled = True

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer | NullTracer] = None,
        timeline: Optional[TimelineRecorder] = None,
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else NullTracer()
        self.timeline = timeline if timeline is not None else TimelineRecorder()
        #: perf_counter origin for trace timestamps.
        self.trace_epoch = perf_counter()
        self._priorities: Mapping[str, float] = {}
        self._register_families()

    def _register_families(self) -> None:
        reg = self.registry
        self.phase_seconds = reg.histogram(
            "mlfs_scheduler_phase_seconds",
            "Wall-clock latency of each scheduler phase span.",
            labels=("phase",),
            buckets=LATENCY_BUCKETS,
        )
        self.rounds_total = reg.counter(
            "mlfs_rounds_total", "Scheduler rounds executed."
        )
        self.events_total = reg.counter(
            "mlfs_events_processed_total", "Simulation events processed."
        )
        self.arrivals_total = reg.counter(
            "mlfs_job_arrivals_total", "Jobs that entered the scheduler."
        )
        self.completions_total = reg.counter(
            "mlfs_job_completions_total", "Jobs completed (any reason)."
        )
        self.stops_total = reg.counter(
            "mlfs_job_stops_total", "Jobs stopped early (load control / cancel)."
        )
        self.placements_total = reg.counter(
            "mlfs_task_placements_total", "Task placements applied."
        )
        self.migrations_total = reg.counter(
            "mlfs_task_migrations_total", "Task migrations applied."
        )
        self.evictions_total = reg.counter(
            "mlfs_task_evictions_total", "Task evictions applied."
        )
        self.fault_events_total = reg.counter(
            "mlfs_fault_events_total", "Fault-injection events applied."
        )
        self.fault_kills_total = reg.counter(
            "mlfs_fault_task_kills_total", "Tasks killed by injected faults."
        )
        self.failed_servers = reg.gauge(
            "mlfs_failed_servers", "Servers currently down (fault injection)."
        )
        self.queue_depth = reg.gauge(
            "mlfs_queue_depth", "Tasks waiting in the scheduler queue."
        )
        self.active_jobs = reg.gauge("mlfs_active_jobs", "Jobs currently active.")
        self.running_jobs = reg.gauge(
            "mlfs_running_jobs", "Jobs with an iteration in flight."
        )
        self.overload_degree = reg.gauge(
            "mlfs_overload_degree", "Cluster overload degree O_c."
        )
        self.sim_time = reg.gauge(
            "mlfs_sim_time_seconds", "Simulation clock position."
        )
        self.jct_seconds = reg.histogram(
            "mlfs_job_completion_seconds",
            "Job completion time (simulated seconds).",
            buckets=SIM_DURATION_BUCKETS,
        )

    # -- spans -------------------------------------------------------------

    def span(self, name: str, **args: Any) -> _Span:
        """Open a timed span (context manager)."""
        return _Span(self, name, args or None)

    # -- priorities --------------------------------------------------------

    def publish_priorities(self, priorities: Mapping[str, float]) -> None:
        """Schedulers expose this round's task-priority map."""
        self._priorities = priorities

    def priority_of(self, task_id: Optional[str]) -> Optional[float]:
        """Last published priority of a task (``None`` when unknown)."""
        if task_id is None:
            return None
        return self._priorities.get(task_id)

    # -- job timelines -----------------------------------------------------

    def job_event(
        self,
        job_id: str,
        event: str,
        time: float,
        round_index: Optional[int] = None,
        task_id: Optional[str] = None,
        server_id: Optional[int] = None,
        gpu_id: Optional[int] = None,
        detail: Optional[str] = None,
        **extra: Any,
    ) -> None:
        """Record one per-job transition and bump its counters."""
        self.timeline.record(
            job_id,
            TimelineEvent(
                time=time,
                event=event,
                round_index=round_index,
                task_id=task_id,
                server_id=server_id,
                gpu_id=gpu_id,
                priority=self.priority_of(task_id),
                detail=detail,
                extra=extra or None,
            ),
        )
        if event == "placed":
            self.placements_total.inc()
        elif event == "migrated":
            self.migrations_total.inc()
        elif event == "evicted":
            self.evictions_total.inc()
        elif event == "fault_killed":
            self.fault_kills_total.inc()
        elif event == "submitted":
            self.arrivals_total.inc()
        elif event in ("completed", "stopped"):
            self.completions_total.inc()
            if event == "stopped":
                self.stops_total.inc()
            jct = extra.get("jct")
            if jct is not None:
                self.jct_seconds.observe(jct)

    # -- per-round refresh -------------------------------------------------

    def on_round(self, result: Any) -> None:
        """Update gauges/counters from a ``RoundResult``."""
        if result.ticked:
            self.rounds_total.inc()
        if result.events_processed:
            self.events_total.inc(result.events_processed)
        faults = getattr(result, "faults", 0)
        if faults:
            self.fault_events_total.inc(faults)
        self.failed_servers.set(getattr(result, "failed_servers", 0))
        self.queue_depth.set(result.queue_depth)
        self.active_jobs.set(result.active_jobs)
        self.running_jobs.set(result.running_jobs)
        self.overload_degree.set(result.overload_degree)
        self.sim_time.set(result.now)

    # -- pickling (daemon snapshots) ---------------------------------------

    def __getstate__(self) -> dict[str, Any]:
        # Published priorities belong to the in-flight round only, and
        # cached family handles are re-derived from the registry.
        return {
            "registry": self.registry,
            "tracer": self.tracer,
            "timeline": self.timeline,
            "_priorities": {},
        }

    def __setstate__(self, state: dict[str, Any]) -> None:
        self.__dict__.update(state)
        self.trace_epoch = perf_counter()
        self._register_families()


# -- module-level routing (context-local active observer) -------------------
#
# A ContextVar, not threading.local: the gateway and service daemons run
# many asyncio tasks on one thread, and thread-local routing would leak
# an observer activated in one task into every other.  ContextVars are
# task-local under asyncio *and* thread-local under plain threads, so
# both the threaded sweep runner and the async servers route correctly.

_ACTIVE: ContextVar[Observer | NullObserver] = ContextVar(
    "repro_observer", default=NULL_OBSERVER
)


def current_observer() -> Observer | NullObserver:
    """The observer active in this task/thread (defaults to the null one)."""
    return _ACTIVE.get()


def set_current_observer(
    observer: Observer | NullObserver,
) -> Observer | NullObserver:
    """Swap the active observer; returns the previous one."""
    previous = _ACTIVE.get()
    _ACTIVE.set(observer)
    return previous


def span(name: str, **args: Any):
    """Open a span on the active observer (used by schedulers)."""
    return current_observer().span(name, **args)


def publish_priorities(priorities: Mapping[str, float]) -> None:
    """Publish task priorities to the active observer."""
    current_observer().publish_priorities(priorities)
