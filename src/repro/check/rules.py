"""The single rule registry behind ``repro lint`` and ``repro analyze``.

Every check the repo's correctness tooling enforces — the per-file lint
rules (REP000–REP007), the typing gate (TYP001) and the whole-program
analyzer families (REP100–REP103) — is declared here once, with its
rationale, scope and disable syntax.  ``repro lint --explain REPxxx``
and ``repro analyze --explain REPxxx`` both render from this table, so
the documentation cannot drift from the enforcement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = [
    "ANALYZE_RULES",
    "LINT_RULES",
    "REGISTRY",
    "RuleInfo",
    "explain",
    "rule_info",
]


@dataclass(frozen=True)
class RuleInfo:
    """One rule: stable id, short name, and its human documentation."""

    rule_id: str
    name: str
    summary: str
    #: Which tool enforces it: ``"lint"``, ``"analyze"`` or ``"typecheck"``.
    tool: str
    #: Why the rule exists (the invariant it protects).
    rationale: str
    #: Where it applies (packages / file scopes / graph scope).
    scope: str
    #: How to waive one finding.
    disable: str


def _lint_disable(rule_id: str) -> str:
    return f"# repro-lint: disable={rule_id} (inline, on the flagged line)"


def _analyze_disable(rule_id: str) -> str:
    return (
        f"# repro-analyze: disable={rule_id} (inline, on the flagged line),"
        " or record the finding in .repro-analyze-baseline.json"
        " via `repro analyze --write-baseline`"
    )


REGISTRY: dict[str, RuleInfo] = {
    rule.rule_id: rule
    for rule in (
        RuleInfo(
            "REP000",
            "syntax-error",
            "file does not parse",
            tool="lint",
            rationale="A file that does not parse cannot be linted; every"
            " other rule is meaningless until the syntax error is fixed.",
            scope="every linted file",
            disable="not suppressible; fix the syntax error",
        ),
        RuleInfo(
            "REP001",
            "wall-clock",
            "wall-clock read in simulated code; use the simulation clock",
            tool="lint",
            rationale="Snapshot/resume replays the exact schedule and two"
            " same-seed runs must be bit-identical; any time.time() /"
            " datetime.now() read inside simulated code couples results to"
            " the host clock and breaks deterministic replay.",
            scope="repro.core, repro.sim, repro.workload, repro.learncurve"
            " (and every file outside the repro package)",
            disable=_lint_disable("REP001"),
        ),
        RuleInfo(
            "REP002",
            "global-rng",
            "global RNG draw in simulated code; use an injected random.Random",
            tool="lint",
            rationale="Global RNG state is shared across the process, so a"
            " draw anywhere reorders every later draw; simulated code must"
            " draw only from an injected random.Random(seed) to keep runs"
            " reproducible and snapshot-restorable.",
            scope="repro.core, repro.sim, repro.workload, repro.learncurve"
            " (and every file outside the repro package)",
            disable=_lint_disable("REP002"),
        ),
        RuleInfo(
            "REP003",
            "mutable-default",
            "mutable default argument",
            tool="lint",
            rationale="A mutable default is created once and shared by every"
            " call, so state leaks across invocations — a classic source of"
            " order-dependent bugs in schedulers and tests alike.",
            scope="all linted files",
            disable=_lint_disable("REP003"),
        ),
        RuleInfo(
            "REP004",
            "bare-except",
            "bare except: hides real failures",
            tool="lint",
            rationale="A bare except catches SystemExit/KeyboardInterrupt and"
            " swallows programming errors that should crash loudly; catch"
            " the narrowest exception the code can actually handle.",
            scope="all linted files",
            disable=_lint_disable("REP004"),
        ),
        RuleInfo(
            "REP005",
            "float-priority-eq",
            "float ==/!= on a priority/score value; compare with a tolerance",
            tool="lint",
            rationale="Priorities and scores are floats produced by chains of"
            " arithmetic; exact equality is representation-dependent and has"
            " already caused one real scheduling bug (pareto float-==)."
            " Compare with a tolerance or on integral keys.",
            scope="all linted files (identifiers matching prio/score)",
            disable=_lint_disable("REP005"),
        ),
        RuleInfo(
            "REP006",
            "print-in-library",
            "print() in library code; route output through repro.obs",
            tool="lint",
            rationale="Library output must flow through the observability"
            " layer so daemons, sweeps and tests stay silent and structured;"
            " stdout belongs to user-facing entry points only.",
            scope="library code (entry points exempt: cli.py, __main__.py,"
            " and scripts under examples/ and benchmarks/)",
            disable=_lint_disable("REP006"),
        ),
        RuleInfo(
            "REP007",
            "nondeterministic-id",
            "non-deterministic ID source; derive ids via repro.obs.tracectx",
            tool="lint",
            rationale="Trace/span/job ids ride the wire protocol and golden"
            " traces; uuid/os.urandom/secrets would make two same-seed runs"
            " emit different ids, breaking bit-reproducible dumps. Ids must"
            " derive from seeded SHA-256 (repro.obs.tracectx).",
            scope="repro.obs, repro.service, repro.gateway"
            " (and every file outside the repro package)",
            disable=_lint_disable("REP007"),
        ),
        RuleInfo(
            "TYP001",
            "missing-annotations",
            "function missing parameter or return annotations",
            tool="typecheck",
            rationale="The strict packages are the correctness core; complete"
            " annotations keep mypy strict mode meaningful and let the"
            " dependency-free AST gate enforce the same contract without"
            " mypy installed.",
            scope="strict packages (repro.core, repro.cluster, repro.check,"
            " repro.exp, repro.api)",
            disable="# repro-lint: disable=TYP001 (inline, on the def line)",
        ),
        RuleInfo(
            "REP100",
            "async-blocking",
            "blocking call reachable from an event-loop coroutine",
            tool="analyze",
            rationale="The daemon and gateway are single event loops serving"
            " every client; one time.sleep, synchronous socket/file/"
            "subprocess call, or Future.result() reached from a coroutine"
            " stalls rounds, health polls and all connections at once. The"
            " analyzer walks the call graph from every async def in"
            " service/ and gateway/, so indirection does not hide the"
            " blocking call. Off-loop work belongs in asyncio.to_thread /"
            " run_in_executor.",
            scope="call graph reachable from async defs in repro.service"
            " and repro.gateway",
            disable=_analyze_disable("REP100"),
        ),
        RuleInfo(
            "REP101",
            "protocol-drift",
            "wire-protocol verb drift between declaration, handlers, issuers",
            tool="analyze",
            rationale="The NDJSON protocol spans three processes (client →"
            " gateway → worker daemons); a verb declared but unhandled, or"
            " handled but undeclared, or issued with parameters no handler"
            " reads, fails only at runtime across a process boundary. The"
            " analyzer cross-checks service/protocol.py VERBS against the"
            " daemon and gateway dispatchers and every issuing site.",
            scope="service/protocol.py vs service/daemon.py,"
            " gateway/server.py, service/client.py, cli.py",
            disable=_analyze_disable("REP101"),
        ),
        RuleInfo(
            "REP102",
            "snapshot-unpicklable",
            "unpicklable state reachable from a snapshot root",
            tool="analyze",
            rationale="Crash-safe restore pickles the whole service core;"
            " a lock, socket, open file, generator, executor or contextvar"
            " token reachable from a snapshot root makes every snapshot"
            " raise at save time — usually discovered only during an"
            " outage. Fields legitimately excluded must be dropped in"
            " __getstate__/__reduce__.",
            scope="type graph reachable from SchedulerService,"
            " SimulationEngine and FaultInjector",
            disable=_analyze_disable("REP102"),
        ),
        RuleInfo(
            "REP103",
            "determinism-taint",
            "wall-clock/entropy value flows into digests, telemetry or ids",
            tool="analyze",
            rationale="Digests, telemetry records and trace ids are the"
            " determinism contract's observable surface: two same-seed runs"
            " must produce identical bytes. A wall-clock or unseeded-RNG"
            " value flowing into them — possibly through several"
            " assignments and calls — silently breaks golden traces and"
            " digest-keyed sweep caching. The analyzer taints entropy"
            " sources and follows the flow through the call graph.",
            scope="flows into hashlib digests, round_record/TelemetryExporter"
            ".emit, derive_trace_id/derive_span_id/TraceContext",
            disable=_analyze_disable("REP103"),
        ),
    )
}

#: Rules enforced by the per-file lint (``repro lint``).
LINT_RULES: dict[str, RuleInfo] = {
    rid: rule for rid, rule in REGISTRY.items() if rule.tool == "lint"
}

#: Rule families enforced by the whole-program analyzer (``repro analyze``).
ANALYZE_RULES: dict[str, RuleInfo] = {
    rid: rule for rid, rule in REGISTRY.items() if rule.tool == "analyze"
}


def rule_info(rule_id: str) -> Optional[RuleInfo]:
    """Look up one rule by id (case-insensitive)."""
    return REGISTRY.get(rule_id.upper())


def explain(rule_id: str) -> str:
    """Render one rule's documentation (rationale, scope, disable syntax)."""
    rule = rule_info(rule_id)
    if rule is None:
        known = ", ".join(sorted(REGISTRY))
        return f"unknown rule {rule_id!r}; known rules: {known}"
    return "\n".join(
        [
            f"{rule.rule_id} [{rule.name}] — {rule.summary}",
            f"  tool:      repro {rule.tool}",
            f"  rationale: {rule.rationale}",
            f"  scope:     {rule.scope}",
            f"  disable:   {rule.disable}",
        ]
    )
