"""Whole-program analyzer (``repro analyze``).

Where :mod:`repro.check.lint` scans one file at a time, this module
builds a project-wide view of the package and checks the cross-module
invariants the three-process deployment (client → gateway → N worker
daemons) actually rests on:

Pass 1 — the program graph
    Every ``.py`` file is parsed once into a :class:`ModuleInfo`; from
    those the :class:`Project` derives a symbol table (every function,
    method and class by dotted qualname), an import graph, per-class
    attribute types (inferred from constructor calls and parameter
    annotations), a subclass index, and a resolved call graph.  Method
    calls resolve through inferred receiver types, and an inferred
    interface type (e.g. ``Scheduler``) fans out to every subclass
    override — which is how calls through the scheduler/baseline
    registries resolve to the concrete implementations.

Pass 2 — graph rule families
    =======  ==========================================================
    REP100   async-safety: blocking primitives (``time.sleep``, sync
             socket/file/subprocess ops, ``Future.result()``) reachable
             from any ``async def`` in ``service/``/``gateway/``,
             transitively through the call graph.
    REP101   protocol drift: ``VERBS`` in ``service/protocol.py`` vs.
             the daemon/gateway dispatchers vs. every issuing site in
             the client and CLI — unhandled, undeclared, unissued and
             parameter-mismatched verbs all flag.
    REP102   snapshot picklability: the type graph reachable from the
             snapshot roots must not hold locks, sockets, open files,
             generators, executors or contextvar tokens, unless the
             owning class excludes the field in ``__getstate__`` /
             ``__reduce__``.
    REP103   determinism taint: wall-clock / ``os.urandom`` /
             unseeded-RNG values must not flow — through assignments,
             returns and calls — into digest computation, telemetry
             records or trace-id derivation.
    =======  ==========================================================

Findings can be waived inline (``# repro-analyze: disable=REP100``) or
recorded in a checked-in baseline file
(:data:`BASELINE_FILENAME`, maintained with ``repro analyze
--write-baseline``): baselined findings report but do not fail the
build, new ones do.  Reporters: text, JSON and SARIF 2.1.0 (CI uploads
the SARIF for inline annotations).

Run as ``repro analyze [paths...]`` or ``python -m repro.check.graph``.
"""

from __future__ import annotations

import ast
import hashlib
import json
import re
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Optional, Sequence

from repro.check.lint import iter_python_files
from repro.check.rules import ANALYZE_RULES

__all__ = [
    "AnalyzerConfig",
    "BASELINE_FILENAME",
    "Finding",
    "Project",
    "analyze_paths",
    "analyze_project",
    "load_baseline",
    "main",
    "render_json",
    "render_text",
    "write_baseline",
]

#: Default checked-in baseline-suppression file (repo root).
BASELINE_FILENAME = ".repro-analyze-baseline.json"

#: Format tag stamped into the baseline file.
BASELINE_FORMAT = "repro.check.graph/baseline/1"

_DISABLE_COMMENT = re.compile(r"#\s*repro-analyze:\s*disable=([A-Za-z0-9_,\s]+)")


# ---------------------------------------------------------------------------
# Configuration
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class AnalyzerConfig:
    """Where each rule family anchors, as dotted module-name suffixes.

    Suffix matching keeps the config portable: scanning ``src`` names
    modules ``repro.service.daemon`` while the test fixture package
    names them ``analyze_pkg.service.daemon``; both match the suffix
    ``service.daemon``.
    """

    #: Package path components whose ``async def``s are event-loop
    #: coroutines (REP100 roots).
    async_packages: tuple[str, ...] = ("service", "gateway")
    #: Module (suffix) declaring the ``VERBS`` frozenset.
    protocol_module: str = "service.protocol"
    #: Modules (suffixes) dispatching verbs via ``request.op == "..."``.
    handler_modules: tuple[str, ...] = ("service.daemon", "gateway.server")
    #: Modules (suffixes) issuing verbs (``.call("...")`` /
    #: ``{"op": "..."}`` request bodies).
    issuer_modules: tuple[str, ...] = (
        "service.client",
        "gateway.server",
        "gateway.loadgen",
        "cli",
    )
    #: Class qualname suffixes whose instances are pickled whole for
    #: crash-safe snapshots (REP102 roots).
    snapshot_roots: tuple[str, ...] = (
        "service.daemon.SchedulerService",
        "sim.engine.SimulationEngine",
        "faults.injector.FaultInjector",
    )
    #: Call names whose arguments are determinism-sensitive sinks
    #: (trace-id derivation and telemetry records); hashlib digests are
    #: recognized via import tracking on top of these.
    taint_sink_calls: tuple[str, ...] = (
        "derive_trace_id",
        "derive_span_id",
        "round_record",
        "pass_record",
    )
    #: Class names whose constructor arguments are taint sinks.
    taint_sink_constructors: tuple[str, ...] = ("TraceContext",)
    #: Method names that are taint sinks when called on an attribute
    #: (``self.telemetry.emit(record)``) — resolved by receiver type
    #: when known, by name otherwise.
    taint_sink_methods: tuple[str, ...] = ("emit",)
    #: Classes taint-sink methods must belong to when the receiver type
    #: is resolvable (limits the by-name fallback).
    taint_sink_method_classes: tuple[str, ...] = ("TelemetryExporter",)


# ---------------------------------------------------------------------------
# Findings
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Finding:
    """One analyzer finding.

    ``fingerprint_key`` is a line-number-free stable key (rule-specific:
    verb names, class.attr paths, call chains) so baselines survive
    unrelated edits that shift lines.
    """

    path: str
    line: int
    col: int
    rule_id: str
    message: str
    fingerprint_key: str

    @property
    def fingerprint(self) -> str:
        """Stable id used by the baseline file.

        Keyed on the file *name* (not the full path) plus the
        rule-specific key, so absolute and relative invocations of the
        analyzer agree and baselines survive checkouts at different
        roots; the key itself carries module-qualified context.
        """
        raw = f"{self.rule_id}|{Path(self.path).name}|{self.fingerprint_key}"
        return hashlib.sha256(raw.encode("utf-8")).hexdigest()[:16]

    def as_dict(self) -> dict[str, object]:
        """JSON-ready representation (stable keys)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule_id,
            "name": ANALYZE_RULES[self.rule_id].name,
            "message": self.message,
            "fingerprint": self.fingerprint,
        }


# ---------------------------------------------------------------------------
# Pass 1: program graph
# ---------------------------------------------------------------------------


def _dotted(node: ast.expr) -> Optional[str]:
    """Render a Name/Attribute chain as ``a.b.c`` (None when dynamic)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _annotation_name(node: Optional[ast.expr]) -> Optional[str]:
    """The class name inside an annotation, unwrapping Optional/unions."""
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return None
    if isinstance(node, ast.Subscript):  # Optional[X], list[X], ...
        base = _dotted(node.value)
        if base and base.split(".")[-1] in ("Optional", "Final", "ClassVar"):
            return _annotation_name(node.slice)
        return None
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):  # X | None
        for side in (node.left, node.right):
            name = _annotation_name(side)
            if name is not None and name != "None":
                return name
        return None
    dotted = _dotted(node)
    if dotted in (None, "None"):
        return None
    return dotted.split(".")[-1]


@dataclass
class CallSite:
    """One ``ast.Call`` inside a function body."""

    target: str  # dotted textual callee, e.g. "self.engine.step"
    node: ast.Call
    awaited: bool


@dataclass
class FunctionInfo:
    """One function or method in the project symbol table."""

    qualname: str
    module: "ModuleInfo"
    name: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    class_name: Optional[str] = None
    calls: list[CallSite] = field(default_factory=list)
    #: local name -> class-name inferred from annotations/constructors.
    local_types: dict[str, str] = field(default_factory=dict)

    @property
    def is_async(self) -> bool:
        return isinstance(self.node, ast.AsyncFunctionDef)

    @property
    def display(self) -> str:
        if self.class_name:
            return f"{self.class_name}.{self.name}"
        return self.name


@dataclass
class AttrAssign:
    """One ``self.x = <expr>`` site inside a class."""

    attr: str
    value: ast.expr
    node: ast.stmt
    function: FunctionInfo


@dataclass
class ClassInfo:
    """One class: methods, bases, inferred attribute types."""

    qualname: str
    module: "ModuleInfo"
    name: str
    node: ast.ClassDef
    bases: list[str] = field(default_factory=list)
    methods: dict[str, FunctionInfo] = field(default_factory=dict)
    attr_assigns: list[AttrAssign] = field(default_factory=list)
    #: attr name -> class-name inferred from ``self.x = Cls(...)`` or
    #: annotated parameters assigned to attributes.
    attr_types: dict[str, str] = field(default_factory=dict)
    #: Attribute names the class's ``__getstate__``/``__reduce__``/
    #: ``__setstate__`` mention (treated as handled for REP102).
    pickle_excluded: set[str] = field(default_factory=set)
    has_getstate: bool = False


@dataclass
class ModuleInfo:
    """One parsed module."""

    name: str  # dotted, e.g. "repro.service.daemon"
    path: Path
    tree: ast.Module
    source_lines: list[str]
    #: local alias -> imported module ("np" -> "numpy").
    imports: dict[str, str] = field(default_factory=dict)
    #: local name -> "module.attr" for ``from x import y [as z]``.
    from_imports: dict[str, str] = field(default_factory=dict)
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    classes: dict[str, ClassInfo] = field(default_factory=dict)

    def suppressed(self, line: int) -> frozenset[str]:
        """Rules waived on ``line`` via ``# repro-analyze: disable=``."""
        if not 0 < line <= len(self.source_lines):
            return frozenset()
        match = _DISABLE_COMMENT.search(self.source_lines[line - 1])
        if not match:
            return frozenset()
        return frozenset(
            tok.strip().upper() for tok in match.group(1).split(",") if tok.strip()
        )


class _FunctionCollector(ast.NodeVisitor):
    """Collect call sites and local type hints inside one function body."""

    def __init__(self, info: FunctionInfo) -> None:
        self.info = info

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass  # nested defs are indexed separately

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]
    visit_Lambda = visit_FunctionDef  # type: ignore[assignment]

    def visit_Await(self, node: ast.Await) -> None:
        if isinstance(node.value, ast.Call):
            self._record_call(node.value, awaited=True)
            for child in ast.iter_child_nodes(node.value):
                self.visit(child)
        else:
            self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        self._record_call(node, awaited=False)
        self.generic_visit(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        self._infer_assign(node.targets, node.value)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        name = _annotation_name(node.annotation)
        if isinstance(node.target, ast.Name) and name:
            self.info.local_types[node.target.id] = name
        if node.value is not None:
            self._infer_assign([node.target], node.value)
        self.generic_visit(node)

    def _record_call(self, node: ast.Call, awaited: bool) -> None:
        target = _dotted(node.func)
        if target is not None:
            self.info.calls.append(CallSite(target=target, node=node, awaited=awaited))

    def _infer_assign(self, targets: list[ast.expr], value: ast.expr) -> None:
        type_name: Optional[str] = None
        if isinstance(value, ast.Call):
            dotted = _dotted(value.func)
            if dotted:
                type_name = dotted.split(".")[-1]
        elif isinstance(value, ast.Name):
            type_name = self.info.local_types.get(value.id)
        if type_name is None:
            return
        for target in targets:
            if isinstance(target, ast.Name):
                self.info.local_types[target.id] = type_name


class Project:
    """The whole-program symbol table, import graph and call graph."""

    def __init__(self, config: Optional[AnalyzerConfig] = None) -> None:
        self.config = config or AnalyzerConfig()
        self.modules: dict[str, ModuleInfo] = {}
        #: function qualname -> FunctionInfo (symbol table).
        self.functions: dict[str, FunctionInfo] = {}
        #: class qualname -> ClassInfo.
        self.classes: dict[str, ClassInfo] = {}
        #: bare class name -> [ClassInfo] (usually one).
        self.class_by_name: dict[str, list[ClassInfo]] = {}
        #: method name -> [FunctionInfo] across all classes (CHA table).
        self.method_index: dict[str, list[FunctionInfo]] = {}
        #: class name -> direct subclasses (by ClassInfo).
        self.subclasses: dict[str, list[ClassInfo]] = {}
        self.errors: list[Finding] = []

    # -- loading -----------------------------------------------------------

    @classmethod
    def load(
        cls, paths: Iterable[str | Path], config: Optional[AnalyzerConfig] = None
    ) -> "Project":
        """Parse every ``.py`` file under ``paths`` into one project."""
        project = cls(config)
        for file_path, module_name in _discover_modules(paths):
            project._load_module(file_path, module_name)
        project._index()
        return project

    def _load_module(self, path: Path, name: str) -> None:
        try:
            source = path.read_text(encoding="utf-8")
            tree = ast.parse(source, filename=str(path))
        except (OSError, SyntaxError) as exc:
            self.errors.append(
                Finding(
                    path=str(path),
                    line=getattr(exc, "lineno", 1) or 1,
                    col=0,
                    rule_id="REP100",
                    message=f"module failed to parse: {exc}",
                    fingerprint_key=f"parse-error:{name}",
                )
            )
            return
        module = ModuleInfo(
            name=name, path=path, tree=tree, source_lines=source.splitlines()
        )
        self._collect_imports(module)
        self._collect_defs(module)
        self.modules[name] = module

    def _collect_imports(self, module: ModuleInfo) -> None:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    bound = alias.asname or alias.name.split(".")[0]
                    module.imports[bound] = alias.name
            elif isinstance(node, ast.ImportFrom) and node.module:
                for alias in node.names:
                    bound = alias.asname or alias.name
                    module.from_imports[bound] = f"{node.module}.{alias.name}"

    def _collect_defs(self, module: ModuleInfo) -> None:
        for node in module.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._add_function(module, node, class_info=None)
            elif isinstance(node, ast.ClassDef):
                self._add_class(module, node)

    def _add_class(self, module: ModuleInfo, node: ast.ClassDef) -> None:
        qualname = f"{module.name}.{node.name}"
        info = ClassInfo(qualname=qualname, module=module, name=node.name, node=node)
        for base in node.bases:
            dotted = _dotted(base)
            if dotted:
                info.bases.append(dotted.split(".")[-1])
        for item in node.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                fn = self._add_function(module, item, class_info=info)
                info.methods[item.name] = fn
                if item.name in ("__getstate__", "__reduce__", "__reduce_ex__"):
                    info.has_getstate = True
                if item.name in (
                    "__getstate__",
                    "__setstate__",
                    "__reduce__",
                    "__reduce_ex__",
                ):
                    for sub in ast.walk(item):
                        if isinstance(sub, ast.Constant) and isinstance(
                            sub.value, str
                        ):
                            info.pickle_excluded.add(sub.value)
        self._collect_attr_assigns(info)
        module.classes[node.name] = info
        self.classes[qualname] = info

    def _add_function(
        self,
        module: ModuleInfo,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        class_info: Optional[ClassInfo],
    ) -> FunctionInfo:
        scope = f"{class_info.name}." if class_info else ""
        info = FunctionInfo(
            qualname=f"{module.name}.{scope}{node.name}",
            module=module,
            name=node.name,
            node=node,
            class_name=class_info.name if class_info else None,
        )
        # Parameter annotations seed local type inference.
        args = node.args
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            ann = _annotation_name(arg.annotation)
            if ann:
                info.local_types[arg.arg] = ann
        collector = _FunctionCollector(info)
        for stmt in node.body:
            collector.visit(stmt)
        self.functions[info.qualname] = info
        return info

    def _collect_attr_assigns(self, info: ClassInfo) -> None:
        for method in info.methods.values():
            for stmt in ast.walk(method.node):
                if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                    targets = (
                        stmt.targets
                        if isinstance(stmt, ast.Assign)
                        else [stmt.target]
                    )
                    value = stmt.value
                    if value is None:
                        continue
                    for target in targets:
                        if (
                            isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"
                        ):
                            info.attr_assigns.append(
                                AttrAssign(
                                    attr=target.attr,
                                    value=value,
                                    node=stmt,
                                    function=method,
                                )
                            )
                            self._infer_attr_type(info, method, target.attr, value)

    def _infer_attr_type(
        self,
        info: ClassInfo,
        method: FunctionInfo,
        attr: str,
        value: ast.expr,
    ) -> None:
        if isinstance(value, ast.Call):
            dotted = _dotted(value.func)
            if dotted:
                info.attr_types.setdefault(attr, dotted.split(".")[-1])
        elif isinstance(value, ast.Name):
            ann = method.local_types.get(value.id)
            if ann:
                info.attr_types.setdefault(attr, ann)
        elif isinstance(value, (ast.IfExp, ast.BoolOp)):
            for sub in ast.walk(value):
                if isinstance(sub, ast.Call):
                    dotted = _dotted(sub.func)
                    if dotted:
                        info.attr_types.setdefault(attr, dotted.split(".")[-1])
                        break

    def _index(self) -> None:
        for cls in self.classes.values():
            self.class_by_name.setdefault(cls.name, []).append(cls)
            for name, method in cls.methods.items():
                self.method_index.setdefault(name, []).append(method)
        for cls in self.classes.values():
            for base in cls.bases:
                self.subclasses.setdefault(base, []).append(cls)

    # -- lookups -----------------------------------------------------------

    def modules_matching(self, suffix: str) -> list[ModuleInfo]:
        """Modules whose dotted name equals or ends with ``.suffix``."""
        return [
            m
            for name, m in sorted(self.modules.items())
            if name == suffix or name.endswith("." + suffix)
        ]

    def class_matching(self, suffix: str) -> Optional[ClassInfo]:
        """The class whose qualname equals or ends with ``.suffix``."""
        for qualname, cls in sorted(self.classes.items()):
            if qualname == suffix or qualname.endswith("." + suffix):
                return cls
        return None

    def resolve_class(self, name: str, module: ModuleInfo) -> Optional[ClassInfo]:
        """Resolve a bare class name as seen from ``module``."""
        if name in module.classes:
            return module.classes[name]
        imported = module.from_imports.get(name)
        if imported:
            target = imported.split(".")[-1]
            for cls in self.class_by_name.get(target, []):
                return cls
        for cls in self.class_by_name.get(name, []):
            return cls
        return None

    def _class_and_subclass_methods(
        self, cls: ClassInfo, method: str
    ) -> list[FunctionInfo]:
        """``cls``'s own/ inherited ``method`` plus every subclass override."""
        out: list[FunctionInfo] = []
        seen: set[str] = set()
        stack = [cls]
        while stack:
            current = stack.pop()
            if current.qualname in seen:
                continue
            seen.add(current.qualname)
            if method in current.methods:
                out.append(current.methods[method])
            stack.extend(self.subclasses.get(current.name, []))
        if not out:
            # Inherited implementation: look up the base chain.
            for base in cls.bases:
                base_cls = self.resolve_class(base, cls.module)
                if base_cls and base_cls.qualname not in seen:
                    out.extend(self._class_and_subclass_methods(base_cls, method))
        return out

    def receiver_type(
        self, chain: list[str], fn: FunctionInfo
    ) -> Optional[ClassInfo]:
        """Infer the class of ``chain`` (e.g. ``["self", "engine"]``)."""
        if not chain:
            return None
        head, *rest = chain
        current: Optional[ClassInfo]
        if head in ("self", "cls") and fn.class_name:
            current = self.resolve_class(fn.class_name, fn.module)
        else:
            type_name = fn.local_types.get(head)
            current = (
                self.resolve_class(type_name, fn.module) if type_name else None
            )
        for attr in rest:
            if current is None:
                return None
            type_name = self._attr_type(current, attr)
            current = (
                self.resolve_class(type_name, current.module) if type_name else None
            )
        return current

    def _attr_type(self, cls: ClassInfo, attr: str) -> Optional[str]:
        seen: set[str] = set()
        stack = [cls]
        while stack:
            current = stack.pop()
            if current.qualname in seen:
                continue
            seen.add(current.qualname)
            if attr in current.attr_types:
                return current.attr_types[attr]
            for base in current.bases:
                base_cls = self.resolve_class(base, current.module)
                if base_cls:
                    stack.append(base_cls)
        return None

    def resolve_call(self, site: CallSite, fn: FunctionInfo) -> list[FunctionInfo]:
        """Resolve one call site to project functions (possibly several).

        Resolution order: local/imported plain functions, then methods
        through the inferred receiver type (fanning out to subclass
        overrides so registry-dispatched scheduler/baseline calls
        resolve), then class constructors (``__init__``).  Unresolvable
        dynamic calls return ``[]`` rather than guessing.
        """
        parts = site.target.split(".")
        module = fn.module
        if len(parts) == 1:
            name = parts[0]
            qual = f"{module.name}.{name}"
            if qual in self.functions:
                return [self.functions[qual]]
            imported = self.from_imports_target(module, name)
            if imported:
                return imported
            cls = self.resolve_class(name, module)
            if cls and "__init__" in cls.methods:
                return [cls.methods["__init__"]]
            return []
        *chain, method = parts
        # ``mod.func()`` through a module import.
        if len(chain) == 1 and chain[0] in module.imports:
            imported_module = module.imports[chain[0]]
            target = self.modules.get(imported_module)
            if target is None:
                for name, candidate in self.modules.items():
                    if name == imported_module or name.endswith(
                        "." + imported_module
                    ):
                        target = candidate
                        break
            if target is not None:
                qual = f"{target.name}.{method}"
                if qual in self.functions:
                    return [self.functions[qual]]
                cls = target.classes.get(method)
                if cls and "__init__" in cls.methods:
                    return [cls.methods["__init__"]]
            return []
        receiver = self.receiver_type(chain, fn)
        if receiver is not None:
            return self._class_and_subclass_methods(receiver, method)
        # ``ClassName.method`` static reference.
        if len(chain) == 1:
            cls = self.resolve_class(chain[0], module)
            if cls is not None:
                return self._class_and_subclass_methods(cls, method)
        return []

    def from_imports_target(
        self, module: ModuleInfo, name: str
    ) -> list[FunctionInfo]:
        """Resolve ``from x import name`` to the defining module's function."""
        imported = module.from_imports.get(name)
        if not imported:
            return []
        target_module, _, attr = imported.rpartition(".")
        for mod_name, mod in self.modules.items():
            if mod_name == target_module or mod_name.endswith("." + target_module):
                qual = f"{mod_name}.{attr}"
                if qual in self.functions:
                    return [self.functions[qual]]
                cls = mod.classes.get(attr)
                if cls and "__init__" in cls.methods:
                    return [cls.methods["__init__"]]
        return []


def _discover_modules(
    paths: Iterable[str | Path],
) -> Iterator[tuple[Path, str]]:
    """Yield (file, dotted module name) pairs for every ``.py`` input.

    A directory that is itself a package (``__init__.py``) anchors names
    at its own name (``analyze_pkg.service.daemon``); a plain directory
    anchors at its children (scanning ``src`` yields ``repro.*``).
    """
    for entry in paths:
        root = Path(entry)
        if root.is_dir():
            base = root.parent if (root / "__init__.py").exists() else root
            for file_path in iter_python_files([root]):
                rel = file_path.relative_to(base)
                parts = list(rel.with_suffix("").parts)
                if parts[-1] == "__init__":
                    parts = parts[:-1]
                if not parts:
                    continue
                yield file_path, ".".join(parts)
        elif root.suffix == ".py":
            yield root, root.stem


# ---------------------------------------------------------------------------
# REP100: async-safety
# ---------------------------------------------------------------------------

#: Blocking module-level callables: dotted-name suffixes after import
#: resolution (``time.sleep`` also matches ``from time import sleep``).
_BLOCKING_MODULE_CALLS = {
    "time.sleep": "time.sleep()",
    "socket.socket": "socket.socket() construction",
    "socket.create_connection": "socket.create_connection()",
    "subprocess.run": "subprocess.run()",
    "subprocess.call": "subprocess.call()",
    "subprocess.check_call": "subprocess.check_call()",
    "subprocess.check_output": "subprocess.check_output()",
    "subprocess.Popen": "subprocess.Popen()",
    "os.system": "os.system()",
    "os.popen": "os.popen()",
    "pickle.dump": "pickle.dump() on a file",
    "pickle.load": "pickle.load() from a file",
}

#: Blocking bare builtins.
_BLOCKING_BUILTINS = {"open": "open() file I/O"}

#: Blocking terminal attributes (method calls), matched on the call name
#: when the receiver type is unknown.  ``.result()``/``.wait()``/
#: ``.join()`` are the synchronous rendezvous of futures, subprocesses,
#: events and threads; awaited calls never match (the Await wrapper is
#: tracked per call site).
_BLOCKING_METHODS = {
    "read_text": "Path.read_text() file I/O",
    "write_text": "Path.write_text() file I/O",
    "read_bytes": "Path.read_bytes() file I/O",
    "write_bytes": "Path.write_bytes() file I/O",
    "result": "Future.result() blocking wait",
    "communicate": "Popen.communicate() blocking wait",
}

#: Methods treated as blocking only when the receiver is not a project
#: class (project ``.wait()``/``.join()`` are usually domain methods).
_BLOCKING_METHODS_CONSERVATIVE = {
    "wait": "blocking wait()",
    "join": "blocking join()",
}


def _blocking_primitive(site: CallSite, fn: FunctionInfo, project: Project) -> Optional[str]:
    """Describe the blocking primitive at ``site`` (None when not one)."""
    if site.awaited:
        return None
    target = site.target
    parts = target.split(".")
    module = fn.module
    if len(parts) == 1:
        name = parts[0]
        if name in _BLOCKING_BUILTINS and name not in module.from_imports:
            return _BLOCKING_BUILTINS[name]
        imported = module.from_imports.get(name)
        if imported in _BLOCKING_MODULE_CALLS:
            return _BLOCKING_MODULE_CALLS[imported]
        return None
    head, tail = parts[0], parts[-1]
    resolved_head = module.imports.get(head)
    if resolved_head:
        dotted = f"{resolved_head}.{tail}"
        if dotted in _BLOCKING_MODULE_CALLS:
            return _BLOCKING_MODULE_CALLS[dotted]
    if tail == "open" and parts[-2].lower().endswith("path"):
        return "Path.open() file I/O"
    if tail in _BLOCKING_METHODS:
        return _BLOCKING_METHODS[tail]
    if tail in _BLOCKING_METHODS_CONSERVATIVE:
        receiver = project.receiver_type(parts[:-1], fn)
        if receiver is None and not project.resolve_call(site, fn):
            return _BLOCKING_METHODS_CONSERVATIVE[tail]
    return None


def _check_async_safety(project: Project, config: AnalyzerConfig) -> list[Finding]:
    findings: list[Finding] = []
    roots = [
        fn
        for fn in project.functions.values()
        if fn.is_async
        and any(pkg in fn.module.name.split(".") for pkg in config.async_packages)
    ]
    #: (blocking call site id, primitive) -> first chain that reached it.
    reported: set[tuple[str, int, int]] = set()
    for root in sorted(roots, key=lambda f: f.qualname):
        stack: list[tuple[FunctionInfo, tuple[str, ...]]] = [
            (root, (root.display,))
        ]
        visited: set[str] = set()
        while stack:
            fn, chain = stack.pop()
            if fn.qualname in visited or len(chain) > 12:
                continue
            visited.add(fn.qualname)
            for site in fn.calls:
                primitive = _blocking_primitive(site, fn, project)
                line = site.node.lineno
                if primitive is not None:
                    if {
                        "REP100",
                        "ALL",
                    } & fn.module.suppressed(line):
                        continue
                    key = (str(fn.module.path), line, site.node.col_offset)
                    if key in reported:
                        continue
                    reported.add(key)
                    via = " -> ".join(chain)
                    findings.append(
                        Finding(
                            path=str(fn.module.path),
                            line=line,
                            col=site.node.col_offset,
                            rule_id="REP100",
                            message=(
                                f"{primitive} on the event loop, reachable"
                                f" from async {root.display}()"
                                + (
                                    f" via {via}"
                                    if len(chain) > 1
                                    else ""
                                )
                            ),
                            fingerprint_key=(
                                f"{primitive}|{fn.qualname}|{site.target}"
                            ),
                        )
                    )
                    continue
                for callee in project.resolve_call(site, fn):
                    if callee.qualname not in visited:
                        stack.append((callee, chain + (callee.display,)))
    return findings


# ---------------------------------------------------------------------------
# REP101: protocol exhaustiveness / drift
# ---------------------------------------------------------------------------


def _declared_verbs(module: ModuleInfo) -> tuple[Optional[ast.AST], set[str]]:
    for node in module.tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id == "VERBS":
                    verbs = {
                        sub.value
                        for sub in ast.walk(node.value)
                        if isinstance(sub, ast.Constant)
                        and isinstance(sub.value, str)
                    }
                    return node, verbs
    return None, set()


def _handled_verbs(module: ModuleInfo) -> dict[str, list[ast.Compare]]:
    """Verbs dispatched via ``request.op == "..."`` / ``op == "..."``."""
    handled: dict[str, list[ast.Compare]] = {}
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Compare) or len(node.ops) != 1:
            continue
        if not isinstance(node.ops[0], (ast.Eq, ast.In)):
            continue
        left = node.left
        left_name = (
            left.attr
            if isinstance(left, ast.Attribute)
            else left.id
            if isinstance(left, ast.Name)
            else None
        )
        if left_name != "op":
            continue
        for sub in ast.walk(node.comparators[0]):
            if isinstance(sub, ast.Constant) and isinstance(sub.value, str):
                handled.setdefault(sub.value, []).append(node)
    return handled


def _handler_params(module: ModuleInfo) -> dict[str, Optional[set[str]]]:
    """Per-verb parameter names the dispatcher reads.

    Walks each ``if request.op == "verb":`` branch for
    ``params.get("name")`` / ``params["name"]`` reads.  A branch that
    uses ``params`` wholesale (e.g. ``JobSpec.from_payload(params)``)
    reads everything — recorded as ``None`` (wildcard).
    """
    out: dict[str, Optional[set[str]]] = {}
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.If):
            continue
        test = node.test
        if not isinstance(test, ast.Compare) or len(test.ops) != 1:
            continue
        left = test.left
        left_name = (
            left.attr
            if isinstance(left, ast.Attribute)
            else left.id
            if isinstance(left, ast.Name)
            else None
        )
        if left_name != "op" or not isinstance(test.ops[0], ast.Eq):
            continue
        comparator = test.comparators[0]
        if not (
            isinstance(comparator, ast.Constant)
            and isinstance(comparator.value, str)
        ):
            continue
        verb = comparator.value
        reads: set[str] = set()
        wildcard = False
        for sub in ast.walk(node):
            if isinstance(sub, ast.Call):
                func = sub.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr == "get"
                    and isinstance(func.value, ast.Name)
                    and func.value.id == "params"
                    and sub.args
                    and isinstance(sub.args[0], ast.Constant)
                ):
                    reads.add(str(sub.args[0].value))
                    continue
            if isinstance(sub, ast.Subscript) and (
                isinstance(sub.value, ast.Name) and sub.value.id == "params"
            ):
                index = sub.slice
                if isinstance(index, ast.Constant) and isinstance(index.value, str):
                    reads.add(str(index.value))
                continue
            if isinstance(sub, ast.Name) and sub.id == "params":
                parent_is_read = False  # bare ``params`` use → wildcard
                del parent_is_read
                wildcard = True
        # ``params`` appearing only inside the reads above still trips the
        # wildcard scan; narrow it: wildcard only when reads are empty.
        previous = out.get(verb)
        current: Optional[set[str]] = None if (wildcard and not reads) else reads
        if previous is None and verb in out:
            current = None
        elif previous is not None and current is not None:
            current = previous | current
        out[verb] = current
    return out


#: Envelope keys every request may carry; never parameter drift.
_ENVELOPE_KEYS = {"op", "id", "trace"}


def _issued_verbs(
    module: ModuleInfo,
) -> dict[str, list[tuple[ast.Call | ast.Dict, set[str], bool]]]:
    """Verbs issued by a module, with the parameter keys each site sends.

    Two issue shapes: ``client.call("verb", k=v, ...)`` and request-body
    dict literals ``{"op": "verb", ...}``.  A ``**kwargs`` splat makes
    the parameter set open-ended (recorded via the bool flag).
    """
    issued: dict[str, list[tuple[ast.Call | ast.Dict, set[str], bool]]] = {}
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Call):
            func = node.func
            name = (
                func.attr
                if isinstance(func, ast.Attribute)
                else func.id
                if isinstance(func, ast.Name)
                else None
            )
            if (
                name == "call"
                and node.args
                and isinstance(node.args[0], ast.Constant)
                and isinstance(node.args[0].value, str)
            ):
                verb = node.args[0].value
                params = {
                    kw.arg
                    for kw in node.keywords
                    if kw.arg is not None and not kw.arg.startswith("_")
                }
                dynamic = any(kw.arg is None for kw in node.keywords)
                issued.setdefault(verb, []).append((node, params, dynamic))
        elif isinstance(node, ast.Dict):
            keys = [
                k.value
                for k in node.keys
                if isinstance(k, ast.Constant) and isinstance(k.value, str)
            ]
            if "op" not in keys:
                continue
            dynamic = any(k is None for k in node.keys)  # ``**spread``
            verb = None
            params: set[str] = set()
            for key_node, value_node in zip(node.keys, node.values):
                if not (
                    isinstance(key_node, ast.Constant)
                    and isinstance(key_node.value, str)
                ):
                    continue
                if key_node.value == "op":
                    if isinstance(value_node, ast.Constant) and isinstance(
                        value_node.value, str
                    ):
                        verb = value_node.value
                elif key_node.value not in _ENVELOPE_KEYS:
                    params.add(key_node.value)
            if verb is not None:
                issued.setdefault(verb, []).append((node, params, dynamic))
    return issued


def _check_protocol(project: Project, config: AnalyzerConfig) -> list[Finding]:
    findings: list[Finding] = []
    protocol_modules = project.modules_matching(config.protocol_module)
    if not protocol_modules:
        return findings
    protocol = protocol_modules[0]
    verbs_node, declared = _declared_verbs(protocol)
    decl_line = getattr(verbs_node, "lineno", 1)

    handler_modules = [
        m
        for suffix in config.handler_modules
        for m in project.modules_matching(suffix)
    ]
    issuer_modules = [
        m
        for suffix in config.issuer_modules
        for m in project.modules_matching(suffix)
    ]
    handled: dict[str, list[tuple[ModuleInfo, ast.Compare]]] = {}
    handler_params: dict[str, Optional[set[str]]] = {}
    for module in handler_modules:
        for verb, nodes in _handled_verbs(module).items():
            for node in nodes:
                handled.setdefault(verb, []).append((module, node))
        for verb, params in _handler_params(module).items():
            if verb in handler_params:
                prev = handler_params[verb]
                handler_params[verb] = (
                    None
                    if prev is None or params is None
                    else prev | params
                )
            else:
                handler_params[verb] = params
    issued: dict[str, list[tuple[ModuleInfo, ast.Call | ast.Dict, set[str], bool]]] = {}
    for module in issuer_modules:
        for verb, sites in _issued_verbs(module).items():
            for node, params, dynamic in sites:
                issued.setdefault(verb, []).append((module, node, params, dynamic))

    def _suppressed(module: ModuleInfo, line: int) -> bool:
        return bool({"REP101", "ALL"} & module.suppressed(line))

    handler_names = ", ".join(m.name for m in handler_modules) or "<none>"
    for verb in sorted(declared):
        if verb not in handled:
            if _suppressed(protocol, decl_line):
                continue
            findings.append(
                Finding(
                    path=str(protocol.path),
                    line=decl_line,
                    col=0,
                    rule_id="REP101",
                    message=(
                        f"verb '{verb}' is declared in VERBS but handled by"
                        f" no dispatcher ({handler_names})"
                    ),
                    fingerprint_key=f"unhandled:{verb}",
                )
            )
        if verb not in issued:
            if _suppressed(protocol, decl_line):
                continue
            findings.append(
                Finding(
                    path=str(protocol.path),
                    line=decl_line,
                    col=0,
                    rule_id="REP101",
                    message=(
                        f"verb '{verb}' is declared in VERBS but never issued"
                        " by any client/CLI/gateway site (dead verb)"
                    ),
                    fingerprint_key=f"unissued:{verb}",
                )
            )
    for verb in sorted(handled):
        if verb in declared:
            continue
        module, node = handled[verb][0]
        if _suppressed(module, node.lineno):
            continue
        findings.append(
            Finding(
                path=str(module.path),
                line=node.lineno,
                col=node.col_offset,
                rule_id="REP101",
                message=(
                    f"verb '{verb}' is dispatched here but missing from"
                    " VERBS in the protocol module — parse_request rejects"
                    " it before this handler can run"
                ),
                fingerprint_key=f"undeclared-handler:{verb}",
            )
        )
    for verb in sorted(issued):
        sites = issued[verb]
        if verb not in declared:
            module, node, _, _ = sites[0]
            if _suppressed(module, node.lineno):
                continue
            findings.append(
                Finding(
                    path=str(module.path),
                    line=node.lineno,
                    col=node.col_offset,
                    rule_id="REP101",
                    message=(
                        f"verb '{verb}' is issued here but not declared in"
                        " VERBS — the server rejects it as an unknown op"
                    ),
                    fingerprint_key=f"undeclared-issuer:{verb}",
                )
            )
            continue
        reads = handler_params.get(verb, set())
        if reads is None:  # wildcard: handler consumes params wholesale
            continue
        for module, node, params, dynamic in sites:
            if dynamic:
                continue
            unread = sorted(params - reads - _ENVELOPE_KEYS)
            if not unread:
                continue
            if _suppressed(module, node.lineno):
                continue
            findings.append(
                Finding(
                    path=str(module.path),
                    line=node.lineno,
                    col=node.col_offset,
                    rule_id="REP101",
                    message=(
                        f"verb '{verb}' is issued with parameter(s)"
                        f" {unread} that no dispatcher reads"
                        " (signature drift)"
                    ),
                    fingerprint_key=f"param-drift:{verb}:{','.join(unread)}",
                )
            )
    return findings


# ---------------------------------------------------------------------------
# REP102: snapshot picklability
# ---------------------------------------------------------------------------

#: Constructor dotted-name suffixes that produce unpicklable values.
_UNPICKLABLE_CALLS = {
    "threading.Lock": "a threading.Lock",
    "threading.RLock": "a threading.RLock",
    "threading.Condition": "a threading.Condition",
    "threading.Semaphore": "a threading.Semaphore",
    "threading.Event": "a threading.Event",
    "threading.Thread": "a threading.Thread",
    "asyncio.Lock": "an asyncio.Lock",
    "asyncio.Event": "an asyncio.Event",
    "asyncio.Condition": "an asyncio.Condition",
    "asyncio.Queue": "an asyncio.Queue",
    "asyncio.get_event_loop": "an event loop",
    "asyncio.get_running_loop": "an event loop",
    "socket.socket": "a socket",
    "socket.create_connection": "a socket",
    "subprocess.Popen": "a subprocess handle",
    "concurrent.futures.ThreadPoolExecutor": "an executor",
    "concurrent.futures.ProcessPoolExecutor": "an executor",
}

#: Bare-name constructors (resolved through from-imports too).
_UNPICKLABLE_BARE = {
    "ThreadPoolExecutor": "an executor",
    "ProcessPoolExecutor": "an executor",
    "Lock": "a lock",
    "RLock": "a lock",
    "Thread": "a thread",
    "Popen": "a subprocess handle",
}

#: Terminal attribute calls yielding unpicklable values.
_UNPICKLABLE_METHODS = {
    "open": "an open file handle",
    "makefile": "a socket file object",
    "create_task": "an asyncio Task",
    "set": None,  # ContextVar.set() → Token; gated on receiver checks below
}


def _unpicklable_value(
    value: ast.expr, method: FunctionInfo, project: Project
) -> Optional[str]:
    """Describe why ``value`` cannot pickle (None when it can/unknown)."""
    if isinstance(value, ast.GeneratorExp):
        return "a generator"
    if isinstance(value, ast.Lambda):
        return "a lambda (unpicklable by the pickle protocol)"
    if not isinstance(value, ast.Call):
        return None
    dotted = _dotted(value.func)
    if dotted is None:
        return None
    parts = dotted.split(".")
    module = method.module
    if len(parts) == 1:
        name = parts[0]
        imported = module.from_imports.get(name)
        if imported:
            for suffix, why in _UNPICKLABLE_CALLS.items():
                if imported == suffix or imported.endswith("." + suffix):
                    return why
            bare = imported.split(".")[-1]
            if bare in _UNPICKLABLE_BARE:
                return _UNPICKLABLE_BARE[bare]
        elif name in _UNPICKLABLE_BARE and name not in module.classes:
            return _UNPICKLABLE_BARE[name]
        if name == "open":
            return "an open file handle"
        if name == "iter":
            return "an iterator"
        return None
    head, tail = parts[0], parts[-1]
    resolved_head = module.imports.get(head)
    if resolved_head:
        candidate = f"{resolved_head}.{'.'.join(parts[1:])}"
        for suffix, why in _UNPICKLABLE_CALLS.items():
            if candidate == suffix or candidate.endswith("." + suffix):
                return why
    if tail in ("open", "makefile", "create_task"):
        why = _UNPICKLABLE_METHODS[tail]
        if why:
            return why
    if tail == "set":
        # ``contextvar.set(...)`` returns a Token; only flag when the
        # receiver resolves to a ContextVar.
        receiver = ".".join(parts[:-1])
        for name, target in method.module.from_imports.items():
            if receiver.endswith(name) and target.endswith("ContextVar"):
                return "a contextvars Token"
        type_name = method.local_types.get(parts[0])
        if type_name == "ContextVar" or (
            len(parts) >= 2 and method.local_types.get(parts[-2]) == "ContextVar"
        ):
            return "a contextvars Token"
    return None


def _check_picklability(project: Project, config: AnalyzerConfig) -> list[Finding]:
    findings: list[Finding] = []
    roots = [
        cls
        for suffix in config.snapshot_roots
        if (cls := project.class_matching(suffix)) is not None
    ]
    queue = list(roots)
    visited: set[str] = set()
    while queue:
        cls = queue.pop(0)
        if cls.qualname in visited:
            continue
        visited.add(cls.qualname)
        for assign in cls.attr_assigns:
            if assign.attr in cls.pickle_excluded:
                continue
            line = assign.node.lineno
            if {"REP102", "ALL"} & cls.module.suppressed(line):
                continue
            why = _unpicklable_value(assign.value, assign.function, project)
            if why is not None:
                findings.append(
                    Finding(
                        path=str(cls.module.path),
                        line=line,
                        col=assign.node.col_offset,
                        rule_id="REP102",
                        message=(
                            f"snapshot-reachable field {cls.name}."
                            f"{assign.attr} holds {why}; exclude it in"
                            " __getstate__/__reduce__ or drop the field"
                        ),
                        fingerprint_key=f"{cls.name}.{assign.attr}:{why}",
                    )
                )
                continue
            # Recurse into project classes held by this field.
            type_name = cls.attr_types.get(assign.attr)
            if type_name:
                held = project.resolve_class(type_name, cls.module)
                if held is not None and held.qualname not in visited:
                    queue.append(held)
                if held is not None:
                    for sub in project.subclasses.get(held.name, []):
                        if sub.qualname not in visited:
                            queue.append(sub)
    return findings


# ---------------------------------------------------------------------------
# REP103: determinism taint
# ---------------------------------------------------------------------------

#: Entropy/wall-clock source callables (dotted suffixes after import
#: resolution).
_TAINT_SOURCES = {
    "time.time": "time.time()",
    "time.time_ns": "time.time_ns()",
    "time.monotonic": "time.monotonic()",
    "time.monotonic_ns": "time.monotonic_ns()",
    "time.perf_counter": "time.perf_counter()",
    "time.perf_counter_ns": "time.perf_counter_ns()",
    "os.urandom": "os.urandom()",
    "uuid.uuid1": "uuid.uuid1()",
    "uuid.uuid4": "uuid.uuid4()",
    "secrets.token_hex": "secrets.token_hex()",
    "secrets.token_bytes": "secrets.token_bytes()",
    "secrets.token_urlsafe": "secrets.token_urlsafe()",
    "random.random": "global random.random()",
    "random.randint": "global random.randint()",
    "random.randrange": "global random.randrange()",
    "random.getrandbits": "global random.getrandbits()",
    "random.randbytes": "global random.randbytes()",
    "datetime.datetime.now": "datetime.now()",
    "datetime.datetime.utcnow": "datetime.utcnow()",
}

#: Hash constructors whose ``update``/constructor args are digest sinks.
_HASH_CONSTRUCTORS = {"sha256", "sha1", "md5", "blake2b", "blake2s", "new"}


def _source_taint(site: CallSite, fn: FunctionInfo) -> Optional[str]:
    """Describe the entropy source at ``site`` (None when clean)."""
    target = site.target
    parts = target.split(".")
    module = fn.module
    if len(parts) == 1:
        imported = module.from_imports.get(parts[0])
        if imported and imported in _TAINT_SOURCES:
            return _TAINT_SOURCES[imported]
        return None
    resolved_head = module.imports.get(parts[0])
    if resolved_head:
        candidate = f"{resolved_head}.{'.'.join(parts[1:])}"
        if candidate in _TAINT_SOURCES:
            return _TAINT_SOURCES[candidate]
    if target in _TAINT_SOURCES:
        return _TAINT_SOURCES[target]
    # ``datetime.now()`` through ``from datetime import datetime``.
    if parts[-1] in ("now", "utcnow", "today"):
        head = parts[0]
        if module.from_imports.get(head, "").startswith("datetime."):
            return f"{head}.{parts[-1]}()"
    return None


class _TaintScan(ast.NodeVisitor):
    """Intra-procedural taint propagation for one function body."""

    def __init__(
        self,
        fn: FunctionInfo,
        project: Project,
        tainted_returns: dict[str, str],
        tainted_params: dict[str, dict[str, str]],
    ) -> None:
        self.fn = fn
        self.project = project
        self.tainted_returns = tainted_returns
        self.tainted_params = tainted_params
        #: local name -> source description.
        self.tainted: dict[str, str] = dict(
            tainted_params.get(fn.qualname, {})
        )
        self.hash_objects: set[str] = set()
        self.return_taint: Optional[str] = None

    # -- expression taint --------------------------------------------------

    def expr_taint(self, node: ast.expr) -> Optional[str]:
        """The source description if ``node`` carries taint."""
        for sub in ast.walk(node):
            if isinstance(sub, ast.Name) and sub.id in self.tainted:
                return self.tainted[sub.id]
            if isinstance(sub, ast.Call):
                target = _dotted(sub.func)
                if target is None:
                    continue
                site = CallSite(target=target, node=sub, awaited=False)
                source = _source_taint(site, self.fn)
                if source:
                    return source
                for callee in self.project.resolve_call(site, self.fn):
                    if callee.qualname in self.tainted_returns:
                        return self.tainted_returns[callee.qualname]
        return None

    # -- statements --------------------------------------------------------

    def visit_Assign(self, node: ast.Assign) -> None:
        self._track_hash(node)
        taint = self.expr_taint(node.value)
        for target in node.targets:
            if isinstance(target, ast.Name):
                if taint:
                    self.tainted[target.id] = taint
                else:
                    self.tainted.pop(target.id, None)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        taint = self.expr_taint(node.value)
        if taint and isinstance(node.target, ast.Name):
            self.tainted[node.target.id] = taint
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None and isinstance(node.target, ast.Name):
            taint = self.expr_taint(node.value)
            if taint:
                self.tainted[node.target.id] = taint
        self.generic_visit(node)

    def visit_Return(self, node: ast.Return) -> None:
        if node.value is not None and self.return_taint is None:
            self.return_taint = self.expr_taint(node.value)
        self.generic_visit(node)

    def _track_hash(self, node: ast.Assign) -> None:
        if not isinstance(node.value, ast.Call):
            return
        dotted = _dotted(node.value.func)
        if dotted is None:
            return
        parts = dotted.split(".")
        module = self.fn.module
        is_hash = False
        if len(parts) >= 2 and module.imports.get(parts[0]) == "hashlib":
            is_hash = parts[-1] in _HASH_CONSTRUCTORS
        elif len(parts) == 1:
            imported = module.from_imports.get(parts[0], "")
            is_hash = imported.startswith("hashlib.")
        if is_hash:
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self.hash_objects.add(target.id)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass  # nested defs analyzed on their own

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]


def _sink_description(
    site: CallSite, fn: FunctionInfo, scan: _TaintScan, config: AnalyzerConfig
) -> Optional[str]:
    """Describe the determinism sink at ``site`` (None when not a sink)."""
    parts = site.target.split(".")
    tail = parts[-1]
    module = fn.module
    if len(parts) == 1:
        if tail in config.taint_sink_calls:
            return f"{tail}()"
        if tail in config.taint_sink_constructors:
            return f"{tail}(...) trace context"
        imported = module.from_imports.get(tail, "")
        if imported.startswith("hashlib."):
            return f"digest {tail}()"
        return None
    if tail in config.taint_sink_calls:
        return f"{tail}()"
    if module.imports.get(parts[0]) == "hashlib" and tail in _HASH_CONSTRUCTORS:
        return f"digest hashlib.{tail}()"
    if tail == "update" and parts[0] in scan.hash_objects and len(parts) == 2:
        return f"digest {parts[0]}.update()"
    if tail in config.taint_sink_methods:
        receiver = fn.module and None
        del receiver
        recv = None
        if len(parts) > 1:
            recv = _receiver_class_name(parts[:-1], fn, scan)
        if recv is None or recv in config.taint_sink_method_classes:
            return f"telemetry {site.target}()"
    return None


def _receiver_class_name(
    chain: list[str], fn: FunctionInfo, scan: _TaintScan
) -> Optional[str]:
    project = scan.project
    cls = project.receiver_type(chain, fn)
    return cls.name if cls is not None else None


def _check_taint(project: Project, config: AnalyzerConfig) -> list[Finding]:
    findings: list[Finding] = []
    #: function qualname -> source description for tainted returns.
    tainted_returns: dict[str, str] = {}
    tainted_params: dict[str, dict[str, str]] = {}

    # Fixpoint: propagate tainted returns and tainted arguments through
    # the call graph until stable (bounded by function count).
    for _ in range(len(project.functions) + 1):
        changed = False
        for fn in project.functions.values():
            scan = _TaintScan(fn, project, tainted_returns, tainted_params)
            for stmt in fn.node.body:
                scan.visit(stmt)
            if scan.return_taint and fn.qualname not in tainted_returns:
                tainted_returns[fn.qualname] = scan.return_taint
                changed = True
            # Taint callee parameters fed by tainted arguments.
            for site in fn.calls:
                callees = project.resolve_call(site, fn)
                if not callees:
                    continue
                for index, arg in enumerate(site.node.args):
                    taint = scan.expr_taint(arg)
                    if not taint:
                        continue
                    for callee in callees:
                        params = [
                            a.arg
                            for a in callee.node.args.args
                            if a.arg not in ("self", "cls")
                        ]
                        if index < len(params):
                            bucket = tainted_params.setdefault(
                                callee.qualname, {}
                            )
                            if params[index] not in bucket:
                                bucket[params[index]] = taint
                                changed = True
                for kw in site.node.keywords:
                    if kw.arg is None:
                        continue
                    taint = scan.expr_taint(kw.value)
                    if not taint:
                        continue
                    for callee in callees:
                        bucket = tainted_params.setdefault(callee.qualname, {})
                        if kw.arg not in bucket:
                            bucket[kw.arg] = taint
                            changed = True
        if not changed:
            break

    for fn in sorted(project.functions.values(), key=lambda f: f.qualname):
        scan = _TaintScan(fn, project, tainted_returns, tainted_params)
        # Re-run statement order so hash objects/locals are in scope.
        tainted_sites: list[tuple[CallSite, str, str]] = []

        class _SinkVisitor(ast.NodeVisitor):
            def visit_Call(self, node: ast.Call) -> None:  # noqa: N802
                target = _dotted(node.func)
                if target is not None:
                    site = CallSite(target=target, node=node, awaited=False)
                    sink = _sink_description(site, fn, scan, config)
                    if sink is not None:
                        for arg in [*node.args, *[k.value for k in node.keywords]]:
                            taint = scan.expr_taint(arg)
                            if taint:
                                tainted_sites.append((site, sink, taint))
                                break
                self.generic_visit(node)

            def visit_FunctionDef(self, node: ast.FunctionDef) -> None:  # noqa: N802
                pass

            visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

        sink_visitor = _SinkVisitor()
        for stmt in fn.node.body:
            scan.visit(stmt)  # populate locals/hash objects in order
            sink_visitor.visit(stmt)
        for site, sink, taint in tainted_sites:
            line = site.node.lineno
            if {"REP103", "ALL"} & fn.module.suppressed(line):
                continue
            findings.append(
                Finding(
                    path=str(fn.module.path),
                    line=line,
                    col=site.node.col_offset,
                    rule_id="REP103",
                    message=(
                        f"non-deterministic value from {taint} flows into"
                        f" {sink} in {fn.display}() — digests, telemetry"
                        " and trace ids must be pure functions of the seed"
                    ),
                    fingerprint_key=f"{fn.qualname}|{taint}|{sink}",
                )
            )
    return findings


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------


def analyze_project(project: Project) -> list[Finding]:
    """Run every rule family over a loaded project."""
    config = project.config
    findings = list(project.errors)
    findings.extend(_check_async_safety(project, config))
    findings.extend(_check_protocol(project, config))
    findings.extend(_check_picklability(project, config))
    findings.extend(_check_taint(project, config))
    return sorted(findings, key=lambda f: (f.path, f.line, f.col, f.rule_id))


def analyze_paths(
    paths: Iterable[str | Path], config: Optional[AnalyzerConfig] = None
) -> list[Finding]:
    """Load and analyze every ``.py`` file under ``paths``."""
    return analyze_project(Project.load(paths, config))


# -- baseline ---------------------------------------------------------------


def load_baseline(path: str | Path) -> set[str]:
    """The set of baselined fingerprints (empty when the file is absent)."""
    baseline_path = Path(path)
    if not baseline_path.exists():
        return set()
    try:
        doc = json.loads(baseline_path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        return set()
    entries = doc.get("findings", []) if isinstance(doc, dict) else []
    return {
        str(entry["fingerprint"])
        for entry in entries
        if isinstance(entry, dict) and "fingerprint" in entry
    }


def write_baseline(path: str | Path, findings: Sequence[Finding]) -> int:
    """Record every finding as accepted; returns the entry count."""
    doc = {
        "format": BASELINE_FORMAT,
        "comment": (
            "Accepted pre-existing `repro analyze` findings. New findings"
            " fail CI; regenerate with `repro analyze --write-baseline`"
            " only after triaging every new entry."
        ),
        "findings": [
            {
                "fingerprint": f.fingerprint,
                "rule": f.rule_id,
                "path": f.path,
                "message": f.message,
            }
            for f in findings
        ],
    }
    Path(path).write_text(json.dumps(doc, indent=2) + "\n", encoding="utf-8")
    return len(findings)


def split_by_baseline(
    findings: Sequence[Finding], baseline: set[str]
) -> tuple[list[Finding], list[Finding]]:
    """Partition findings into (new, baselined)."""
    new: list[Finding] = []
    old: list[Finding] = []
    for finding in findings:
        (old if finding.fingerprint in baseline else new).append(finding)
    return new, old


# -- reporters --------------------------------------------------------------


def render_text(
    findings: Sequence[Finding], baselined: Sequence[Finding] = ()
) -> str:
    """GCC-style one-line-per-finding report."""
    lines = [
        f"{f.path}:{f.line}:{f.col}: {f.rule_id}"
        f" [{ANALYZE_RULES[f.rule_id].name}] {f.message}"
        for f in findings
    ]
    lines.append(
        f"{len(findings)} new finding(s), {len(baselined)} baselined"
    )
    return "\n".join(lines)


def render_json(
    findings: Sequence[Finding], baselined: Sequence[Finding] = ()
) -> str:
    """Machine-readable report (used by the CI gate)."""
    return json.dumps(
        {
            "findings": [f.as_dict() for f in findings],
            "baselined": [f.as_dict() for f in baselined],
            "count": len(findings),
            "baselined_count": len(baselined),
        },
        indent=2,
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point shared by ``repro analyze`` and ``python -m repro.check.graph``."""
    import argparse

    from repro.check.rules import explain
    from repro.check.sarif import render_sarif

    parser = argparse.ArgumentParser(
        prog="repro analyze",
        description="whole-program analyzer: async-safety, protocol drift,"
        " snapshot picklability, determinism taint",
    )
    parser.add_argument("paths", nargs="*", default=["src"], help="files or directories")
    parser.add_argument(
        "--format", choices=["text", "json", "sarif"], default="text"
    )
    parser.add_argument(
        "--baseline",
        default=BASELINE_FILENAME,
        help=f"baseline-suppression file (default {BASELINE_FILENAME})",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline file (report every finding as new)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="accept every current finding into the baseline file and exit 0",
    )
    parser.add_argument("--out", default=None, help="write the report here")
    parser.add_argument(
        "--explain",
        metavar="REPxxx",
        default=None,
        help="print one rule's rationale/scope/disable syntax and exit",
    )
    args = parser.parse_args(argv)
    if args.explain:
        print(explain(args.explain))  # repro-lint: disable=REP006
        return 0
    findings = analyze_paths(args.paths or ["src"])
    if args.write_baseline:
        count = write_baseline(args.baseline, findings)
        print(  # repro-lint: disable=REP006
            f"wrote {count} finding(s) to {args.baseline}"
        )
        return 0
    baseline = set() if args.no_baseline else load_baseline(args.baseline)
    new, old = split_by_baseline(findings, baseline)
    if args.format == "sarif":
        report = render_sarif(new, baselined=old)
    elif args.format == "json":
        report = render_json(new, baselined=old)
    else:
        report = render_text(new, baselined=old)
    if args.out:
        Path(args.out).write_text(report + "\n", encoding="utf-8")
        print(f"wrote {args.out}")  # repro-lint: disable=REP006
    else:
        print(report)  # repro-lint: disable=REP006
    return 1 if new else 0


if __name__ == "__main__":  # pragma: no cover - thin wrapper
    sys.exit(main())
