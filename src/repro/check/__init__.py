"""Correctness tooling: custom lint, runtime sanitizer, typing gate.

MLFS correctness rests on invariants the paper states but ordinary
tests rarely exercise: GPU/bandwidth conservation under MLF-H placement
and overload relief (Eqs. 2-6), priority-ordered dequeue, and
deterministic replay of the simulated schedule.  This package holds the
three coordinated passes that police them:

* :mod:`repro.check.lint` -- a repo-specific AST lint (``repro lint``)
  that rejects the code patterns which historically break determinism
  and hygiene: wall-clock reads and global-RNG draws inside simulated
  code, mutable default arguments, bare ``except:``, float ``==`` on
  priority/score values, and ``print()`` in library code.
* :mod:`repro.check.sanitize` -- an opt-in runtime invariant sanitizer
  (``REPRO_SANITIZE=1`` or ``SimulationEngine(sanitize=True)``) that
  after every scheduler round asserts resource conservation, queue
  consistency, priority-monotone dequeue order and snapshot round-trip
  equality, raising :class:`~repro.check.sanitize.InvariantViolation`
  with the offending server/task ids.
* :mod:`repro.check.typing_gate` -- the strict-typing gate
  (``repro typecheck``): runs ``mypy`` with the ``pyproject.toml``
  configuration when available and otherwise falls back to an AST
  annotation-coverage check over the strict packages
  (``repro.core``, ``repro.cluster``, ``repro.check``).
* :mod:`repro.check.graph` -- the whole-program analyzer
  (``repro analyze``): builds a project-wide symbol table, import graph
  and call graph, then checks cross-module invariants no per-file pass
  can see — blocking calls reachable from event-loop coroutines
  (REP100), wire-protocol verb drift between declaration, handlers and
  issuers (REP101), unpicklable state reachable from snapshot roots
  (REP102), and wall-clock/entropy taint flowing into digests,
  telemetry or trace ids (REP103).  Reports as text, JSON or SARIF
  2.1.0 (:mod:`repro.check.sarif`) with baseline suppression.
* :mod:`repro.check.rules` -- the single registry documenting every
  rule's rationale, scope and disable syntax; ``--explain`` renders it.
"""

from repro.check.graph import (
    AnalyzerConfig,
    Finding,
    Project,
    analyze_paths,
)
from repro.check.lint import (
    LintViolation,
    RULES,
    lint_paths,
    lint_source,
    render_json,
    render_text,
)
from repro.check.rules import ANALYZE_RULES, LINT_RULES, REGISTRY, RuleInfo, explain
from repro.check.sanitize import (
    InvariantViolation,
    SanitizingCluster,
    Sanitizer,
    sanitize_from_env,
)
from repro.check.sarif import render_sarif

__all__ = [
    "ANALYZE_RULES",
    "AnalyzerConfig",
    "Finding",
    "InvariantViolation",
    "LINT_RULES",
    "LintViolation",
    "Project",
    "REGISTRY",
    "RULES",
    "RuleInfo",
    "SanitizingCluster",
    "Sanitizer",
    "analyze_paths",
    "explain",
    "lint_paths",
    "lint_source",
    "render_json",
    "render_sarif",
    "render_text",
    "sanitize_from_env",
]
