"""Repo-specific AST lint (``repro lint``).

The simulator's determinism contract (snapshot/resume replays the exact
schedule; two same-seed runs are bit-identical) survives only if
simulated code never reads the wall clock and never draws from a global
RNG -- every random draw must come from an injected
``random.Random(seed)`` and every timestamp from the simulation clock.
Generic linters cannot know that, so this one encodes the repo rules:

=======  =====================================================  ==================
Rule     What it rejects                                        Where
=======  =====================================================  ==================
REP001   ``time.time()`` / ``datetime.now()`` wall-clock reads  core, sim,
         in simulated code                                      workload,
                                                                learncurve
REP002   module-level RNG draws (``random.random()``,           core, sim,
         ``np.random.*``) instead of an injected                workload,
         ``random.Random``                                      learncurve
REP003   mutable default arguments                              all of ``src/``
REP004   bare ``except:``                                       all of ``src/``
REP005   float ``==``/``!=`` on priority/score values           all of ``src/``
REP006   ``print()`` in library code (route through             all but entry
         :mod:`repro.obs`)                                      points (``cli.py``,
                                                                ``__main__.py``,
                                                                ``examples/``,
                                                                ``benchmarks/``)
REP007   non-deterministic ID sources (``uuid.*``,              obs, service,
         ``os.urandom``, ``secrets.*``) -- trace/span ids       gateway
         must derive via :mod:`repro.obs.tracectx`
=======  =====================================================  ==================

Files outside the ``repro`` package (fixtures, scripts) are linted with
*every* rule active.  Any finding can be waived for one line with an
inline escape hatch::

    t = time.time()  # repro-lint: disable=REP001
    x = eval(s)      # repro-lint: disable=all

Run it as ``repro lint [paths...] --format text|json`` or
``python -m repro.check.lint``; exit status is 1 when violations remain.
"""

from __future__ import annotations

import ast
import json
import re
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Optional, Sequence

from repro.check.rules import LINT_RULES, RuleInfo

__all__ = [
    "RULES",
    "FileScope",
    "LintViolation",
    "Rule",
    "lint_file",
    "lint_paths",
    "lint_source",
    "main",
    "render_json",
    "render_text",
    "scope_for_path",
]

#: Backwards-compatible alias; the catalogue now lives in
#: :mod:`repro.check.rules` so ``--explain`` and the docs share one source.
Rule = RuleInfo

#: The lint rule catalogue (REP000–REP007), filtered from the registry.
RULES: dict[str, RuleInfo] = LINT_RULES

#: Subpackages of ``repro`` whose code runs under the simulation clock.
CLOCKED_PACKAGES = frozenset({"core", "sim", "workload", "learncurve"})

#: Subpackages that stamp protocol-visible identifiers (trace/span/job
#: ids); REP007 keeps every ID in them a pure function of the seed.
TRACED_PACKAGES = frozenset({"obs", "service", "gateway"})

#: Top-level modules allowed to print (user-facing entry points).
ENTRYPOINT_MODULES = frozenset({"cli.py", "__main__.py"})

#: Repo directories holding runnable scripts: like ``cli.py``, their UI
#: *is* stdout and they run in real (wall-clock) time, so the library
#: and simulation-scoped rules do not apply.
ENTRYPOINT_DIRS = frozenset({"examples", "benchmarks"})

#: ``random`` module functions that draw from (or reseed) the global RNG.
_RANDOM_FUNCS = frozenset(
    {
        "betavariate",
        "binomialvariate",
        "choice",
        "choices",
        "expovariate",
        "gammavariate",
        "gauss",
        "getrandbits",
        "getstate",
        "lognormvariate",
        "normalvariate",
        "paretovariate",
        "randbytes",
        "randint",
        "random",
        "randrange",
        "sample",
        "seed",
        "setstate",
        "shuffle",
        "triangular",
        "uniform",
        "vonmisesvariate",
        "weibullvariate",
    }
)

#: Wall-clock attribute reads on the ``time`` module.
_TIME_FUNCS = frozenset({"time", "time_ns"})

#: Wall-clock constructors on ``datetime``/``date`` classes.
_DATETIME_FUNCS = frozenset({"now", "utcnow", "today"})

#: ``uuid`` module callables whose output is machine/time/entropy bound.
_UUID_FUNCS = frozenset({"uuid1", "uuid3", "uuid4", "uuid5", "getnode"})

#: Identifier fragments that mark a value as a priority/score (REP005).
_PRIORITY_NAME = re.compile(r"prio|score", re.IGNORECASE)

_DISABLE_COMMENT = re.compile(r"#\s*repro-lint:\s*disable=([A-Za-z0-9_,\s]+)")


@dataclass(frozen=True)
class FileScope:
    """Which scoped rule groups apply to one file."""

    clocked: bool
    library: bool
    traced: bool = False


#: Scope for files outside the repo package: everything applies.
FULL_SCOPE = FileScope(clocked=True, library=True, traced=True)

#: Scope for entry-point scripts (examples/, benchmarks/): hygiene rules
#: only — they print to stdout and run in real time by design.
SCRIPT_SCOPE = FileScope(clocked=False, library=False, traced=False)


@dataclass(frozen=True)
class LintViolation:
    """One finding: file, position, rule and message."""

    path: str
    line: int
    col: int
    rule_id: str
    message: str

    def as_dict(self) -> dict[str, object]:
        """JSON-ready representation (stable keys)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule_id,
            "name": RULES[self.rule_id].name,
            "message": self.message,
        }


def scope_for_path(path: Path) -> FileScope:
    """Determine the rule scope of a file from its location.

    Files under ``repro/<pkg>/`` get the clocked rules only when
    ``<pkg>`` simulates time; ``repro/cli.py`` and ``repro/__main__.py``
    are exempt from the print rule.  Files not under a ``repro`` package
    at all (fixtures, one-off scripts) are checked with every rule.
    """
    parts = path.resolve().parts
    if "repro" not in parts:
        if ENTRYPOINT_DIRS & set(parts):
            return SCRIPT_SCOPE
        return FULL_SCOPE
    rel = parts[len(parts) - 1 - parts[::-1].index("repro") + 1 :]
    if not rel:  # the package directory itself
        return FULL_SCOPE
    clocked = rel[0] in CLOCKED_PACKAGES
    library = not (len(rel) == 1 and rel[0] in ENTRYPOINT_MODULES)
    traced = rel[0] in TRACED_PACKAGES
    return FileScope(clocked=clocked, library=library, traced=traced)


class _Collector(ast.NodeVisitor):
    """Single AST pass producing raw (unsuppressed) violations."""

    def __init__(self, path: str, scope: FileScope) -> None:
        self.path = path
        self.scope = scope
        self.violations: list[LintViolation] = []
        #: local names bound to the ``time`` / ``random`` / ``numpy`` /
        #: ``datetime`` modules, e.g. ``{"time", "_time"}``.
        self._time_mods: set[str] = set()
        self._random_mods: set[str] = set()
        self._numpy_mods: set[str] = set()
        self._datetime_mods: set[str] = set()
        #: local names bound to ``time.time`` / wall-clock callables via
        #: ``from x import y [as z]``.
        self._time_funcs: set[str] = set()
        self._random_funcs: set[str] = set()
        #: local names bound to the ``datetime``/``date`` classes.
        self._datetime_classes: set[str] = set()
        #: REP007: names bound to the ``uuid``/``secrets``/``os`` modules
        #: and to their entropy-backed callables.
        self._uuid_mods: set[str] = set()
        self._secrets_mods: set[str] = set()
        self._os_mods: set[str] = set()
        self._id_funcs: set[str] = set()

    # -- imports -----------------------------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            bound = alias.asname or alias.name.split(".")[0]
            if alias.name == "time":
                self._time_mods.add(bound)
            elif alias.name == "random":
                self._random_mods.add(bound)
            elif alias.name == "datetime":
                self._datetime_mods.add(bound)
            elif alias.name in ("numpy", "numpy.random"):
                self._numpy_mods.add(bound)
            elif alias.name == "uuid":
                self._uuid_mods.add(bound)
            elif alias.name == "secrets":
                self._secrets_mods.add(bound)
            elif alias.name == "os":
                self._os_mods.add(bound)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        for alias in node.names:
            bound = alias.asname or alias.name
            if node.module == "time" and alias.name in _TIME_FUNCS:
                self._time_funcs.add(bound)
            elif node.module == "random" and alias.name in _RANDOM_FUNCS:
                self._random_funcs.add(bound)
            elif node.module == "datetime" and alias.name in ("datetime", "date"):
                self._datetime_classes.add(bound)
            elif node.module == "uuid" and alias.name in _UUID_FUNCS:
                self._id_funcs.add(bound)
            elif node.module == "secrets":
                self._id_funcs.add(bound)
            elif node.module == "os" and alias.name == "urandom":
                self._id_funcs.add(bound)
        self.generic_visit(node)

    # -- helpers -----------------------------------------------------------

    def _report(self, node: ast.AST, rule_id: str, message: str) -> None:
        self.violations.append(
            LintViolation(
                path=self.path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0),
                rule_id=rule_id,
                message=message,
            )
        )

    def _check_call(self, node: ast.Call) -> None:
        func = node.func
        # REP006 -- print() in library code.
        if (
            self.scope.library
            and isinstance(func, ast.Name)
            and func.id == "print"
        ):
            self._report(node, "REP006", "print() call in library code")
        # REP007 -- non-deterministic ID sources in traced packages.
        if self.scope.traced:
            if isinstance(func, ast.Name) and func.id in self._id_funcs:
                self._report(
                    node, "REP007", f"non-deterministic ID source {func.id}()"
                )
            if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
                base_id, attr = func.value.id, func.attr
                if (
                    (base_id in self._uuid_mods and attr in _UUID_FUNCS)
                    or base_id in self._secrets_mods
                    or (base_id in self._os_mods and attr == "urandom")
                ):
                    self._report(
                        node,
                        "REP007",
                        f"non-deterministic ID source {base_id}.{attr}()",
                    )
        if not self.scope.clocked:
            return
        # REP001 -- wall-clock reads.
        if isinstance(func, ast.Name) and func.id in self._time_funcs:
            self._report(node, "REP001", f"wall-clock call {func.id}()")
        if isinstance(func, ast.Attribute):
            base = func.value
            if (
                isinstance(base, ast.Name)
                and base.id in self._time_mods
                and func.attr in _TIME_FUNCS
            ):
                self._report(node, "REP001", f"wall-clock call {base.id}.{func.attr}()")
            if (
                isinstance(base, ast.Name)
                and base.id in self._datetime_classes
                and func.attr in _DATETIME_FUNCS
            ):
                self._report(node, "REP001", f"wall-clock call {base.id}.{func.attr}()")
            if (
                isinstance(base, ast.Attribute)
                and isinstance(base.value, ast.Name)
                and base.value.id in self._datetime_mods
                and base.attr in ("datetime", "date")
                and func.attr in _DATETIME_FUNCS
            ):
                self._report(
                    node,
                    "REP001",
                    f"wall-clock call {base.value.id}.{base.attr}.{func.attr}()",
                )
        # REP002 -- global RNG draws.
        if isinstance(func, ast.Name) and func.id in self._random_funcs:
            self._report(node, "REP002", f"global RNG call {func.id}()")
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            if (
                func.value.id in self._random_mods
                and func.attr in _RANDOM_FUNCS
            ):
                self._report(
                    node, "REP002", f"global RNG call {func.value.id}.{func.attr}()"
                )
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Attribute)
            and isinstance(func.value.value, ast.Name)
            and func.value.value.id in self._numpy_mods
            and func.value.attr == "random"
        ):
            self._report(
                node,
                "REP002",
                f"global NumPy RNG call {func.value.value.id}.random.{func.attr}()",
            )

    def visit_Call(self, node: ast.Call) -> None:
        self._check_call(node)
        self.generic_visit(node)

    # -- REP003: mutable defaults ------------------------------------------

    def _check_defaults(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef | ast.Lambda
    ) -> None:
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for default in defaults:
            if self._is_mutable_literal(default):
                name = getattr(node, "name", "<lambda>")
                self._report(
                    default,
                    "REP003",
                    f"mutable default argument in {name}()",
                )

    @staticmethod
    def _is_mutable_literal(node: ast.expr) -> bool:
        if isinstance(
            node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)
        ):
            return True
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in ("list", "dict", "set", "bytearray")
        )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    # -- REP004: bare except -----------------------------------------------

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self._report(node, "REP004", "bare except: catches SystemExit too")
        self.generic_visit(node)

    # -- REP005: float == on priority/score values --------------------------

    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left, *node.comparators]
        has_eq = any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops)
        if has_eq and not self._has_guard_constant(operands):
            for operand in operands:
                name = self._priority_identifier(operand)
                if name is not None:
                    self._report(
                        node,
                        "REP005",
                        f"float equality on priority/score value {name!r}",
                    )
                    break
        self.generic_visit(node)

    @staticmethod
    def _has_guard_constant(operands: list[ast.expr]) -> bool:
        """String/None comparisons are identity-ish, not float equality."""
        return any(
            isinstance(op, ast.Constant) and (op.value is None or isinstance(op.value, str))
            for op in operands
        )

    #: Calls producing integral values; operands wrapped in these are
    #: index/count comparisons, not float score comparisons.
    _INTEGRAL_CALLS = frozenset({"int", "len", "round", "argmax", "argmin", "index", "count"})

    @classmethod
    def _priority_identifier(cls, operand: ast.expr) -> Optional[str]:
        if isinstance(operand, ast.Call):
            func = operand.func
            func_name = (
                func.id if isinstance(func, ast.Name) else getattr(func, "attr", None)
            )
            if func_name in cls._INTEGRAL_CALLS:
                return None
        for sub in ast.walk(operand):
            if isinstance(sub, ast.Name) and _PRIORITY_NAME.search(sub.id):
                return sub.id
            if isinstance(sub, ast.Attribute) and _PRIORITY_NAME.search(sub.attr):
                return sub.attr
        return None


def _suppressed_rules(line: str) -> frozenset[str]:
    """Rule ids waived by a ``# repro-lint: disable=...`` comment."""
    match = _DISABLE_COMMENT.search(line)
    if not match:
        return frozenset()
    tokens = {tok.strip().upper() for tok in match.group(1).split(",") if tok.strip()}
    return frozenset(tokens)


def lint_source(
    source: str,
    path: str | Path = "<string>",
    scope: Optional[FileScope] = None,
) -> list[LintViolation]:
    """Lint one source string; ``scope`` defaults from ``path``."""
    if scope is None:
        scope = scope_for_path(Path(path)) if path != "<string>" else FULL_SCOPE
    name = str(path)
    try:
        tree = ast.parse(source, filename=name)
    except SyntaxError as exc:
        return [
            LintViolation(
                path=name,
                line=exc.lineno or 1,
                col=exc.offset or 0,
                rule_id="REP000",
                message=f"syntax error: {exc.msg}",
            )
        ]
    collector = _Collector(name, scope)
    collector.visit(tree)
    lines = source.splitlines()
    kept: list[LintViolation] = []
    for violation in sorted(collector.violations, key=lambda v: (v.line, v.col, v.rule_id)):
        text = lines[violation.line - 1] if 0 < violation.line <= len(lines) else ""
        waived = _suppressed_rules(text)
        if "ALL" in waived or violation.rule_id in waived:
            continue
        kept.append(violation)
    return kept


def lint_file(path: str | Path) -> list[LintViolation]:
    """Lint one file on disk."""
    file_path = Path(path)
    return lint_source(file_path.read_text(encoding="utf-8"), file_path)


def iter_python_files(paths: Iterable[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: set[Path] = set()
    for entry in paths:
        p = Path(entry)
        if p.is_dir():
            out.update(p.rglob("*.py"))
        elif p.suffix == ".py":
            out.add(p)
    return sorted(out)


def lint_paths(
    paths: Iterable[str | Path], exclude: Sequence[str] = ()
) -> list[LintViolation]:
    """Lint every ``.py`` file under the given files/directories.

    ``exclude`` drops files whose POSIX path contains any fragment
    (e.g. ``("tests/fixtures",)`` skips the intentionally-violating
    fixture catalogues).
    """
    violations: list[LintViolation] = []
    for file_path in iter_python_files(paths):
        posix = file_path.as_posix()
        if any(fragment and fragment in posix for fragment in exclude):
            continue
        violations.extend(lint_file(file_path))
    return violations


def render_text(violations: Sequence[LintViolation]) -> str:
    """GCC-style one-line-per-finding report."""
    lines = [
        f"{v.path}:{v.line}:{v.col}: {v.rule_id} [{RULES[v.rule_id].name}] {v.message}"
        for v in violations
    ]
    lines.append(f"{len(violations)} violation(s)")
    return "\n".join(lines)


def render_json(violations: Sequence[LintViolation]) -> str:
    """Machine-readable report (used by the CI gate)."""
    return json.dumps(
        {
            "violations": [v.as_dict() for v in violations],
            "count": len(violations),
        },
        indent=2,
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point shared by ``repro lint`` and ``python -m repro.check.lint``."""
    import argparse

    from repro.check.rules import explain

    parser = argparse.ArgumentParser(
        prog="repro lint", description="repo-specific determinism/hygiene lint"
    )
    parser.add_argument("paths", nargs="*", default=["src"], help="files or directories")
    parser.add_argument("--format", choices=["text", "json"], default="text")
    parser.add_argument(
        "--select",
        default=None,
        metavar="REPxxx,...",
        help="comma-separated rule ids to enforce (default: all)",
    )
    parser.add_argument(
        "--exclude",
        action="append",
        default=[],
        metavar="FRAGMENT",
        help="skip files whose path contains FRAGMENT (repeatable,"
        " comma-separable)",
    )
    parser.add_argument(
        "--explain",
        metavar="REPxxx",
        default=None,
        help="print one rule's rationale/scope/disable syntax and exit",
    )
    args = parser.parse_args(argv)
    if args.explain:
        print(explain(args.explain))  # repro-lint: disable=REP006
        return 0
    exclude = [
        fragment.strip()
        for entry in args.exclude
        for fragment in entry.split(",")
        if fragment.strip()
    ]
    violations = lint_paths(args.paths or ["src"], exclude=exclude)
    if args.select:
        selected = {
            tok.strip().upper() for tok in args.select.split(",") if tok.strip()
        }
        unknown = selected - set(RULES)
        if unknown:
            parser.error(f"unknown rule id(s) in --select: {sorted(unknown)}")
        violations = [v for v in violations if v.rule_id in selected]
    renderer = render_json if args.format == "json" else render_text
    print(renderer(violations))  # repro-lint: disable=REP006
    return 1 if violations else 0


if __name__ == "__main__":  # pragma: no cover - thin wrapper
    sys.exit(main())
