"""SARIF 2.1.0 reporter for ``repro analyze``.

SARIF (Static Analysis Results Interchange Format) is the OASIS
interchange schema GitHub code scanning ingests: CI runs
``repro analyze src --format sarif`` and uploads the log with
``github/codeql-action/upload-sarif``, which turns each result into an
inline annotation on the offending line of the pull request.

The emitted log carries one run with the full rule catalogue (from
:mod:`repro.check.rules`, so help text matches ``--explain``), one
``result`` per finding, and ``partialFingerprints`` keyed by the same
stable fingerprint the baseline file uses — GitHub then tracks a
finding's identity across pushes the same way the local gate does.
Baselined findings are included with ``suppressions`` so they render
as dismissed rather than new.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Sequence

from repro.check.rules import ANALYZE_RULES

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.check.graph import Finding

__all__ = ["SARIF_SCHEMA_URI", "SARIF_VERSION", "render_sarif", "sarif_log"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

#: Tool metadata stamped into every run.
_TOOL_NAME = "repro-analyze"
_TOOL_URI = "https://github.com/repro/repro"


def _rule_descriptor(rule_id: str) -> dict[str, object]:
    info = ANALYZE_RULES[rule_id]
    return {
        "id": rule_id,
        "name": info.name,
        "shortDescription": {"text": info.summary},
        "fullDescription": {"text": info.rationale},
        "help": {
            "text": (
                f"{info.rationale}\n\nScope: {info.scope}\n"
                f"Disable: {info.disable}"
            )
        },
        "defaultConfiguration": {"level": "error"},
    }


def _result(finding: "Finding", suppressed: bool) -> dict[str, object]:
    result: dict[str, object] = {
        "ruleId": finding.rule_id,
        "level": "error",
        "message": {"text": finding.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": finding.path.replace("\\", "/"),
                        "uriBaseId": "SRCROOT",
                    },
                    "region": {
                        "startLine": max(finding.line, 1),
                        "startColumn": max(finding.col + 1, 1),
                    },
                }
            }
        ],
        "partialFingerprints": {
            "reproAnalyzeFingerprint/v1": finding.fingerprint
        },
    }
    if suppressed:
        result["suppressions"] = [
            {
                "kind": "external",
                "justification": "accepted in .repro-analyze-baseline.json",
            }
        ]
    return result


def sarif_log(
    findings: Sequence["Finding"], baselined: Sequence["Finding"] = ()
) -> dict[str, object]:
    """Build the SARIF log object (new findings plus suppressed baseline)."""
    return {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": _TOOL_NAME,
                        "informationUri": _TOOL_URI,
                        "version": "1.0.0",
                        "rules": [
                            _rule_descriptor(rid) for rid in sorted(ANALYZE_RULES)
                        ],
                    }
                },
                "originalUriBaseIds": {"SRCROOT": {"uri": "file:///"}},
                "results": [
                    *(_result(f, suppressed=False) for f in findings),
                    *(_result(f, suppressed=True) for f in baselined),
                ],
                "columnKind": "utf16CodeUnits",
            }
        ],
    }


def render_sarif(
    findings: Sequence["Finding"], baselined: Sequence["Finding"] = ()
) -> str:
    """Serialize the SARIF log as indented JSON."""
    return json.dumps(sarif_log(findings, baselined), indent=2)
