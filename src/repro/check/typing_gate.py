"""The strict-typing gate (``repro typecheck``).

Two layers, so the gate is enforceable everywhere:

* **mypy** (when installed): runs ``mypy`` with the ``[tool.mypy]``
  configuration in ``pyproject.toml`` -- strict on ``repro.core``,
  ``repro.cluster`` and ``repro.check``, permissive elsewhere.  This is
  what CI runs; lint/type failures block the build.
* **AST annotation gate** (always available): a dependency-free check
  that every function in the strict packages carries complete parameter
  and return annotations.  It covers the load-bearing half of mypy's
  ``disallow_untyped_defs``/``disallow_incomplete_defs`` so local
  environments without mypy still enforce the contract.

Waive a single definition with the same escape hatch the lint uses::

    def legacy(cb):  # repro-lint: disable=TYP001
        ...
"""

from __future__ import annotations

import ast
import subprocess
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Sequence

from repro.check.lint import _suppressed_rules, iter_python_files

__all__ = [
    "STRICT_PACKAGES",
    "AnnotationGap",
    "check_annotations",
    "main",
    "mypy_available",
    "run_mypy",
]

#: Packages held to the strict standard (mirrors ``pyproject.toml``).
#: Entries may name a package directory or a single module file.
STRICT_PACKAGES = ("core", "cluster", "check", "exp", "api.py")

#: Rule id used by the annotation gate (suppressible like lint rules).
RULE_ID = "TYP001"


@dataclass(frozen=True)
class AnnotationGap:
    """One incompletely annotated function definition."""

    path: str
    line: int
    function: str
    missing: tuple[str, ...]

    def __str__(self) -> str:
        what = ", ".join(self.missing)
        return f"{self.path}:{self.line}: {RULE_ID} {self.function}() missing {what}"


def _definition_gaps(
    node: ast.FunctionDef | ast.AsyncFunctionDef, path: str
) -> Optional[AnnotationGap]:
    missing: list[str] = []
    args = node.args
    positional = list(args.posonlyargs) + list(args.args)
    # ``self``/``cls`` never need annotations (mypy infers them).
    if positional and positional[0].arg in ("self", "cls"):
        positional = positional[1:]
    for arg in positional + list(args.kwonlyargs):
        if arg.annotation is None:
            missing.append(f"annotation for {arg.arg!r}")
    for star in (args.vararg, args.kwarg):
        if star is not None and star.annotation is None:
            missing.append(f"annotation for {'*' + star.arg!r}")
    if node.returns is None:
        missing.append("return annotation")
    if not missing:
        return None
    return AnnotationGap(
        path=path, line=node.lineno, function=node.name, missing=tuple(missing)
    )


def check_annotations(paths: Sequence[str | Path]) -> list[AnnotationGap]:
    """Report functions with missing annotations under the given paths."""
    gaps: list[AnnotationGap] = []
    for file_path in iter_python_files(paths):
        source = file_path.read_text(encoding="utf-8")
        lines = source.splitlines()
        tree = ast.parse(source, filename=str(file_path))
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                gap = _definition_gaps(node, str(file_path))
                if gap is None:
                    continue
                text = lines[gap.line - 1] if 0 < gap.line <= len(lines) else ""
                waived = _suppressed_rules(text)
                if "ALL" in waived or RULE_ID in waived:
                    continue
                gaps.append(gap)
    return sorted(gaps, key=lambda g: (g.path, g.line))


def strict_paths(src_root: str | Path = "src") -> list[Path]:
    """The directories the strict gate applies to."""
    root = Path(src_root) / "repro"
    return [root / package for package in STRICT_PACKAGES]


def mypy_available() -> bool:
    """Whether the real mypy is importable in this environment."""
    try:
        import mypy  # noqa: F401
    except ImportError:
        return False
    return True


def run_mypy(src_root: str | Path = "src") -> int:
    """Run mypy over the strict packages with the pyproject config."""
    cmd = [
        sys.executable,
        "-m",
        "mypy",
        *(str(p) for p in strict_paths(src_root)),
    ]
    return subprocess.run(cmd, check=False).returncode


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for ``repro typecheck``.

    Prefers real mypy; falls back to the AST annotation gate with a
    note when mypy is not installed.  Exit status 1 on findings.
    """
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro typecheck", description="strict-typing gate"
    )
    parser.add_argument(
        "--src", default="src", help="source root containing the repro package"
    )
    parser.add_argument(
        "--no-mypy",
        action="store_true",
        help="skip mypy even when installed (annotation gate only)",
    )
    args = parser.parse_args(argv)
    if not args.no_mypy and mypy_available():
        return run_mypy(args.src)
    gaps = check_annotations(strict_paths(args.src))
    for gap in gaps:
        print(gap)  # repro-lint: disable=REP006
    note = "" if mypy_available() else " (mypy not installed; AST annotation gate)"
    print(f"{len(gaps)} annotation gap(s){note}")  # repro-lint: disable=REP006
    return 1 if gaps else 0


if __name__ == "__main__":  # pragma: no cover - thin wrapper
    sys.exit(main())
