"""Runtime invariant sanitizer (``REPRO_SANITIZE=1``).

The scheduler's correctness argument (Eqs. 2-6 of the paper) leans on
invariants the code maintains implicitly: resource ledgers conserve
what placement/migration/eviction move around, the waiting queue and
the cluster never disagree about where a task is, tasks are dequeued in
priority order, and a snapshot restores to an indistinguishable state.
A silent break (a leaked GPU after a botched eviction, a task placed
twice, a non-picklable scrap of state) corrupts every later round and
-- since the online service took over -- live telemetry, instead of one
batch run.

This module re-derives those invariants from first principles after
every scheduler round and raises a structured
:class:`InvariantViolation` naming the offending server/GPU/task/job
the moment one breaks.  It is opt-in: set ``REPRO_SANITIZE=1`` in the
environment (the CI job does), or pass ``SimulationEngine(sanitize=True)``
/ ``ServiceConfig(sanitize=True)`` explicitly.

Checked invariants
------------------
``resource-conservation``
    Every server/GPU ledger equals the sum of its hosted tasks'
    demands; no residual is negative.  (A mismatch is a leak: resources
    held by nobody, or double-freed.)
``placement-consistency``
    Every task hosted by a server points back at that server and GPU
    and is in the ``RUNNING`` state; GPU membership partitions server
    membership.
``queue-consistency``
    Every queued task belongs to a live job, is in the ``QUEUED``
    state, appears once, and is not simultaneously placed; no server
    hosts a task of a completed job.
``priority-order``
    The dequeue order the scheduler declares is job-grouped and
    monotone non-increasing in score, and placements are emitted as a
    subsequence of it (Section 3.3's priority-ordered dequeue).
``snapshot-roundtrip``
    ``pickle``-ing the engine and restoring it reproduces the exact
    observable state (the determinism contract behind crash-safe
    resume).  Engines holding non-picklable user objects skip this
    check (counted in :attr:`Sanitizer.snapshot_checks_skipped`).
``dead-server``
    Fault injection (:mod:`repro.faults`): a failed server hosts no
    tasks and holds no load, and a failed GPU hosts no tasks — killed
    work must have been fully released back to the queue, and no
    scheduler path may have re-placed onto lost hardware.
"""

from __future__ import annotations

import os
import pickle
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Optional

from repro.cluster.cluster import Cluster
from repro.workload.job import TaskState

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import SimulationEngine
    from repro.sim.interface import SchedulerDecision

__all__ = [
    "InvariantViolation",
    "Sanitizer",
    "SanitizingCluster",
    "check_cluster_conservation",
    "check_dead_servers",
    "check_dequeue_order",
    "check_queue_consistency",
    "check_snapshot_roundtrip",
    "engine_state_digest",
    "sanitize_from_env",
]

#: Relative tolerance for ledger-vs-recomputed comparisons: incremental
#: ``+=``/``-=`` accounting and a fresh sum differ by association order.
DEFAULT_TOLERANCE = 1e-6

#: Environment switch: any of these values turns the sanitizer on.
_TRUTHY = frozenset({"1", "true", "yes", "on", "strict"})


def sanitize_from_env(env_var: str = "REPRO_SANITIZE") -> bool:
    """Whether the environment asks for sanitized runs."""
    return os.environ.get(env_var, "").strip().lower() in _TRUTHY


class InvariantViolation(AssertionError):
    """A broken runtime invariant, carrying the offending entity ids.

    Attributes mirror the constructor: ``invariant`` is the stable
    check name (see the module docstring), and ``server_id`` /
    ``gpu_id`` / ``task_id`` / ``job_id`` name the culprit where known.
    """

    def __init__(
        self,
        invariant: str,
        message: str,
        *,
        server_id: Optional[int] = None,
        gpu_id: Optional[int] = None,
        task_id: Optional[str] = None,
        job_id: Optional[str] = None,
        round_index: Optional[int] = None,
        detail: Optional[dict[str, Any]] = None,
    ) -> None:
        self.invariant = invariant
        self.server_id = server_id
        self.gpu_id = gpu_id
        self.task_id = task_id
        self.job_id = job_id
        self.round_index = round_index
        self.detail = detail or {}
        culprits = ", ".join(
            f"{key}={value}"
            for key, value in (
                ("server", server_id),
                ("gpu", gpu_id),
                ("task", task_id),
                ("job", job_id),
                ("round", round_index),
            )
            if value is not None
        )
        suffix = f" [{culprits}]" if culprits else ""
        super().__init__(f"{invariant}: {message}{suffix}")


# ----------------------------------------------------------------------
# Resource conservation / placement consistency
# ----------------------------------------------------------------------


def check_cluster_conservation(
    cluster: Cluster,
    tolerance: float = DEFAULT_TOLERANCE,
    round_index: Optional[int] = None,
) -> None:
    """Assert every server/GPU ledger matches its hosted tasks exactly.

    Catches leaks in both directions: load retained after a task left
    (the classic leaked GPU) and load never accounted when one arrived.
    """
    for server in cluster.servers:
        hosted = server.tasks()
        expected = sum((t.true_demand for t in hosted), start=type(server.load)())
        for kind_name, have, want in zip(
            ("gpu", "cpu", "mem", "bw"), server.load, expected
        ):
            scale = max(1.0, abs(want))
            if abs(have - want) > tolerance * scale:
                raise InvariantViolation(
                    "resource-conservation",
                    f"server ledger {kind_name}={have:.9g} but hosted tasks "
                    f"sum to {want:.9g} (leak of {have - want:+.9g})",
                    server_id=server.server_id,
                    round_index=round_index,
                    detail={"resource": kind_name, "ledger": have, "recomputed": want},
                )
            if have < -tolerance:
                raise InvariantViolation(
                    "resource-conservation",
                    f"negative residual {kind_name}={have:.9g}",
                    server_id=server.server_id,
                    round_index=round_index,
                    detail={"resource": kind_name, "ledger": have},
                )
        server_task_ids = {t.task_id for t in hosted}
        for task in hosted:
            if task.server_id != server.server_id or task.state is not TaskState.RUNNING:
                raise InvariantViolation(
                    "placement-consistency",
                    f"hosted task points at server={task.server_id} "
                    f"state={task.state.value}",
                    server_id=server.server_id,
                    task_id=task.task_id,
                    job_id=task.job_id,
                    round_index=round_index,
                )
        gpu_task_ids: set[str] = set()
        for gpu in server.gpus:
            gpu_hosted = gpu.tasks()
            want_gpu = sum(t.true_demand.gpu for t in gpu_hosted)
            scale = max(1.0, abs(want_gpu))
            if abs(gpu.load - want_gpu) > tolerance * scale:
                raise InvariantViolation(
                    "resource-conservation",
                    f"GPU ledger {gpu.load:.9g} but hosted tasks sum to "
                    f"{want_gpu:.9g} (leak of {gpu.load - want_gpu:+.9g})",
                    server_id=server.server_id,
                    gpu_id=gpu.gpu_id,
                    round_index=round_index,
                    detail={"ledger": gpu.load, "recomputed": want_gpu},
                )
            for task in gpu_hosted:
                if task.task_id in gpu_task_ids:
                    raise InvariantViolation(
                        "placement-consistency",
                        "task hosted by two GPUs of the same server",
                        server_id=server.server_id,
                        gpu_id=gpu.gpu_id,
                        task_id=task.task_id,
                        round_index=round_index,
                    )
                if task.gpu_id != gpu.gpu_id:
                    raise InvariantViolation(
                        "placement-consistency",
                        f"task on GPU {gpu.gpu_id} points at gpu_id={task.gpu_id}",
                        server_id=server.server_id,
                        gpu_id=gpu.gpu_id,
                        task_id=task.task_id,
                        round_index=round_index,
                    )
            gpu_task_ids.update(t.task_id for t in gpu_hosted)
        if gpu_task_ids != server_task_ids:
            orphan = (gpu_task_ids ^ server_task_ids) or {"<none>"}
            raise InvariantViolation(
                "placement-consistency",
                f"GPU membership disagrees with server membership: {sorted(orphan)}",
                server_id=server.server_id,
                task_id=sorted(orphan)[0],
                round_index=round_index,
            )


class SanitizingCluster(Cluster):
    """A :class:`~repro.cluster.cluster.Cluster` that can audit itself.

    Drop-in replacement (``SanitizingCluster.build(...)`` works like
    ``Cluster.build``); call :meth:`verify` wherever an explicit
    conservation audit is wanted, e.g. between hand-applied decisions
    in tests.
    """

    def verify(
        self,
        tolerance: float = DEFAULT_TOLERANCE,
        round_index: Optional[int] = None,
    ) -> None:
        """Raise :class:`InvariantViolation` on any ledger inconsistency."""
        check_cluster_conservation(self, tolerance=tolerance, round_index=round_index)


# ----------------------------------------------------------------------
# Queue consistency
# ----------------------------------------------------------------------


def check_queue_consistency(
    engine: "SimulationEngine", round_index: Optional[int] = None
) -> None:
    """Assert queue/cluster/job bookkeeping agree about every task."""
    seen: set[str] = set()
    for task in engine.queue:
        if task.task_id in seen:
            raise InvariantViolation(
                "queue-consistency",
                "task queued twice",
                task_id=task.task_id,
                job_id=task.job_id,
                round_index=round_index,
            )
        seen.add(task.task_id)
        if task.job_id not in engine.active_jobs:
            raise InvariantViolation(
                "queue-consistency",
                "queued task belongs to a job that is not active",
                task_id=task.task_id,
                job_id=task.job_id,
                round_index=round_index,
            )
        if task.state is not TaskState.QUEUED or task.server_id is not None:
            raise InvariantViolation(
                "queue-consistency",
                f"queued task has state={task.state.value} "
                f"server_id={task.server_id} (queued and placed at once)",
                task_id=task.task_id,
                job_id=task.job_id,
                round_index=round_index,
            )
    for server in engine.cluster.servers:
        for task in server.tasks():
            if task.task_id in seen:
                raise InvariantViolation(
                    "queue-consistency",
                    "task is both placed on a server and in the waiting queue",
                    server_id=server.server_id,
                    task_id=task.task_id,
                    job_id=task.job_id,
                    round_index=round_index,
                )
            if task.job_id not in engine.active_jobs:
                raise InvariantViolation(
                    "queue-consistency",
                    "server hosts a task of a job that is not active",
                    server_id=server.server_id,
                    task_id=task.task_id,
                    job_id=task.job_id,
                    round_index=round_index,
                )


# ----------------------------------------------------------------------
# Dead servers (fault injection)
# ----------------------------------------------------------------------


def check_dead_servers(
    cluster: Cluster,
    tolerance: float = DEFAULT_TOLERANCE,
    round_index: Optional[int] = None,
) -> None:
    """Assert no task (or load) resides on failed hardware.

    After a ``server_crash``/``gpu_fail`` event the engine must have
    killed every resident task and released its demand, and no later
    placement/migration may target the dead server or device until it
    is revived.
    """
    for server in cluster.servers:
        if server.failed:
            hosted = server.tasks()
            if hosted:
                raise InvariantViolation(
                    "dead-server",
                    f"failed server still hosts {len(hosted)} task(s)",
                    server_id=server.server_id,
                    task_id=hosted[0].task_id,
                    job_id=hosted[0].job_id,
                    round_index=round_index,
                )
            residual = max(abs(v) for v in server.load.as_tuple())
            if residual > tolerance:
                raise InvariantViolation(
                    "dead-server",
                    f"failed server retains load (residual {residual:.9g})",
                    server_id=server.server_id,
                    round_index=round_index,
                )
        for gpu in server.gpus:
            if gpu.failed and gpu.task_count:
                bad = gpu.tasks()[0]
                raise InvariantViolation(
                    "dead-server",
                    f"failed GPU still hosts {gpu.task_count} task(s)",
                    server_id=server.server_id,
                    gpu_id=gpu.gpu_id,
                    task_id=bad.task_id,
                    job_id=bad.job_id,
                    round_index=round_index,
                )


# ----------------------------------------------------------------------
# Priority-ordered dequeue
# ----------------------------------------------------------------------


def check_dequeue_order(
    decision: "SchedulerDecision",
    tolerance: float = 1e-9,
    round_index: Optional[int] = None,
) -> None:
    """Assert the declared dequeue order is priority-monotone.

    Schedulers that dequeue by priority declare their ordered pool via
    :meth:`~repro.sim.interface.SchedulerDecision.record_dequeue`; the
    check enforces the :func:`~repro.core.mlf_h.order_pool` contract --
    each job's tasks contiguous, jobs ordered by non-increasing best
    score, tasks within a job by non-increasing score -- and that the
    round's placements were emitted as a subsequence of that order.
    Schedulers that declare nothing (FIFO and friends) are skipped.
    """
    order = decision.dequeue_order
    if not order:
        return
    scores = decision.dequeue_scores
    runs: list[tuple[str, float]] = []  # (job_id, best score), in order
    seen_jobs: set[str] = set()
    prev_job: Optional[str] = None
    prev_score: Optional[float] = None
    for job_id, task_id in order:
        score = scores.get(task_id, 0.0)
        if job_id != prev_job:
            if job_id in seen_jobs:
                raise InvariantViolation(
                    "priority-order",
                    "job's tasks are not contiguous in the dequeue order",
                    job_id=job_id,
                    task_id=task_id,
                    round_index=round_index,
                )
            seen_jobs.add(job_id)
            runs.append((job_id, score))
            prev_job = job_id
        elif prev_score is not None and score > prev_score + tolerance:
            raise InvariantViolation(
                "priority-order",
                f"task score {score:.9g} exceeds its predecessor "
                f"{prev_score:.9g} within job group",
                job_id=job_id,
                task_id=task_id,
                round_index=round_index,
            )
        prev_score = score
    for (job_a, best_a), (job_b, best_b) in zip(runs, runs[1:]):
        if best_b > best_a + tolerance:
            raise InvariantViolation(
                "priority-order",
                f"job group score {best_b:.9g} exceeds preceding group "
                f"{best_a:.9g}",
                job_id=job_b,
                round_index=round_index,
                detail={"preceding_job": job_a},
            )
    position = {task_id: i for i, (_job, task_id) in enumerate(order)}
    last = -1
    for placement in decision.placements:
        where = position.get(placement.task.task_id)
        if where is None:
            raise InvariantViolation(
                "priority-order",
                "placed task never appeared in the declared dequeue order",
                task_id=placement.task.task_id,
                job_id=placement.task.job_id,
                round_index=round_index,
            )
        if where < last:
            raise InvariantViolation(
                "priority-order",
                "placements are not a subsequence of the dequeue order",
                task_id=placement.task.task_id,
                job_id=placement.task.job_id,
                round_index=round_index,
            )
        last = where


# ----------------------------------------------------------------------
# Snapshot round-trip
# ----------------------------------------------------------------------


def engine_state_digest(engine: "SimulationEngine") -> tuple[Any, ...]:
    """A canonical, comparable summary of an engine's observable state.

    Everything that determines the future schedule is folded in: the
    clock, round counter, RNG state, queue order, per-job progress,
    per-server/GPU ledgers and membership, in-flight iterations and the
    pending event list.  Two engines with equal digests produce the
    same subsequent schedule.
    """
    servers = tuple(
        (
            server.server_id,
            server.failed,
            server.load.as_tuple(),
            tuple(sorted(t.task_id for t in server.tasks())),
            tuple(
                (
                    gpu.gpu_id,
                    gpu.failed,
                    gpu.load,
                    tuple(sorted(t.task_id for t in gpu.tasks())),
                )
                for gpu in server.gpus
            ),
        )
        for server in engine.cluster.servers
    )
    jobs = tuple(
        sorted(
            (
                job.job_id,
                job.state.value,
                job.iterations_completed,
                job.arrival_time,
            )
            for job in engine.active_jobs.values()
        )
    )
    iterations = tuple(
        sorted(
            (job_id, state.token, state.end_time, state.cross_mb)
            for job_id, state in engine._iteration.items()
        )
    )
    events = tuple(
        (
            time,
            seq,
            event.kind.value,
            _event_payload_key(event.payload),
        )
        for time, seq, event in engine._events._heap
    )
    faults = engine.faults.digest_state() if engine.faults is not None else None
    return (
        engine.now,
        engine.round_index,
        engine._pending_arrivals,
        engine._rng.getstate(),
        tuple(t.task_id for t in engine.queue),
        jobs,
        iterations,
        servers,
        events,
        faults,
    )


def _event_payload_key(payload: Any) -> Any:
    if payload is None:
        return None
    if isinstance(payload, tuple):
        job, token = payload
        return (job.job_id, token)
    return payload.job_id


def check_snapshot_roundtrip(
    engine: "SimulationEngine", round_index: Optional[int] = None
) -> bool:
    """Assert ``restore(snapshot(engine))`` is observably identical.

    Returns ``False`` (check skipped) when the engine graph holds
    non-picklable user objects -- a foreign scheduler stub cannot be
    round-tripped, which is a capability gap, not a broken invariant.
    """
    try:
        blob = pickle.dumps(engine)
    except Exception:
        return False
    restored = pickle.loads(blob)
    before = engine_state_digest(engine)
    after = engine_state_digest(restored)
    if before != after:
        mismatch = _first_mismatch(before, after)
        raise InvariantViolation(
            "snapshot-roundtrip",
            f"restored engine state diverges at {mismatch}",
            round_index=round_index,
        )
    return True


_DIGEST_FIELDS = (
    "now",
    "round_index",
    "pending_arrivals",
    "rng_state",
    "queue",
    "active_jobs",
    "iterations",
    "servers",
    "events",
    "faults",
)


def _first_mismatch(before: tuple[Any, ...], after: tuple[Any, ...]) -> str:
    for name, a, b in zip(_DIGEST_FIELDS, before, after):
        if a != b:
            return name
    return "<unknown>"


# ----------------------------------------------------------------------
# The per-round driver
# ----------------------------------------------------------------------


@dataclass
class Sanitizer:
    """Runs every invariant check after each scheduler round.

    ``snapshot_every`` throttles the (comparatively expensive) pickle
    round-trip check; the cheap ledger/queue/order checks always run.
    Override via the ``REPRO_SANITIZE_SNAPSHOT_EVERY`` environment
    variable when sanitizing long simulations.
    """

    tolerance: float = DEFAULT_TOLERANCE
    snapshot_every: int = field(
        default_factory=lambda: max(
            1, int(os.environ.get("REPRO_SANITIZE_SNAPSHOT_EVERY", "1") or "1")
        )
    )
    rounds_checked: int = 0
    violations_raised: int = 0
    snapshot_checks_skipped: int = 0

    def check_round(
        self,
        engine: "SimulationEngine",
        decision: Optional["SchedulerDecision"] = None,
    ) -> None:
        """Audit one completed round; raises :class:`InvariantViolation`."""
        round_index = engine.round_index
        self.rounds_checked += 1
        try:
            check_cluster_conservation(
                engine.cluster, tolerance=self.tolerance, round_index=round_index
            )
            check_queue_consistency(engine, round_index=round_index)
            check_dead_servers(
                engine.cluster, tolerance=self.tolerance, round_index=round_index
            )
            if decision is not None:
                check_dequeue_order(decision, round_index=round_index)
            if self.rounds_checked % self.snapshot_every == 0:
                if not check_snapshot_roundtrip(engine, round_index=round_index):
                    self.snapshot_checks_skipped += 1
        except InvariantViolation:
            self.violations_raised += 1
            raise
