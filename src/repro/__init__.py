"""repro — reproduction of "Job Scheduling for Large-Scale Machine
Learning Clusters" (Wang, Liu, Shen — CoNEXT 2020).

The package implements the paper's MLFS scheduling system (MLF-H,
MLF-RL, MLF-C), every substrate it runs on (multi-resource cluster
model, data+model-parallel workloads with task dependency DAGs, a
trace-driven discrete-event simulator, learning-curve predictors, a
NumPy RL stack) and the seven comparison schedulers of its evaluation.
"""

# Deprecated import surface: prefer ``from repro import api`` — the
# supported public API (run/sweep/specs) lives in :mod:`repro.api`.

from repro.cluster import Cluster, ResourceKind, ResourceVector, Server
from repro.core import (
    MLFSConfig,
    MLFSScheduler,
    make_mlf_h,
    make_mlf_rl,
    make_mlfs,
)
from repro.sim import (
    EngineConfig,
    SimulationEngine,
    SimulationResult,
    SimulationSetup,
    run_comparison,
    run_simulation,
)
from repro.workload import build_jobs, generate_trace

__version__ = "1.0.0"

__all__ = [
    "Cluster",
    "EngineConfig",
    "MLFSConfig",
    "MLFSScheduler",
    "ResourceKind",
    "ResourceVector",
    "Server",
    "SimulationEngine",
    "SimulationResult",
    "SimulationSetup",
    "__version__",
    "build_jobs",
    "generate_trace",
    "make_mlf_h",
    "make_mlf_rl",
    "make_mlfs",
    "quick_compare",
    "run_comparison",
    "run_simulation",
]


def quick_compare(
    num_jobs: int = 50,
    num_servers: int = 10,
    duration_hours: float = 4.0,
    seed: int = 0,
) -> dict[str, dict[str, float]]:
    """Run MLFS variants and all baselines on one synthetic workload.

    A convenience wrapper used by the README quickstart; returns
    ``{scheduler_name: summary_dict}``.
    """
    from repro.baselines import (
        FairScheduler,
        GandivaScheduler,
        GrapheneScheduler,
        HyperSchedScheduler,
        RLScheduler,
        SLAQScheduler,
        TiresiasScheduler,
    )

    records = generate_trace(
        num_jobs, duration_seconds=duration_hours * 3600.0, seed=seed
    )
    setup = SimulationSetup(
        records=records,
        cluster_factory=lambda: Cluster.build(num_servers, 4),
        workload_seed=seed + 1,
    )
    schedulers = [
        make_mlfs(),
        make_mlf_rl(),
        make_mlf_h(),
        GrapheneScheduler(),
        TiresiasScheduler(),
        HyperSchedScheduler(),
        RLScheduler(),
        GandivaScheduler(),
        FairScheduler(),
        SLAQScheduler(),
    ]
    results = run_comparison(schedulers, setup)
    return {name: result.summary() for name, result in results.items()}
