"""Trace records and CSV persistence.

The paper drives its simulation with the public Microsoft Philly trace
(117,325 DNN training jobs over 550 servers / 2,474 GPUs).  We model the
same per-job fields the paper consumes — "job arrival time, the number of
GPUs requested and job completion status as the accuracy requirement"
(Section 4.1) — plus the fields our generator synthesizes to fill the
information the paper obtained by sample-running models (model identity,
iteration counts).
"""

from __future__ import annotations

import csv
from dataclasses import dataclass, fields
from pathlib import Path
from typing import Iterable, Iterator


@dataclass(frozen=True, slots=True)
class TraceRecord:
    """One job of the workload trace.

    Attributes
    ----------
    job_id:
        Unique job identifier.
    arrival_time:
        Submission time in seconds from trace start.
    gpus_requested:
        GPUs the job asked for — one of {1, 2, 4, 8, 16, 32} in the
        paper's setup; also the model-partition count.
    model_name:
        Which of the five workload models the job maps to.
    max_iterations:
        Iterations the job would run without early stopping.
    accuracy_requirement:
        Required accuracy by the deadline (the Philly "completion
        status" field plays this role in the paper).
    urgency:
        Urgency coefficient ``L_J`` in ``[0, m]``.
    training_data_mb:
        Training-data size, drawn from [100, 1000] MB in the paper.
    """

    job_id: str
    arrival_time: float
    gpus_requested: int
    model_name: str
    max_iterations: int
    accuracy_requirement: float
    urgency: int
    training_data_mb: float

    def validate(self) -> None:
        """Raise ``ValueError`` on out-of-domain fields."""
        if self.arrival_time < 0:
            raise ValueError(f"{self.job_id}: negative arrival_time")
        if self.gpus_requested < 1:
            raise ValueError(f"{self.job_id}: gpus_requested must be >= 1")
        if self.max_iterations < 1:
            raise ValueError(f"{self.job_id}: max_iterations must be >= 1")
        if not 0.0 <= self.accuracy_requirement <= 1.0:
            raise ValueError(f"{self.job_id}: accuracy_requirement out of [0,1]")
        if self.urgency < 0:
            raise ValueError(f"{self.job_id}: urgency must be >= 0")


_FIELD_NAMES = [f.name for f in fields(TraceRecord)]


def write_trace(records: Iterable[TraceRecord], path: str | Path) -> int:
    """Write trace records to a CSV file; returns the record count."""
    path = Path(path)
    count = 0
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(_FIELD_NAMES)
        for record in records:
            writer.writerow([getattr(record, name) for name in _FIELD_NAMES])
            count += 1
    return count


def read_trace(path: str | Path) -> list[TraceRecord]:
    """Read trace records from a CSV file written by :func:`write_trace`."""
    path = Path(path)
    records = []
    with path.open(newline="") as handle:
        reader = csv.DictReader(handle)
        missing = set(_FIELD_NAMES) - set(reader.fieldnames or [])
        if missing:
            raise ValueError(f"trace {path} missing columns: {sorted(missing)}")
        for row in reader:
            record = TraceRecord(
                job_id=row["job_id"],
                arrival_time=float(row["arrival_time"]),
                gpus_requested=int(row["gpus_requested"]),
                model_name=row["model_name"],
                max_iterations=int(row["max_iterations"]),
                accuracy_requirement=float(row["accuracy_requirement"]),
                urgency=int(row["urgency"]),
                training_data_mb=float(row["training_data_mb"]),
            )
            record.validate()
            records.append(record)
    return records


def iter_window(
    records: Iterable[TraceRecord], start: float, end: float
) -> Iterator[TraceRecord]:
    """Yield the records whose arrival falls in ``[start, end)``.

    The paper randomly selects one week of the 18-week trace for the
    real-experiment runs; this is the slicing primitive for that.
    """
    for record in records:
        if start <= record.arrival_time < end:
            yield record
