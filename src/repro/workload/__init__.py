"""Workload substrate: models, partitions, jobs, task DAGs and traces."""

from repro.workload.dag import (
    DEFAULT_COMM_VOLUME_RANGE,
    build_task_graph,
    critical_path_seconds,
    dependents_count,
)
from repro.workload.generator import (
    WorkloadConfig,
    build_job,
    build_jobs,
    estimate_execution_time,
    scale_job_count,
    split_parallelism,
)
from repro.workload.job import (
    CommStructure,
    Job,
    JobState,
    StopOption,
    Task,
    TaskState,
)
from repro.workload.models import (
    MODEL_NAMES,
    MODEL_ZOO,
    LayerSpec,
    ModelProfile,
    PartitionStyle,
    get_model,
)
from repro.workload.partition import ModelPartition, partition_model
from repro.workload.synthetic import (
    GPU_CHOICES,
    PhillyLikeTraceGenerator,
    SyntheticTraceConfig,
    generate_trace,
)
from repro.workload.trace import TraceRecord, iter_window, read_trace, write_trace

__all__ = [
    "CommStructure",
    "DEFAULT_COMM_VOLUME_RANGE",
    "GPU_CHOICES",
    "Job",
    "JobState",
    "LayerSpec",
    "MODEL_NAMES",
    "MODEL_ZOO",
    "ModelPartition",
    "ModelProfile",
    "PartitionStyle",
    "PhillyLikeTraceGenerator",
    "StopOption",
    "SyntheticTraceConfig",
    "Task",
    "TaskState",
    "TraceRecord",
    "WorkloadConfig",
    "build_job",
    "build_jobs",
    "build_task_graph",
    "critical_path_seconds",
    "dependents_count",
    "estimate_execution_time",
    "generate_trace",
    "get_model",
    "iter_window",
    "read_trace",
    "scale_job_count",
    "split_parallelism",
    "write_trace",
]
