"""Model-parallel partitioning of a model profile.

Implements the two partitioning schemes of Section 4.1:

* **sequential** (MLP, AlexNet): the layer list is cut into ``P``
  contiguous groups balanced by parameter count, producing a chain of
  partitions;
* **layered** (LSTM, ResNet): every layer is sliced into ``P`` parts and
  slice ``j`` of every layer forms partition ``j``, producing ``P``
  parallel partitions (tensor-parallel style).

A partition's size ``S_k`` is its parameter count; the normalized size
``S_k / S_J`` is the spatial ML feature in the priority formula (Eq. 2).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.workload.models import ModelProfile, PartitionStyle


@dataclass(frozen=True, slots=True)
class ModelPartition:
    """One model partition produced by the partitioner.

    Attributes
    ----------
    index:
        Partition index within the job, ``0 .. P-1``.
    params_m:
        Parameter count of the partition in millions (``S_k``).
    compute_fraction:
        Fraction of a full-model iteration's compute this partition
        performs; fractions over a job sum to 1.
    layer_names:
        Names of the (slices of) layers contained in the partition.
    depends_on_previous:
        ``True`` for sequential partitions with ``index > 0`` — partition
        ``i`` consumes the activations of partition ``i - 1``.
    """

    index: int
    params_m: float
    compute_fraction: float
    layer_names: tuple[str, ...]
    depends_on_previous: bool


def partition_model(profile: ModelProfile, num_partitions: int) -> list[ModelPartition]:
    """Split a model into ``num_partitions`` model partitions.

    For :data:`PartitionStyle.NONE` models (SVM) or ``num_partitions == 1``
    a single whole-model partition is returned.

    Raises
    ------
    ValueError
        If ``num_partitions`` is not positive.
    """
    if num_partitions < 1:
        raise ValueError(f"num_partitions must be >= 1, got {num_partitions}")

    if num_partitions == 1 or profile.partition_style is PartitionStyle.NONE:
        return [
            ModelPartition(
                index=0,
                params_m=profile.total_params_m,
                compute_fraction=1.0,
                layer_names=tuple(layer.name for layer in profile.layers),
                depends_on_previous=False,
            )
        ]

    if profile.partition_style is PartitionStyle.SEQUENTIAL:
        return _partition_sequential(profile, num_partitions)
    return _partition_layered(profile, num_partitions)


def _partition_sequential(
    profile: ModelProfile, num_partitions: int
) -> list[ModelPartition]:
    """Cut the layer list into contiguous, parameter-balanced groups.

    Uses a greedy sweep targeting ``total / P`` parameters per group.
    If there are fewer layers than requested partitions, the partition
    count degrades gracefully to the layer count.
    """
    layers = list(profile.layers)
    count = min(num_partitions, len(layers))
    total = profile.total_params_m
    target = total / count

    groups: list[list] = []
    current: list = []
    current_params = 0.0
    remaining_groups = count
    for i, layer in enumerate(layers):
        current.append(layer)
        current_params += layer.params_m
        layers_left = len(layers) - i - 1
        # Close the group when the target is met, but never strand more
        # groups than layers remaining.
        if (
            remaining_groups > 1
            and current_params >= target
            and layers_left >= remaining_groups - 1
        ):
            groups.append(current)
            current = []
            current_params = 0.0
            remaining_groups -= 1
    if current:
        groups.append(current)

    partitions = []
    for index, group in enumerate(groups):
        params = sum(layer.params_m for layer in group)
        partitions.append(
            ModelPartition(
                index=index,
                params_m=params,
                compute_fraction=params / total if total else 1.0 / len(groups),
                layer_names=tuple(layer.name for layer in group),
                depends_on_previous=index > 0,
            )
        )
    return partitions


def _partition_layered(
    profile: ModelProfile, num_partitions: int
) -> list[ModelPartition]:
    """Slice every layer into ``P`` parts; slice ``j`` forms partition ``j``.

    All partitions are mutually independent within an iteration (they run
    as parallel slices), so ``depends_on_previous`` is always ``False``.
    """
    total = profile.total_params_m
    per_slice = total / num_partitions
    partitions = []
    for index in range(num_partitions):
        partitions.append(
            ModelPartition(
                index=index,
                params_m=per_slice,
                compute_fraction=1.0 / num_partitions,
                layer_names=tuple(
                    f"{layer.name}[{index}/{num_partitions}]"
                    for layer in profile.layers
                ),
                depends_on_previous=False,
            )
        )
    return partitions
