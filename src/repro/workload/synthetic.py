"""Synthetic Philly-like trace generation.

The public Microsoft Philly trace is not redistributable inside this
offline environment, so we synthesize traces that match its published
statistics (Jeon et al., "Analysis of Large-Scale Multi-Tenant GPU
Clusters for DNN Training Workloads", ATC 2019), which are what shape
scheduler behaviour:

* GPU demand is dominated by small jobs — most request a single GPU,
  with a heavy tail up to 32;
* job durations are heavy-tailed (log-normal spanning minutes to days),
  which we express through heavy-tailed iteration counts;
* arrivals follow a diurnal pattern over the day.

The generator is fully deterministic given a seed.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.workload.models import MODEL_NAMES
from repro.workload.trace import TraceRecord

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.cluster import Cluster

#: Paper setting: GPUs per job drawn from this set (Section 4.1).
GPU_CHOICES: tuple[int, ...] = (1, 2, 4, 8, 16, 32)

#: Philly-like weights: single-GPU jobs dominate, big jobs are rare.
GPU_WEIGHTS: tuple[float, ...] = (0.52, 0.18, 0.14, 0.09, 0.05, 0.02)


@dataclass(frozen=True)
class SyntheticTraceConfig:
    """Knobs of the synthetic trace generator.

    Attributes
    ----------
    num_jobs:
        Number of jobs to emit.
    duration_seconds:
        Length of the arrival window.
    mean_iterations / sigma_iterations:
        Log-normal parameters (of the underlying normal) for iteration
        counts; the heavy tail reproduces Philly's duration skew.
    min_iterations / max_iterations:
        Clamp bounds on iteration counts.
    diurnal_strength:
        0 disables the day/night arrival modulation; 1 makes night-time
        arrival rates drop to near zero.
    urgency_levels:
        ``m`` — urgency coefficients are drawn from ``[1, m]``.
    accuracy_quantile_range:
        The accuracy requirement is set to this quantile range of the
        job's achievable accuracy.  The paper uses the Philly
        "completion status" — the accuracy the job historically
        reached — as the requirement, so the range sits close to 1.
    """

    num_jobs: int = 500
    duration_seconds: float = 7 * 24 * 3600.0
    mean_iterations: float = 3.2
    sigma_iterations: float = 0.9
    min_iterations: int = 5
    max_iterations: int = 400
    diurnal_strength: float = 0.6
    urgency_levels: int = 10
    accuracy_quantile_range: tuple[float, float] = (0.85, 0.99)
    gpu_choices: tuple[int, ...] = GPU_CHOICES
    gpu_weights: tuple[float, ...] = GPU_WEIGHTS
    model_names: tuple[str, ...] = MODEL_NAMES
    data_mb_range: tuple[float, float] = (100.0, 1000.0)


@dataclass
class PhillyLikeTraceGenerator:
    """Deterministic synthetic trace generator.

    Example
    -------
    >>> gen = PhillyLikeTraceGenerator(SyntheticTraceConfig(num_jobs=10), seed=1)
    >>> records = gen.generate()
    >>> len(records)
    10
    """

    config: SyntheticTraceConfig = field(default_factory=SyntheticTraceConfig)
    seed: int = 0

    def generate(self) -> list[TraceRecord]:
        """Produce the trace, sorted by arrival time."""
        rng = random.Random(self.seed)
        arrivals = self._arrival_times(rng)
        records = []
        for index, arrival in enumerate(arrivals):
            records.append(self._make_record(rng, index, arrival))
        records.sort(key=lambda r: r.arrival_time)
        return records

    # -- internals -------------------------------------------------------

    def _arrival_times(self, rng: random.Random) -> list[float]:
        """Draw arrival times with a diurnal intensity via thinning."""
        cfg = self.config
        times: list[float] = []
        while len(times) < cfg.num_jobs:
            t = rng.uniform(0.0, cfg.duration_seconds)
            if rng.random() <= self._diurnal_intensity(t):
                times.append(t)
        times.sort()
        return times

    def _diurnal_intensity(self, t: float) -> float:
        """Relative arrival intensity in (0, 1]; peak mid-day."""
        strength = self.config.diurnal_strength
        if strength <= 0:
            return 1.0
        day_fraction = (t % 86400.0) / 86400.0
        wave = 0.5 * (1.0 + math.sin(2.0 * math.pi * (day_fraction - 0.25)))
        return max(1e-3, 1.0 - strength + strength * wave)

    def _make_record(
        self, rng: random.Random, index: int, arrival: float
    ) -> TraceRecord:
        cfg = self.config
        model_name = rng.choice(cfg.model_names)
        gpus = rng.choices(cfg.gpu_choices, weights=cfg.gpu_weights, k=1)[0]
        iterations = int(
            round(rng.lognormvariate(cfg.mean_iterations, cfg.sigma_iterations))
        )
        iterations = max(cfg.min_iterations, min(cfg.max_iterations, iterations))
        lo_q, hi_q = cfg.accuracy_quantile_range
        accuracy_quantile = rng.uniform(lo_q, hi_q)
        urgency = rng.randint(1, cfg.urgency_levels)
        data_mb = rng.uniform(*cfg.data_mb_range)
        return TraceRecord(
            job_id=f"j{index}",
            arrival_time=arrival,
            gpus_requested=gpus,
            model_name=model_name,
            max_iterations=iterations,
            # Stored as a quantile in [0,1]; the workload builder converts
            # it to an absolute accuracy once the job's curve is known.
            accuracy_requirement=round(accuracy_quantile, 6),
            urgency=urgency,
            training_data_mb=round(data_mb, 3),
        )


def generate_trace(
    num_jobs: int,
    duration_seconds: float = 7 * 24 * 3600.0,
    seed: int = 0,
    **overrides,
) -> list[TraceRecord]:
    """Convenience wrapper: build a config and generate a trace."""
    config = SyntheticTraceConfig(
        num_jobs=num_jobs, duration_seconds=duration_seconds, **overrides
    )
    return PhillyLikeTraceGenerator(config=config, seed=seed).generate()


# -- published Philly shape (Jeon et al., ATC 2019 / the paper's §4) -------

#: Jobs in the public Philly trace slice the paper simulates against.
PHILLY_NUM_JOBS = 117_325
#: Servers in the Philly cluster.
PHILLY_NUM_SERVERS = 550
#: GPUs in the Philly cluster (not a multiple of the server count —
#: the fleet mixes 4- and 5-GPU hosts when flattened to our model).
PHILLY_NUM_GPUS = 2_474
#: Arrival window of the trace (~75 days in the original).
PHILLY_DURATION_SECONDS = 75 * 24 * 3600.0


def philly_scale_config(
    num_jobs: int = PHILLY_NUM_JOBS,
    duration_seconds: float = PHILLY_DURATION_SECONDS,
) -> SyntheticTraceConfig:
    """The full synthetic-Philly preset (117,325 jobs by default).

    Same statistical shape as the default generator, sized to the
    published trace.  ``num_jobs`` scales the preset down for smoke
    tests without changing the per-job distributions.
    """
    return SyntheticTraceConfig(
        num_jobs=num_jobs,
        duration_seconds=duration_seconds,
    )


def philly_cluster() -> "Cluster":
    """The Philly fleet: 550 servers totalling exactly 2,474 GPUs.

    2,474 is not a multiple of 550, so the build mixes 4- and 5-GPU
    servers (matching how the heterogeneous fleet flattens onto our
    homogeneous-server model) — 276 four-GPU and 274 five-GPU hosts.
    """
    from repro.cluster.cluster import Cluster
    from repro.cluster.resources import ResourceVector
    from repro.cluster.server import DEFAULT_SERVER_CAPACITY, Server

    base = DEFAULT_SERVER_CAPACITY
    per_gpu = base.gpu / 4.0
    servers = []
    five_gpu_hosts = PHILLY_NUM_GPUS - 4 * PHILLY_NUM_SERVERS
    for server_id in range(PHILLY_NUM_SERVERS):
        num_gpus = 5 if server_id < five_gpu_hosts else 4
        capacity = ResourceVector(
            gpu=per_gpu * num_gpus, cpu=base.cpu, mem=base.mem, bw=base.bw
        )
        servers.append(
            Server(server_id=server_id, capacity=capacity, num_gpus=num_gpus)
        )
    return Cluster(servers=servers)


def sparse_trace_config(
    num_jobs: int = 200,
    duration_seconds: float = 90 * 24 * 3600.0,
) -> SyntheticTraceConfig:
    """A sparse trace: few, long-running jobs over a wide window.

    The regime where event-driven passes shine — jobs spend most of
    their life in long iterations with nothing schedulable, so fixed
    60 s cadence burns passes that place nothing.  Used by
    ``benchmarks/bench_scale.py``.
    """
    return SyntheticTraceConfig(
        num_jobs=num_jobs,
        duration_seconds=duration_seconds,
        # Long jobs: shift the iteration log-normal up and clamp high.
        mean_iterations=5.5,
        sigma_iterations=0.6,
        min_iterations=100,
        max_iterations=2400,
        diurnal_strength=0.3,
        # The heaviest model only (140 s base iterations) with large
        # gradient/activation volumes: each iteration spans several 60 s
        # ticks, which is precisely when fixed cadence wastes passes.
        model_names=("resnet",),
        data_mb_range=(1000.0, 4000.0),
    )
