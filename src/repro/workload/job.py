"""Jobs and tasks — the unit of scheduling.

A *job* is one training workload submitted to the cluster; it carries the
user-facing requirements of Section 3.1 (deadline, accuracy requirement,
urgency level) plus the parallelism configuration of Section 3.2 (data
parallelism replicas × model parallelism partitions, communication
structure).  A *task* is one worker: it computes one model partition for
one mini-batch stream, and is the unit the schedulers queue, place and
migrate.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

import networkx as nx

from repro.cluster.resources import ResourceVector
from repro.workload.models import ModelProfile

if TYPE_CHECKING:  # pragma: no cover - typing only
    pass


class CommStructure(enum.Enum):
    """How workers exchange learned parameters (Section 3.2)."""

    PARAMETER_SERVER = "parameter_server"
    RING_ALLREDUCE = "ring_allreduce"
    TORUS_ALLREDUCE = "torus_allreduce"


class StopOption(enum.Enum):
    """MLF-C per-job stopping options (Section 3.5).

    * ``FIXED_ITERATIONS`` — option (i): run the iterations the user asked
      for (the status-quo behaviour).
    * ``OPT_STOP`` — option (ii): stop at the iteration where the
      predicted accuracy plateaus (OptStop).
    * ``ACCURACY_ONLY`` — option (iii): stop as soon as the required
      accuracy is reached.
    """

    FIXED_ITERATIONS = "fixed_iterations"
    OPT_STOP = "opt_stop"
    ACCURACY_ONLY = "accuracy_only"


class TaskState(enum.Enum):
    """Lifecycle of a task."""

    QUEUED = "queued"
    RUNNING = "running"
    FINISHED = "finished"


class JobState(enum.Enum):
    """Lifecycle of a job."""

    WAITING = "waiting"
    RUNNING = "running"
    COMPLETED = "completed"


@dataclass
class Task:
    """One worker of a job.

    Attributes
    ----------
    task_id:
        Globally unique id, e.g. ``"j12:r0p3"`` (replica 0, partition 3)
        or ``"j12:ps"`` for a parameter-server task.
    job:
        Back-reference to the owning :class:`Job`.
    partition_index / replica_index:
        Position in the parallelism grid.  ``-1`` for PS tasks.
    is_parameter_server:
        PS tasks exist only under the parameter-server communication
        structure and receive the highest priority (Section 3.3.1).
    demand:
        Static resource demand vector of the worker.
    partition_params_m:
        Parameter count of the model partition (``S_k``, millions).
    compute_seconds:
        Compute time this worker contributes to one iteration on an
        unshared GPU.
    """

    task_id: str
    job: "Job"
    partition_index: int
    replica_index: int
    demand: ResourceVector
    partition_params_m: float
    compute_seconds: float
    is_parameter_server: bool = False
    #: What the task *really* consumes once running.  Schedulers plan
    #: with ``demand`` (the estimate); the engine accounts with this.
    #: The gap is what creates overloaded servers at runtime — the
    #: situation MLF-H's migration (Section 3.3.3) exists to fix.
    actual_demand: Optional[ResourceVector] = None

    state: TaskState = TaskState.QUEUED
    server_id: Optional[int] = None
    gpu_id: Optional[int] = None
    queued_since: float = 0.0
    total_queue_wait: float = 0.0
    num_migrations: int = 0

    @property
    def job_id(self) -> str:
        """Id of the owning job."""
        return self.job.job_id

    @property
    def true_demand(self) -> ResourceVector:
        """The demand to account on servers (actual if known)."""
        return self.actual_demand if self.actual_demand is not None else self.demand

    @property
    def is_placed(self) -> bool:
        """Whether the task currently occupies a server."""
        return self.state is TaskState.RUNNING and self.server_id is not None

    def waiting_time(self, now: float) -> float:
        """Time spent in the queue, including the current stint if queued."""
        total = self.total_queue_wait
        if self.state is TaskState.QUEUED:
            total += max(0.0, now - self.queued_since)
        return total

    def mark_placed(self, now: float, server_id: int, gpu_id: int) -> None:
        """Record placement onto a server/GPU, closing the queue stint."""
        if self.state is TaskState.QUEUED:
            self.total_queue_wait += max(0.0, now - self.queued_since)
        self.state = TaskState.RUNNING
        self.server_id = server_id
        self.gpu_id = gpu_id

    def mark_queued(self, now: float) -> None:
        """Record eviction back to the waiting queue."""
        self.state = TaskState.QUEUED
        self.server_id = None
        self.gpu_id = None
        self.queued_since = now

    def mark_finished(self) -> None:
        """Record final completion (job finished or stopped)."""
        self.state = TaskState.FINISHED
        self.server_id = None
        self.gpu_id = None


@dataclass
class Job:
    """One ML training job.

    Construction is normally done by
    :func:`repro.workload.generator.build_job`, which also populates the
    task list and dependency graph.
    """

    job_id: str
    model: ModelProfile
    arrival_time: float
    num_replicas: int
    num_partitions: int
    comm_structure: CommStructure
    max_iterations: int
    urgency: int
    deadline: float
    accuracy_requirement: float
    stop_option: StopOption = StopOption.FIXED_ITERATIONS
    allow_downgrade: bool = True
    training_data_mb: float = 500.0

    #: Job-specific accuracy curve: ``a(i) = ceiling * i / (i + half_life)``.
    accuracy_ceiling: float = 0.9
    curve_half_life: float = 8.0

    #: Estimated total execution time ``t_e`` (set by the generator; used
    #: for deadlines and by predictors).
    estimated_duration: float = 0.0

    tasks: list[Task] = field(default_factory=list)
    #: Dependency graph over task ids; edge attr ``volume_mb`` is the
    #: per-iteration communication volume on that edge.
    dag: nx.DiGraph = field(default_factory=nx.DiGraph)
    #: Non-dependency synchronization links (all-reduce rings/tori):
    #: ``(src_task_id, dst_task_id, volume_mb)`` charged every iteration.
    sync_links: list[tuple[str, str, float]] = field(default_factory=list)

    state: JobState = JobState.WAITING
    iterations_completed: int = 0
    completion_time: Optional[float] = None
    first_run_time: Optional[float] = None
    stopped_early: bool = False
    #: Stop option actually in force (MLF-C may downgrade the user's one).
    effective_stop_option: Optional[StopOption] = None
    #: Accuracy measured at the deadline instant (filled by the engine).
    accuracy_at_deadline: Optional[float] = None
    #: Iterations that had completed by the deadline (engine bookkeeping).
    iterations_at_deadline: int = 0

    def __post_init__(self) -> None:
        if self.effective_stop_option is None:
            self.effective_stop_option = self.stop_option

    # -- identity ----------------------------------------------------------

    def __hash__(self) -> int:
        return hash(self.job_id)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Job) and other.job_id == self.job_id

    # -- size & parallelism ---------------------------------------------------

    @property
    def num_workers(self) -> int:
        """Total worker tasks (excluding any parameter server)."""
        return sum(1 for t in self.tasks if not t.is_parameter_server)

    @property
    def gpus_requested(self) -> int:
        """GPUs the job asked for (replicas × partitions)."""
        return self.num_replicas * self.num_partitions

    @property
    def total_params_m(self) -> float:
        """Whole-model parameter count ``S_J`` in millions."""
        return self.model.total_params_m

    # -- learning curves (temporal ML features) ----------------------------

    def loss_at(self, iteration: int) -> float:
        """Training loss after ``iteration`` completed iterations.

        ``l(i) = floor + (initial - floor) * (1 + i)^(-decay)`` — a
        power-law decay exhibiting the diminishing loss-reduction returns
        the paper leans on (Section 3.3.1, citing SLAQ).
        """
        m = self.model
        return m.loss_floor + (m.loss_initial - m.loss_floor) * (1.0 + iteration) ** (
            -m.loss_decay
        )

    def delta_loss(self, iteration: int) -> float:
        """Loss reduction ``δl_I`` achieved by iteration ``iteration``."""
        if iteration < 1:
            return 0.0
        return self.loss_at(iteration - 1) - self.loss_at(iteration)

    def cumulative_delta_loss(self, iteration: int) -> float:
        """``Σ_{j=1..iteration} δl_j`` — total loss reduction so far."""
        if iteration < 1:
            return 0.0
        return self.loss_at(0) - self.loss_at(iteration)

    def accuracy_at(self, iterations: float) -> float:
        """Model accuracy after ``iterations`` iterations.

        A saturating curve ``a(i) = ceiling * i / (i + half_life)`` — the
        canonical diminishing-returns shape.
        """
        if iterations <= 0:
            return 0.0
        return self.accuracy_ceiling * iterations / (iterations + self.curve_half_life)

    def iterations_for_accuracy(self, target: float) -> Optional[int]:
        """Smallest iteration count whose accuracy meets ``target``.

        Returns ``None`` when the target exceeds what ``max_iterations``
        can reach.
        """
        if target <= 0:
            return 0
        if target >= self.accuracy_ceiling:
            return None
        exact = self.curve_half_life * target / (self.accuracy_ceiling - target)
        needed = int(exact) + (0 if exact == int(exact) else 1)
        return needed if needed <= self.max_iterations else None

    @property
    def current_accuracy(self) -> float:
        """Accuracy achieved by the iterations completed so far."""
        return self.accuracy_at(self.iterations_completed)

    @property
    def final_accuracy(self) -> float:
        """Accuracy at completion (== current accuracy once completed)."""
        return self.current_accuracy

    # -- task/graph helpers ----------------------------------------------------

    def task_by_id(self, task_id: str) -> Task:
        """Look up one of this job's tasks."""
        for task in self.tasks:
            if task.task_id == task_id:
                return task
        raise KeyError(task_id)

    def unfinished_tasks(self) -> list[Task]:
        """Tasks not yet finally finished."""
        return [t for t in self.tasks if t.state is not TaskState.FINISHED]

    def queued_tasks(self) -> list[Task]:
        """Tasks currently waiting in the queue."""
        return [t for t in self.tasks if t.state is TaskState.QUEUED]

    def placed_tasks(self) -> list[Task]:
        """Tasks currently occupying a server."""
        return [t for t in self.tasks if t.state is TaskState.RUNNING]

    @property
    def is_fully_placed(self) -> bool:
        """Whether every task is on a server — the job can iterate."""
        return bool(self.tasks) and all(
            t.state is TaskState.RUNNING for t in self.tasks
        )

    @property
    def remaining_iterations(self) -> int:
        """Iterations left until ``max_iterations``."""
        return max(0, self.max_iterations - self.iterations_completed)

    @property
    def is_complete(self) -> bool:
        """Whether the job has finished (normally or stopped early)."""
        return self.state is JobState.COMPLETED

    # -- outcome metrics -----------------------------------------------------

    def jct(self) -> Optional[float]:
        """Job completion time (completion − arrival), or ``None``."""
        if self.completion_time is None:
            return None
        return self.completion_time - self.arrival_time

    def met_deadline(self) -> bool:
        """Whether the job completed at or before its deadline."""
        return self.completion_time is not None and self.completion_time <= self.deadline

    def met_accuracy(self) -> bool:
        """Whether the accuracy by the deadline met the requirement."""
        achieved = (
            self.accuracy_at_deadline
            if self.accuracy_at_deadline is not None
            else self.final_accuracy
        )
        return achieved >= self.accuracy_requirement
