"""Workload builder: trace records → fully-formed :class:`Job` objects.

Follows the paper's experimental setting (Section 4.1):

* the model-partition count equals the GPUs requested;
* deadlines are ``arrival + max(1.1 * t_e, t_r)`` with
  ``t_r ~ U[0.5h, 24h]``;
* per-link communication volumes are drawn from [50, 100] MB;
* jobs without explicit requirements receive the most permissive ones.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from repro.workload.dag import (
    DEFAULT_COMM_VOLUME_RANGE,
    build_task_graph,
    critical_path_seconds,
)
from repro.workload.job import CommStructure, Job, StopOption
from repro.workload.models import PartitionStyle, get_model
from repro.workload.trace import TraceRecord


@dataclass(frozen=True)
class WorkloadConfig:
    """Knobs of the trace → job conversion.

    Attributes
    ----------
    deadline_slack_factor:
        The ``1.1`` multiplier on the estimated execution time.
    deadline_uniform_range_hours:
        The ``t_r ~ U[0.5, 24]`` hours draw.
    comm_volume_range:
        Per-link communication volume in MB.
    comm_structure_weights:
        Mix of communication structures across jobs.
    stop_option_weights:
        Mix of MLF-C stop options users pick.
    allow_downgrade_probability:
        Fraction of users permitting MLF-C to downgrade their option.
    assumed_bandwidth_mbps:
        Bandwidth used to estimate per-iteration communication time for
        ``t_e`` (the real time is computed by the simulator).
    accuracy_ceiling_jitter:
        Jobs' accuracy ceilings are jittered by a factor drawn from this
        range around the model's nominal ceiling.
    """

    deadline_slack_factor: float = 1.1
    deadline_uniform_range_hours: tuple[float, float] = (0.5, 24.0)
    comm_volume_range: tuple[float, float] = DEFAULT_COMM_VOLUME_RANGE
    comm_structure_weights: dict[CommStructure, float] = field(
        default_factory=lambda: {
            CommStructure.PARAMETER_SERVER: 0.6,
            CommStructure.RING_ALLREDUCE: 0.3,
            CommStructure.TORUS_ALLREDUCE: 0.1,
        }
    )
    stop_option_weights: dict[StopOption, float] = field(
        default_factory=lambda: {
            StopOption.FIXED_ITERATIONS: 0.6,
            StopOption.OPT_STOP: 0.25,
            StopOption.ACCURACY_ONLY: 0.15,
        }
    )
    allow_downgrade_probability: float = 0.9
    assumed_bandwidth_mbps: float = 1250.0
    accuracy_ceiling_jitter: tuple[float, float] = (0.9, 1.0)


def split_parallelism(model_name: str, gpus_requested: int) -> tuple[int, int]:
    """Decide (replicas, partitions) for a job.

    The paper sets the model-partition count to the GPU count; SVM runs
    data parallelism only ("SVM did not run in model parallelism").  For
    partitionable models with >= 4 GPUs we use 2 data-parallel replicas
    so that both parallelism dimensions are exercised, matching the
    paper's mixed data+model parallelism scenario.
    """
    profile = get_model(model_name)
    gpus = max(1, gpus_requested)
    if profile.partition_style is PartitionStyle.NONE:
        return gpus, 1
    if gpus >= 4:
        return 2, gpus // 2
    return 1, gpus


def build_job(
    record: TraceRecord,
    rng: random.Random,
    config: Optional[WorkloadConfig] = None,
) -> Job:
    """Construct one job (tasks, DAG, deadline, requirements) from a record."""
    cfg = config or WorkloadConfig()
    record.validate()
    model = get_model(record.model_name)
    replicas, partitions = split_parallelism(record.model_name, record.gpus_requested)

    structures = list(cfg.comm_structure_weights)
    weights = [cfg.comm_structure_weights[s] for s in structures]
    comm_structure = rng.choices(structures, weights=weights, k=1)[0]
    if replicas == 1 and comm_structure is not CommStructure.PARAMETER_SERVER:
        # All-reduce needs multiple reducers; single-replica jobs use PS.
        comm_structure = CommStructure.PARAMETER_SERVER

    options = list(cfg.stop_option_weights)
    option_weights = [cfg.stop_option_weights[o] for o in options]
    stop_option = rng.choices(options, weights=option_weights, k=1)[0]

    lo_jitter, hi_jitter = cfg.accuracy_ceiling_jitter
    ceiling = min(0.995, model.accuracy_ceiling * rng.uniform(lo_jitter, hi_jitter))
    half_life = model.curve_half_life * rng.uniform(0.8, 1.25)

    job = Job(
        job_id=record.job_id,
        model=model,
        arrival_time=record.arrival_time,
        num_replicas=replicas,
        num_partitions=partitions,
        comm_structure=comm_structure,
        max_iterations=record.max_iterations,
        urgency=record.urgency,
        deadline=0.0,  # set below once t_e is known
        accuracy_requirement=0.0,  # set below once the curve is known
        stop_option=stop_option,
        allow_downgrade=rng.random() < cfg.allow_downgrade_probability,
        training_data_mb=record.training_data_mb,
        accuracy_ceiling=ceiling,
        curve_half_life=half_life,
    )
    build_task_graph(job, rng, cfg.comm_volume_range)

    # Accuracy requirement: the trace stores a quantile of the accuracy
    # achievable at max_iterations, keeping requirements demanding but
    # feasible (Section 4.1 uses the Philly completion status here).
    achievable = job.accuracy_at(record.max_iterations)
    job.accuracy_requirement = round(achievable * record.accuracy_requirement, 6)

    job.estimated_duration = estimate_execution_time(job, cfg)
    lo_h, hi_h = cfg.deadline_uniform_range_hours
    t_r = rng.uniform(lo_h * 3600.0, hi_h * 3600.0)
    job.deadline = record.arrival_time + max(
        cfg.deadline_slack_factor * job.estimated_duration, t_r
    )
    return job


def estimate_execution_time(job: Job, config: Optional[WorkloadConfig] = None) -> float:
    """Estimate total execution time ``t_e`` of a job.

    Per-iteration time = compute critical path + communication volume
    over an assumed NIC bandwidth (worst case: every link crosses
    servers).  The simulator computes the true time; this estimate feeds
    deadlines and the runtime predictor, mirroring the paper's assumption
    that total running time is predictable (Section 3.1, via [42]).
    """
    cfg = config or WorkloadConfig()
    compute = critical_path_seconds(job)
    volume = sum(d["volume_mb"] for *_e, d in job.dag.edges(data=True))
    volume += sum(v for *_pair, v in job.sync_links)
    volume *= job.model.comm_rounds_per_iteration
    comm = volume / cfg.assumed_bandwidth_mbps if cfg.assumed_bandwidth_mbps else 0.0
    return job.max_iterations * (compute + comm)


def build_jobs(
    records: Iterable[TraceRecord],
    seed: int = 0,
    config: Optional[WorkloadConfig] = None,
) -> list[Job]:
    """Build jobs for every record, sorted by arrival time."""
    rng = random.Random(seed)
    jobs = [build_job(record, rng, config) for record in records]
    jobs.sort(key=lambda j: j.arrival_time)
    return jobs


def scale_job_count(records: Sequence[TraceRecord], factor: float) -> list[TraceRecord]:
    """Scale a trace's job count by ``factor`` (the paper's ``x`` sweeps).

    ``factor < 1`` truncates; ``factor > 1`` replays the trace with
    shifted ids and arrival offsets so arrival density scales too.
    """
    if factor <= 0:
        raise ValueError("factor must be positive")
    base = list(records)
    target = max(1, int(round(len(base) * factor)))
    if target <= len(base):
        return base[:target]
    out = list(base)
    span = max(r.arrival_time for r in base) - min(r.arrival_time for r in base)
    copy = 1
    while len(out) < target:
        jitter = span * 0.01 * copy
        for record in base:
            if len(out) >= target:
                break
            out.append(
                TraceRecord(
                    job_id=f"{record.job_id}_x{copy}",
                    arrival_time=record.arrival_time + jitter,
                    gpus_requested=record.gpus_requested,
                    model_name=record.model_name,
                    max_iterations=record.max_iterations,
                    accuracy_requirement=record.accuracy_requirement,
                    urgency=record.urgency,
                    training_data_mb=record.training_data_mb,
                )
            )
        copy += 1
    out.sort(key=lambda r: r.arrival_time)
    return out
