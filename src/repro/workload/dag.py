"""Task dependency graph construction (Section 3.2, Figure 2).

A job running data parallelism × model parallelism spawns one task per
(replica, partition) cell.  The dependency edges come from the model
partition graph: sequential partitions chain within a replica, layered
partitions run in parallel.  Under the **parameter-server** structure the
final workers of every replica feed a dedicated PS task (which receives
the highest priority, Section 3.3.1); under **all-reduce** structures the
workers synchronize over a ring or a 2D torus — those links carry
communication volume every iteration but are not precedence edges.

Communication volumes per link are drawn uniformly from [50, 100] MB as
in the paper's simulation setup (Section 4.1).
"""

from __future__ import annotations

import random

import networkx as nx

from repro.cluster.resources import ResourceVector
from repro.workload.job import CommStructure, Job, Task
from repro.workload.partition import ModelPartition, partition_model

#: Paper's per-link communication volume range in MB (Section 4.1).
DEFAULT_COMM_VOLUME_RANGE: tuple[float, float] = (50.0, 100.0)


def build_task_graph(
    job: Job,
    rng: random.Random,
    comm_volume_range: tuple[float, float] = DEFAULT_COMM_VOLUME_RANGE,
) -> None:
    """Populate ``job.tasks``, ``job.dag`` and ``job.sync_links``.

    Idempotent-hostile by design: calling twice on the same job raises,
    because task ids would collide.
    """
    if job.tasks:
        raise ValueError(f"job {job.job_id} already has tasks")

    partitions = partition_model(job.model, job.num_partitions)
    lo, hi = comm_volume_range

    def volume() -> float:
        return rng.uniform(lo, hi)

    dag = nx.DiGraph()
    tasks: list[Task] = []

    grid: dict[tuple[int, int], Task] = {}
    for replica in range(job.num_replicas):
        for part in partitions:
            task = _make_worker(job, replica, part)
            grid[(replica, part.index)] = task
            tasks.append(task)
            dag.add_node(task.task_id)

    # Intra-replica precedence from sequential partitioning.
    for replica in range(job.num_replicas):
        for part in partitions:
            if part.depends_on_previous:
                src = grid[(replica, part.index - 1)]
                dst = grid[(replica, part.index)]
                dag.add_edge(src.task_id, dst.task_id, volume_mb=volume())

    sync_links: list[tuple[str, str, float]] = []
    if job.comm_structure is CommStructure.PARAMETER_SERVER:
        ps_task = _make_parameter_server(job)
        tasks.append(ps_task)
        dag.add_node(ps_task.task_id)
        finals = _final_partitions(partitions)
        for replica in range(job.num_replicas):
            for part in finals:
                src = grid[(replica, part.index)]
                dag.add_edge(src.task_id, ps_task.task_id, volume_mb=volume())
    else:
        reducers = _reducer_tasks(grid, partitions, job.num_replicas)
        if job.comm_structure is CommStructure.RING_ALLREDUCE:
            sync_links = _ring_links(reducers, volume)
        else:
            sync_links = _torus_links(reducers, volume)

    for task in tasks:
        task.actual_demand = _jitter_demand(task.demand, rng)

    job.tasks = tasks
    job.dag = dag
    job.sync_links = sync_links


def _make_worker(job: Job, replica: int, part: ModelPartition) -> Task:
    """Create the worker task for one (replica, partition) cell."""
    profile = job.model
    compute = profile.base_iteration_seconds * part.compute_fraction
    demand = _worker_demand(job, part)
    return Task(
        task_id=f"{job.job_id}:r{replica}p{part.index}",
        job=job,
        partition_index=part.index,
        replica_index=replica,
        demand=demand,
        partition_params_m=part.params_m,
        compute_seconds=compute,
    )


def _make_parameter_server(job: Job) -> Task:
    """Create the PS task; CPU/memory heavy, negligible GPU use."""
    demand = ResourceVector(
        gpu=0.05,
        cpu=2.0,
        mem=max(1.0, job.model.model_state_mb / 1024.0 * 2.0),
        bw=40.0,
    )
    return Task(
        task_id=f"{job.job_id}:ps",
        job=job,
        partition_index=-1,
        replica_index=-1,
        demand=demand,
        partition_params_m=job.model.total_params_m,
        compute_seconds=job.model.base_iteration_seconds * 0.05,
        is_parameter_server=True,
    )


def _worker_demand(job: Job, part: ModelPartition) -> ResourceVector:
    """Static resource demand of a worker.

    GPU demand scales with the partition's compute share so that small
    slices can share devices (which is what makes per-GPU overload and
    least-loaded-GPU placement meaningful); CPU and memory scale with the
    partition and mini-batch sizes; bandwidth demand reflects the
    per-iteration communication the worker sustains.
    """
    # GPU demand scales with the partition's compute share *and* the
    # model's compute intensity (an SVM worker is far lighter than an
    # AlexNet one), capped at 0.85 so that a single worker never
    # overloads an empty GPU under the paper's default h_r = 0.9 —
    # otherwise the task could never be placed by any overload-avoiding
    # scheduler.  The intensity term also keeps a 32-replica SVM job's
    # total demand placeable on modest clusters.
    intensity = min(1.0, job.model.base_iteration_seconds / 90.0)
    gpu = min(0.85, max(0.15, part.compute_fraction * intensity * 1.2))
    cpu = 1.0 + 3.0 * part.compute_fraction
    mem = 2.0 + part.params_m * 4.0 / 1024.0 * 3.0 + job.model.batch_size_mb / 1024.0
    bw = 25.0 + 50.0 * part.compute_fraction
    return ResourceVector(gpu=gpu, cpu=cpu, mem=mem, bw=bw)


def _jitter_demand(demand: ResourceVector, rng: random.Random) -> ResourceVector:
    """Actual runtime consumption vs the planning estimate.

    Schedulers reserve by estimate; the engine accounts the actual.
    Under-estimation is what pushes servers past ``h_r`` at runtime and
    triggers the overload handling of Section 3.3.3.  The GPU component
    is capped at 0.88 so a lone task can never overload an empty GPU
    (which would make migration thrash rather than relieve).
    """
    gpu = min(0.88, demand.gpu * rng.uniform(0.9, 1.3))
    cpu = demand.cpu * rng.uniform(0.85, 1.4)
    mem = demand.mem * rng.uniform(0.85, 1.4)
    bw = demand.bw * rng.uniform(0.85, 1.4)
    return ResourceVector(gpu=gpu, cpu=cpu, mem=mem, bw=bw)


def _final_partitions(partitions: list[ModelPartition]) -> list[ModelPartition]:
    """Partitions that emit results to the PS (the DAG's sinks).

    For a sequential chain that is only the last partition; for layered
    (parallel) partitions every partition reports to the PS.
    """
    if any(p.depends_on_previous for p in partitions):
        return [partitions[-1]]
    return list(partitions)


def _reducer_tasks(
    grid: dict[tuple[int, int], Task],
    partitions: list[ModelPartition],
    num_replicas: int,
) -> list[Task]:
    """The tasks acting as reducers in an all-reduce structure.

    Each replica's final partition holds that replica's gradients, so one
    reducer per replica per final partition.
    """
    finals = _final_partitions(partitions)
    reducers = []
    for part in finals:
        for replica in range(num_replicas):
            reducers.append(grid[(replica, part.index)])
    return reducers


def _ring_links(reducers: list[Task], volume) -> list[tuple[str, str, float]]:
    """Ring all-reduce: reducer ``i`` sends to reducer ``i+1 mod n``."""
    n = len(reducers)
    if n < 2:
        return []
    return [
        (reducers[i].task_id, reducers[(i + 1) % n].task_id, volume())
        for i in range(n)
    ]


def _torus_links(reducers: list[Task], volume) -> list[tuple[str, str, float]]:
    """2D-torus all-reduce: row rings then column rings over a near-square grid."""
    n = len(reducers)
    if n < 2:
        return []
    cols = max(1, int(n**0.5))
    rows = (n + cols - 1) // cols
    links: list[tuple[str, str, float]] = []

    def at(r: int, c: int) -> Task | None:
        idx = r * cols + c
        return reducers[idx] if idx < n else None

    for r in range(rows):
        row = [at(r, c) for c in range(cols)]
        row = [t for t in row if t is not None]
        if len(row) >= 2:
            for i in range(len(row)):
                links.append((row[i].task_id, row[(i + 1) % len(row)].task_id, volume()))
    for c in range(cols):
        col = [at(r, c) for r in range(rows)]
        col = [t for t in col if t is not None]
        if len(col) >= 2:
            for i in range(len(col)):
                links.append((col[i].task_id, col[(i + 1) % len(col)].task_id, volume()))
    return links


def dependents_count(dag: nx.DiGraph, task_id: str) -> int:
    """Number of (transitive) dependents of a task in the DAG."""
    return len(nx.descendants(dag, task_id))


def critical_path_seconds(job: Job) -> float:
    """Length of the compute critical path of one iteration.

    The longest chain of per-task compute times through the dependency
    DAG; parallel partitions contribute their max, sequential chains sum.
    """
    if not job.tasks:
        return 0.0
    compute = {t.task_id: t.compute_seconds for t in job.tasks}
    longest: dict[str, float] = {}
    for node in nx.topological_sort(job.dag):
        preds = list(job.dag.predecessors(node))
        base = max((longest[p] for p in preds), default=0.0)
        longest[node] = base + compute.get(node, 0.0)
    return max(longest.values(), default=0.0)
